"""The one import the instrumented layers take on the analysis package.

Non-kernel code (host selection, site manager, replication, network)
reports shared-cell accesses through the module-global :data:`HB` so a
disabled sanitizer costs those paths one module-attribute load and an
identity check — the same PERF001 guard idiom the tracer and obs
subsystems use.  The kernel itself uses ``Environment._hb`` (one slot
load) instead; :class:`~repro.analysis.session.AnalysisSession` keeps
the two in sync.

This module is deliberately import-light (no dependency on the recorder
type) so hot modules can ``import repro.analysis.hooks`` without paying
for the analysis machinery.
"""

from __future__ import annotations

from typing import Any

#: The attached :class:`~repro.analysis.hb.HBRecorder`, or ``None``.
#: Written only by :class:`~repro.analysis.session.AnalysisSession`.
HB: Any = None
