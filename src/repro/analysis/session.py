"""Wiring a :class:`HBRecorder` into a built testbed.

An :class:`AnalysisSession` owns the attach/detach lifecycle:

* ``Environment._hb`` — kernel hooks + run-loop delegation;
* :data:`repro.analysis.hooks.HB` — the layer-hook module global;
* write-tracking subscriptions on every site repository's three
  journal-publishing databases (the same ``subscribe``/``_notify``
  machinery the :class:`~repro.repository.delta.DeltaTracker` rides);
* site tags on the daemon root processes (site manager, group
  managers, monitors, data managers, application controllers, standby
  replicas, heartbeats) so every context inherits the site whose state
  it is allowed to touch — the attribution behind the cross-site
  access matrix.

Use as a context manager around the simulation run::

    with AnalysisSession(vdce.env, sites=vdce.world.sites) as session:
        session.track_vdce(vdce)
        ...drive the simulation...
    report = session.recorder.unsuppressed_races()
"""

from __future__ import annotations

from typing import Any

from repro.analysis import hooks
from repro.analysis.hb import HBRecorder
from repro.simcore.engine import Process

#: daemon attributes that hold root processes worth site-tagging
_PROC_ATTRS = ("_inbox_proc", "_echo_proc", "_sampler", "_responder",
               "_watcher", "_proc")

#: the journal-publishing repository databases (user accounts has no
#: subscribe hook and is written only from the editor session, outside
#: simulated time)
_TRACKED_DBS = ("resource_performance", "task_performance",
                "task_constraints")


class AnalysisSession:
    """Attach/detach scope for the happens-before sanitizer."""

    def __init__(self, env: Any, sites: Any = (),
                 stack_depth: int = 6) -> None:
        self.env = env
        self.recorder = HBRecorder(sites=tuple(sites),
                                   stack_depth=stack_depth)
        self._subscriptions: list[tuple[Any, Any]] = []
        self._attached = False

    # -- lifecycle -------------------------------------------------------
    def attach(self) -> "AnalysisSession":
        if self._attached:
            return self
        if hooks.HB is not None:
            raise RuntimeError("another analysis session is attached")
        self.env._hb = self.recorder
        hooks.HB = self.recorder
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.env._hb = None
        hooks.HB = None
        for db, cb in self._subscriptions:
            try:
                db._subscribers.remove(cb)
            except ValueError:  # pragma: no cover - already re-wired
                pass
        self._subscriptions.clear()
        self._attached = False

    def __enter__(self) -> "AnalysisSession":
        return self.attach()

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- testbed wiring --------------------------------------------------
    def track_repository(self, repo: Any) -> None:
        """Subscribe write tracking to *repo*'s journal-publishing DBs."""
        rec = self.recorder
        site = repo.site
        for name in _TRACKED_DBS:
            db = getattr(repo, name)

            def _on_write(kind: str, a: str = "", b: str = "",
                          _site: str = site, _name: str = name) -> None:
                rec.write(_site, _name, f"{kind}:{a}")

            db.subscribe(_on_write)
            self._subscriptions.append((db, _on_write))

    def tag_daemon(self, daemon: Any, site: str) -> None:
        """Site-tag every root process attribute *daemon* exposes."""
        for attr in _PROC_ATTRS:
            proc = getattr(daemon, attr, None)
            if isinstance(proc, Process):
                self.recorder.tag_process(proc, site)

    def track_vdce(self, vdce: Any) -> None:
        """Wire a whole :class:`~repro.core.vdce.VDCE` facade."""
        self.recorder.sites.update(vdce.world.sites)
        for site, repo in vdce.repositories.items():
            self.track_repository(repo)
        for site, sm in vdce.site_managers.items():
            self.tag_daemon(sm, site)
        for (site, _group), gm in vdce.group_managers.items():
            self.tag_daemon(gm, site)
        for registry in (vdce.monitors, vdce.data_managers,
                         vdce.app_controllers):
            for addr, daemon in registry.items():
                self.tag_daemon(daemon, addr.split("/", 1)[0])
        federation = getattr(vdce, "federation", None)
        if federation is not None:
            for site, daemon in federation.daemons.items():
                self.tag_daemon(daemon, site)
        recovery = getattr(vdce, "recovery", None)
        if recovery is not None:
            for site, state in recovery.sites.items():
                self.tag_daemon(state.heartbeat, site)
                for replica in state.replicas:
                    # Replica repository copies report through the
                    # dedicated replica cells in recovery/replication.py
                    # (distinct from the primary's DB cells), so only
                    # the processes need tagging here.
                    self.tag_daemon(replica, site)
