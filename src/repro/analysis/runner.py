"""Drive the chaos + bakeoff scenarios under the sanitizer.

``repro analyze`` (and the CI ``analyze`` job) call :func:`run_analysis`,
which executes, per seed and per batching mode:

* **chaos** — the chaos harness's end-to-end run (seeded random fault
  plan, linear-solver pipeline pinned across both sites) with an
  :class:`~repro.analysis.session.AnalysisSession` attached for the
  whole simulation;
* **bakeoff** — every default bake-off workload submitted through the
  full simulated pipeline on a fresh quiet testbed, plus the static
  registry sweep (:func:`repro.bakeoff.run_bakeoff`) under the layer
  hooks, which certifies the schedulers' repository access patterns.

The report is canonical JSON — sorted keys, sorted aggregates, stacks
with stable project-relative frames — and byte-identical for a fixed
seed list, which CI pins by running the command twice.

Suppressions are glob rules (``cell`` / ``context`` fnmatch patterns)
with a mandatory justification; suppressed races stay in the report,
marked, and are counted separately — the CI gate requires zero
*unsuppressed* findings, mirroring reprolint's comment policy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any

from repro.analysis.hb import HBRecorder, Race
from repro.analysis.session import AnalysisSession

#: scenario names accepted by ``repro analyze --scenario``
SCENARIOS = ("chaos", "bakeoff")


@dataclass(frozen=True)
class Suppression:
    """One tolerated hazard: glob patterns + the reason it is benign."""

    cell: str                 # fnmatch pattern over "site/name"
    context: str = "*"        # fnmatch pattern over either context label
    reason: str = ""

    def matches(self, race: Race) -> bool:
        cell = f"{race.cell[0]}/{race.cell[1]}"
        if not fnmatchcase(cell, self.cell):
            return False
        return (fnmatchcase(race.first.label, self.context)
                or fnmatchcase(race.second.label, self.context))


#: hazards tolerated on the current tree (keep justifications honest:
#: every entry is an accepted risk for sharding, not a dismissed bug)
DEFAULT_SUPPRESSIONS: tuple[Suppression, ...] = ()


@dataclass
class AnalyzeConfig:
    """Everything that determines one analysis run (and its bytes)."""

    seeds: tuple[int, ...] = (101, 202, 303)
    scenarios: tuple[str, ...] = SCENARIOS
    batching_modes: tuple[bool, ...] = (True, False)
    chaos_tasks: int = 60
    chaos_horizon_s: float = 60.0
    max_sim_time_s: float = 600.0
    stack_depth: int = 6
    suppressions: tuple[Suppression, ...] = DEFAULT_SUPPRESSIONS
    bakeoff_schedulers: tuple[str, ...] = ("site", "site-queue-aware",
                                           "heft")


def _crash_candidates(vdce: Any) -> list[str]:
    """Hosts a chaos plan may crash: everything except group leaders
    (mirrors tests/chaos/harness.py, which cannot be imported from
    library code)."""
    leaders = set()
    for site in vdce.world.sites.values():
        for group in site.groups:
            leaders.add(f"{site.name}/{site.group_leader(group)}")
    return [h.address for h in vdce.world.all_hosts()
            if h.address not in leaders]


def _drive(vdce: Any, process: Any, run: Any, deadline: float) -> str:
    """Run the simulation to a terminal state (chaos-harness semantics)."""
    from repro.util.errors import VDCEError
    try:
        while not process.triggered and vdce.now < deadline:
            vdce.env.run(until=vdce.now + 5.0)
        if process.triggered:
            if not process.ok:
                run.status = "rejected"
                raise process.exception
        else:
            run.status = "timeout"
    except VDCEError:
        pass
    return run.status


def _pin_across_sites(graph: Any, sites: list[str]) -> None:
    for i, nid in enumerate(graph.nodes):
        graph.node(nid).properties.preferred_site = sites[i % len(sites)]


def _run_chaos_scenario(seed: int, batching: bool,
                        cfg: AnalyzeConfig) -> tuple[HBRecorder, dict]:
    from repro.faults import FaultPlan
    from repro.workloads import linear_solver_graph, quiet_testbed

    vdce = quiet_testbed(seed=seed, batching=batching)
    vdce.start()
    # Standbys on every site + server crashes in the plan: WAL shipping,
    # replica application and rank-staggered promotion all run under the
    # sanitizer, not just the happy path.
    for site_name in sorted(vdce.world.sites):
        vdce.enable_failover(site_name, ["h1", "h2"])
    session = AnalysisSession(vdce.env, sites=vdce.world.sites,
                              stack_depth=cfg.stack_depth)
    with session:
        session.track_vdce(vdce)
        plan = FaultPlan.random(
            vdce.world.rng.stream("chaos-plan"), _crash_candidates(vdce),
            sites=sorted(vdce.world.sites), horizon_s=cfg.chaos_horizon_s,
            include_servers=True)
        vdce.apply_fault_plan(plan)
        graph = linear_solver_graph(vdce.registry, n=cfg.chaos_tasks)
        sites = sorted(vdce.world.sites)
        _pin_across_sites(graph, sites)
        process, run = vdce.submit(graph, sites[0], k_remote_sites=1)
        status = _drive(vdce, process, run, vdce.now + cfg.max_sim_time_s)
    meta = {"status": status, "events": "chaos",
            "failed_processes": len(vdce.env.failed_processes)}
    return session.recorder, meta


def _run_bakeoff_scenario(seed: int, batching: bool,
                          cfg: AnalyzeConfig) -> tuple[HBRecorder, dict]:
    from repro.bakeoff import BakeoffConfig, run_bakeoff
    from repro.bakeoff.runner import DEFAULT_WORKLOADS
    from repro.simcore.engine import Environment
    from repro.workloads import quiet_testbed

    statuses: dict[str, str] = {}
    recorders: list[HBRecorder] = []
    # (a) every default workload through the full simulated pipeline
    for workload in sorted(DEFAULT_WORKLOADS):
        builder = DEFAULT_WORKLOADS[workload]
        vdce = quiet_testbed(seed=seed, batching=batching)
        vdce.start()
        session = AnalysisSession(vdce.env, sites=vdce.world.sites,
                                  stack_depth=cfg.stack_depth)
        with session:
            session.track_vdce(vdce)
            graph = builder(vdce.registry)
            sites = sorted(vdce.world.sites)
            _pin_across_sites(graph, sites)
            process, run = vdce.submit(graph, sites[0], k_remote_sites=1)
            statuses[workload] = _drive(vdce, process, run,
                                        vdce.now + cfg.max_sim_time_s)
        recorders.append(session.recorder)
    # (b) the static registry sweep: schedulers read repositories through
    # the layer hooks (no DES run — one external context, so this feeds
    # the access matrix, not the race detector)
    scratch = Environment()
    session = AnalysisSession(scratch, sites=("syracuse", "rome"),
                              stack_depth=cfg.stack_depth)
    with session:
        run_bakeoff(BakeoffConfig(schedulers=cfg.bakeoff_schedulers,
                                  workloads=tuple(sorted(DEFAULT_WORKLOADS)),
                                  seed=seed))
    recorders.append(session.recorder)
    merged = _merge_recorders(recorders)
    return merged, {"status": statuses, "events": "bakeoff"}


def _merge_recorders(recorders: list[HBRecorder]) -> HBRecorder:
    """Fold several sub-run recorders into one (first one wins races'
    identity; matrices and stats sum)."""
    base = recorders[0]
    for other in recorders[1:]:
        base.sites.update(other.sites)
        for race in other.races:
            if race.key not in base._race_keys:
                base._race_keys.add(race.key)
                base.races.append(race)
        for key, n in other.direct_matrix.items():
            base.direct_matrix[key] = base.direct_matrix.get(key, 0) + n
        for key, n in other.network_matrix.items():
            base.network_matrix[key] = base.network_matrix.get(key, 0) + n
        for cell, stats in other.cell_stats.items():
            mine = base.cell_stats.get(cell)
            if mine is None:
                base.cell_stats[cell] = stats
            else:
                mine.reads += stats.reads
                mine.writes += stats.writes
                mine.accessors.update(stats.accessors)
    return base


def apply_suppressions(races: list[Race],
                       suppressions: tuple[Suppression, ...]) -> None:
    for race in races:
        for rule in suppressions:
            if rule.matches(race):
                race.suppressed = True
                race.suppression = rule.reason
                break


def run_analysis(cfg: AnalyzeConfig) -> dict[str, Any]:
    """Execute every (scenario, seed, batching) combination and fold the
    results into the canonical report dict."""
    runs: list[dict[str, Any]] = []
    all_races: dict[tuple[str, ...], Race] = {}
    direct: dict[tuple[str, str], int] = {}
    network: dict[tuple[str, str], int] = {}
    cells: dict[str, dict[str, Any]] = {}
    sites: set[str] = set()
    for scenario in cfg.scenarios:
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; "
                             f"available: {', '.join(SCENARIOS)}")
        runner = (_run_chaos_scenario if scenario == "chaos"
                  else _run_bakeoff_scenario)
        for seed in cfg.seeds:
            for batching in cfg.batching_modes:
                recorder, meta = runner(seed, batching, cfg)
                apply_suppressions(recorder.races, cfg.suppressions)
                sites.update(recorder.sites)
                for race in recorder.races:
                    all_races.setdefault(race.key, race)
                for key, n in recorder.direct_matrix.items():
                    direct[key] = direct.get(key, 0) + n
                for key, n in recorder.network_matrix.items():
                    network[key] = network.get(key, 0) + n
                for cell, stats in sorted(recorder.cell_stats.items()):
                    name = f"{cell[0]}/{cell[1]}"
                    agg = cells.setdefault(
                        name, {"reads": 0, "writes": 0, "accessors": []})
                    agg["reads"] += stats.reads
                    agg["writes"] += stats.writes
                    agg["accessors"] = sorted(
                        set(agg["accessors"]) | stats.accessors)
                runs.append({
                    "scenario": scenario, "seed": seed,
                    "batching": batching, "meta": meta,
                    "races": len(recorder.races),
                    "unsuppressed": len(recorder.unsuppressed_races()),
                })
    races = sorted(all_races.values(), key=lambda r: r.key)
    unsuppressed = [r for r in races if not r.suppressed]
    violations = sorted(
        (src, dst) for (src, dst) in direct
        if src != dst and src in sites and dst in sites)
    report = {
        "version": 1,
        "config": {
            "seeds": list(cfg.seeds),
            "scenarios": list(cfg.scenarios),
            "batching_modes": list(cfg.batching_modes),
            "chaos_tasks": cfg.chaos_tasks,
            "suppressions": [
                {"cell": s.cell, "context": s.context, "reason": s.reason}
                for s in cfg.suppressions],
        },
        "runs": runs,
        "races": [r.to_dict() for r in races],
        "race_count": len(races),
        "unsuppressed_races": len(unsuppressed),
        "suppressed_races": len(races) - len(unsuppressed),
        "cross_site_matrix": {
            "sites": sorted(sites),
            "direct": {f"{src}->{dst}": n
                       for (src, dst), n in sorted(direct.items())},
            "network": {f"{src}->{dst}": n
                        for (src, dst), n in sorted(network.items())},
        },
        "cells": dict(sorted(cells.items())),
        "certificate": {
            "site_isolation": not violations,
            "isolation_violations": [f"{a}->{b}" for a, b in violations],
            "same_tick_clean": not unsuppressed,
            "shardable": not violations and not unsuppressed,
        },
    }
    return report


def report_json(report: dict[str, Any]) -> str:
    """Canonical bytes: sorted keys, fixed separators, trailing newline."""
    return json.dumps(report, indent=1, sort_keys=True) + "\n"


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary for the CLI."""
    lines: list[str] = []
    cert = report["certificate"]
    lines.append("happens-before / isolation analysis")
    lines.append("=" * 35)
    cfg = report["config"]
    lines.append(f"scenarios: {', '.join(cfg['scenarios'])}   "
                 f"seeds: {', '.join(map(str, cfg['seeds']))}   "
                 f"batching: {cfg['batching_modes']}")
    lines.append("")
    lines.append(f"races: {report['race_count']} "
                 f"({report['unsuppressed_races']} unsuppressed, "
                 f"{report['suppressed_races']} suppressed)")
    for race in report["races"]:
        flag = "SUPPRESSED" if race["suppressed"] else "RACE"
        lines.append(f"  [{flag}] {race['cell']} @t={race['time']}")
        for side in ("first", "second"):
            acc = race[side]
            lines.append(f"    {acc['op']:5s} {acc['context']} "
                         f"({acc['site'] or 'client'}) {acc['detail']}")
            for frame in acc["stack"][:3]:
                lines.append(f"      {frame}")
        if race["suppressed"]:
            lines.append(f"    reason: {race['suppression']}")
    lines.append("")
    lines.append("cross-site access matrix (direct cell accesses):")
    matrix = report["cross_site_matrix"]
    for pair, n in matrix["direct"].items():
        lines.append(f"  {pair:24s} {n:8d}")
    lines.append("network messages:")
    for pair, n in matrix["network"].items():
        lines.append(f"  {pair:24s} {n:8d}")
    lines.append("")
    verdict = "SHARDABLE" if cert["shardable"] else "NOT SHARDABLE"
    lines.append(
        f"certificate: site-isolation={cert['site_isolation']} "
        f"same-tick-clean={cert['same_tick_clean']} -> {verdict}")
    if cert["isolation_violations"]:
        lines.append("  direct cross-site accesses: "
                     + ", ".join(cert["isolation_violations"]))
    return "\n".join(lines) + "\n"
