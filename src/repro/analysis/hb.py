"""Vector-clock happens-before recorder for the DES kernel.

The recorder assigns a logical *context* to every unit of sequential
execution the kernel dispatches — a :class:`~repro.simcore.engine.Process`
resume, a :class:`_Callback` entry fired by ``call_later``, a persistent
composite-event propagator (``AllOf``), or a one-shot plain callback —
and maintains a vector clock per context.  Causal edges:

* **program order** within a context (the per-context ``count``);
* **spawn**: ``Process.__init__`` snapshots the spawning context;
* **trigger**: ``Event.succeed``/``fail``/process termination/interrupt
  snapshot the triggering context; every waiter joins the snapshot when
  the event dispatches;
* **call_later**: the entry carries the scheduling context's snapshot;
* **store handoffs**: a buffered item carries its putter's snapshot in a
  FIFO clock queue mirroring ``Store.items``; the consumer joins it on
  ``get``/``try_get`` (direct handoffs ride the trigger edge);
* **network delivery** is spawn + store composition — no extra edge.

Instrumented layers report shared-state *cell* accesses
(:meth:`HBRecorder.read` / :meth:`HBRecorder.write`); a cell is a
``(site, name)`` pair (repository DB, selector view, allocation table,
WAL, replica).  Two same-tick accesses to one cell conflict when at
least one writes; a conflict whose contexts are not ordered by the
clocks is a **race** — exactly the pair whose outcome would depend on
scheduling once the simulation is sharded across processes
(ROADMAP 3(c)).  Both access stacks are captured so reports are
actionable.

The recorder also keeps the **cross-site access matrix**: counts of
direct cell accesses by owner site versus accessor site, and of
messages entering :class:`~repro.net.network.Network` per (src, dst)
site pair.  A clean off-diagonal (every cross-site interaction a
network message, no direct access) is the site-autonomy certificate.

Known imprecision (documented, deliberate): a process that attaches to
an event *after* the event's dispatch tick resumes through a
``_Resume`` record whose trigger clock may already be released — it
falls back to program order, which can only report false positives,
never mask a real race, and has not produced one on the tree.
"""

from __future__ import annotations

import sys
from collections import deque
from heapq import heappop
from dataclasses import dataclass, field
from typing import Any

from repro.simcore.engine import (
    _INIT,
    _NO_WAITERS,
    _Callback,
    _Resume,
    Event,
    Process,
)
from repro.util.errors import SimulationError

#: Cell identifier: (owner site, state name).
Cell = tuple[str, str]


class _Ctx:
    """One unit of sequential execution with its vector clock.

    ``cid`` is assigned lazily, the first time the context touches a
    tracked cell: relay/delivery contexts that never access shared state
    stay anonymous, which keeps every vector clock proportional to the
    number of *state-touching* contexts rather than the number of
    events.
    """

    __slots__ = ("cid", "count", "vc", "label", "site")

    def __init__(self, label: str, site: str | None = None) -> None:
        self.cid: int | None = None
        self.count = 0
        self.vc: dict[int, int] = {}
        self.label = label
        self.site = site


class _Access:
    """One recorded cell access within the current tick."""

    __slots__ = ("write", "cid", "count", "label", "site", "detail", "stack")

    def __init__(self, write: bool, cid: int, count: int, label: str,
                 site: str | None, detail: str, stack: tuple[str, ...]):
        self.write = write
        self.cid = cid
        self.count = count
        self.label = label
        self.site = site
        self.detail = detail
        self.stack = stack

    def to_dict(self) -> dict[str, Any]:
        return {
            "op": "write" if self.write else "read",
            "context": self.label,
            "site": self.site,
            "detail": self.detail,
            "stack": list(self.stack),
        }


@dataclass
class Race:
    """A causally-unordered same-tick conflicting access pair."""

    cell: Cell
    time: float
    first: _Access
    second: _Access
    suppressed: bool = False
    suppression: str | None = None

    @property
    def key(self) -> tuple[str, ...]:
        """Deterministic dedup/suppression key (stable across seeds)."""
        return (f"{self.cell[0]}/{self.cell[1]}",
                self.first.label, "w" if self.first.write else "r",
                self.second.label, "w" if self.second.write else "r")

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell": f"{self.cell[0]}/{self.cell[1]}",
            "time": self.time,
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
            "suppressed": self.suppressed,
            "suppression": self.suppression,
        }


@dataclass
class CellStats:
    """Per-cell access tally for the report."""

    reads: int = 0
    writes: int = 0
    accessors: set[str] = field(default_factory=set)


def _short_path(filename: str) -> str:
    parts = filename.replace("\\", "/").split("/")
    for anchor in ("repro", "tests", "tools"):
        if anchor in parts:
            return "/".join(parts[len(parts) - 1 - parts[::-1].index(anchor):])
    return parts[-1]


class HBRecorder:
    """The happens-before engine: contexts, clocks, cells, the matrix.

    Attach via :class:`~repro.analysis.session.AnalysisSession`, which
    sets ``Environment._hb`` (kernel hooks + run-loop delegation) and
    :data:`repro.analysis.hooks.HB` (layer hooks) to this object.
    """

    def __init__(self, sites: tuple[str, ...] = (),
                 stack_depth: int = 6) -> None:
        self.sites: set[str] = set(sites)
        self.stack_depth = stack_depth
        self._next_cid = 1
        self._external = _Ctx("external")
        self.current: _Ctx = self._external
        self._proc_ctxs: dict[Process, _Ctx] = {}
        self._obj_ctxs: dict[Any, _Ctx] = {}
        # Per-tick state (released whenever simulated time advances):
        self._tick_time: float | None = None
        self._event_clocks: dict[Any, dict[int, int]] = {}
        self._spawn_clocks: dict[Process, dict[int, int]] = {}
        self._accesses: dict[Cell, list[_Access]] = {}
        # Cross-tick state:
        self._cb_clocks: dict[Any, dict[int, int]] = {}
        self._store_clocks: dict[Any, deque] = {}
        # Findings:
        self.races: list[Race] = []
        self._race_keys: set[tuple[str, ...]] = set()
        self.cell_stats: dict[Cell, CellStats] = {}
        #: direct cell accesses: (accessor site or "client", owner site) -> n
        self.direct_matrix: dict[tuple[str, str], int] = {}
        #: network messages: (src site or "client", dst site) -> n
        self.network_matrix: dict[tuple[str, str], int] = {}
        # Stable cell names for per-instance state (selector views):
        self._obj_names: dict[Any, str] = {}
        self._name_counters: dict[str, int] = {}

    # -- context management ----------------------------------------------
    def _proc_ctx(self, proc: Process) -> _Ctx:
        ctx = self._proc_ctxs.get(proc)
        if ctx is None:
            ctx = _Ctx(proc.name, self.current.site)
            self._proc_ctxs[proc] = ctx
        return ctx

    def tag_process(self, proc: Process, site: str) -> None:
        """Pin *proc* (and contexts it spawns from now on) to *site*."""
        self._proc_ctx(proc).site = site

    def snapshot(self) -> dict[int, int]:
        """The current context's clock as an immutable-by-convention dict."""
        cur = self.current
        snap = dict(cur.vc)
        if cur.cid is not None:
            snap[cur.cid] = cur.count
        return snap

    def _activate(self, ctx: _Ctx,
                  clock: dict[int, int] | None = None,
                  extra: dict[int, int] | None = None) -> None:
        ctx.count += 1
        vc = ctx.vc
        for c in (clock, extra):
            if c:
                for k, v in c.items():
                    if vc.get(k, 0) < v:
                        vc[k] = v
        self.current = ctx

    def _join_current(self, clock: dict[int, int] | None) -> None:
        if clock:
            vc = self.current.vc
            for k, v in clock.items():
                if vc.get(k, 0) < v:
                    vc[k] = v

    # -- kernel hooks (Environment._hb) ----------------------------------
    def on_spawn(self, proc: Process) -> None:
        """``Process.__init__``: spawner happens-before first resume."""
        self._proc_ctx(proc)
        self._spawn_clocks[proc] = self.snapshot()

    def on_trigger(self, event: Event) -> None:
        """``succeed``/``fail``/finalize/interrupt: the triggering
        context happens-before every waiter's resume."""
        self._event_clocks[event] = self.snapshot()

    def on_schedule(self, entry: Any) -> None:
        """``call_later``: scheduler happens-before the fired callback."""
        self._cb_clocks[entry] = self.snapshot()

    # -- store hooks (Store via env._hb) ---------------------------------
    def _clocks_for(self, store: Any, expected: int) -> deque:
        dq = self._store_clocks.get(store)
        if dq is None:
            # Align with items buffered before the session attached.
            dq = deque([None] * expected)
            self._store_clocks[store] = dq
        elif len(dq) != expected:  # defensive resync, oldest-first
            while len(dq) > expected:
                dq.popleft()
            while len(dq) < expected:
                dq.appendleft(None)
        return dq

    def store_put(self, put_event: Any) -> None:
        """``Store.put``: snapshot the putter before it can block."""
        put_event._hb_clock = self.snapshot()

    def store_append(self, store: Any) -> None:
        """``put_nowait`` buffered an item: enqueue the putter's clock."""
        self._clocks_for(store, len(store.items) - 1).append(self.snapshot())

    def store_buffered(self, store: Any, put_event: Any) -> None:
        """``_dispatch`` moved a waiting put into the buffer."""
        self._clocks_for(store, len(store.items) - 1).append(
            getattr(put_event, "_hb_clock", None))

    def store_handoff(self, store: Any, get_event: Any) -> None:
        """``_dispatch`` satisfies a getter from the buffer: attach the
        buffered putter clock so the getter joins it on resume."""
        dq = self._clocks_for(store, len(store.items) + 1)
        clock = dq.popleft()
        if clock:
            get_event._hb_extra = clock

    def store_taken(self, store: Any) -> None:
        """``try_get`` popped an item synchronously: join in place."""
        dq = self._clocks_for(store, len(store.items) + 1)
        self._join_current(dq.popleft())

    # -- layer hooks (repro.analysis.hooks.HB) ---------------------------
    def on_send(self, dst_site: str) -> None:
        """A message entered ``Network.send``/``send_batch``."""
        src = self.current.site or "client"
        key = (src, dst_site)
        self.network_matrix[key] = self.network_matrix.get(key, 0) + 1

    def name_for(self, obj: Any, prefix: str) -> str:
        """A stable per-instance cell name (``prefix#N`` in first-access
        order, which is deterministic under a fixed seed)."""
        name = self._obj_names.get(obj)
        if name is None:
            n = self._name_counters.get(prefix, 0) + 1
            self._name_counters[prefix] = n
            name = f"{prefix}#{n}"
            self._obj_names[obj] = name
        return name

    def read(self, site: str, name: str, detail: str = "") -> None:
        self._access((site, name), False, detail)

    def write(self, site: str, name: str, detail: str = "") -> None:
        self._access((site, name), True, detail)

    # -- cells and races -------------------------------------------------
    def _stack(self) -> tuple[str, ...]:
        out: list[str] = []
        f = sys._getframe(3)  # skip _stack/_access/read|write
        while f is not None and len(out) < self.stack_depth:
            code = f.f_code
            short = _short_path(code.co_filename)
            if "/" in short:  # keep only project frames
                out.append(f"{short}:{f.f_lineno}:{code.co_name}")
            f = f.f_back
        return tuple(out)

    def _access(self, cell: Cell, write: bool, detail: str) -> None:
        cur = self.current
        if cur.cid is None:
            cur.cid = self._next_cid
            self._next_cid += 1
        stats = self.cell_stats.get(cell)
        if stats is None:
            stats = self.cell_stats[cell] = CellStats()
        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        accessor = cur.site or "client"
        stats.accessors.add(accessor)
        owner = cell[0]
        if owner in self.sites:
            key = (accessor, owner)
            self.direct_matrix[key] = self.direct_matrix.get(key, 0) + 1
        acc = _Access(write, cur.cid, cur.count, cur.label, cur.site,
                      detail, self._stack())
        bucket = self._accesses.get(cell)
        if bucket is None:
            self._accesses[cell] = [acc]
            return
        vc_get = cur.vc.get
        for prior in bucket:
            if not (write or prior.write):
                continue
            if prior.cid == cur.cid:
                continue
            if vc_get(prior.cid, 0) >= prior.count:
                continue  # prior happens-before current
            race = Race(cell, self._tick_time or 0.0, prior, acc)
            if race.key not in self._race_keys:
                self._race_keys.add(race.key)
                self.races.append(race)
        bucket.append(acc)

    # -- the instrumented dispatch loop ----------------------------------
    def _tick(self, when: float) -> None:
        self._tick_time = when
        self._accesses.clear()
        self._event_clocks.clear()
        self._spawn_clocks.clear()

    def _invoke(self, cb: Any, event: Any,
                clock: dict[int, int] | None,
                extra: dict[int, int] | None) -> None:
        bound_to = getattr(cb, "__self__", None)
        if isinstance(bound_to, Process):
            ctx = self._proc_ctx(bound_to)
        elif bound_to is not None:
            # Persistent propagator (AllOf._on_child and kin): one
            # context per composite so joins accumulate across children.
            ctx = self._obj_ctxs.get(bound_to)
            if ctx is None:
                ctx = _Ctx(type(bound_to).__name__, self.current.site)
                self._obj_ctxs[bound_to] = ctx
        else:
            ctx = _Ctx(getattr(cb, "__qualname__", "callback"),
                       self.current.site)
        self._activate(ctx, clock, extra)
        cb(event)

    def _step(self, env: Any) -> None:
        entry = heappop(env._queue)
        when = entry[0]
        if when < env._now:
            raise SimulationError("event queue time went backwards")
        if when != self._tick_time:
            self._tick(when)
        env._now = when
        item = entry[3]
        cbs = item.callbacks
        if cbs is None:
            kind = type(item)
            if kind is _Resume:
                proc = item.process
                if proc is not None:
                    ev = item.event
                    if ev is _INIT:
                        clock = self._spawn_clocks.pop(proc, None)
                        extra = None
                    else:
                        clock = self._event_clocks.get(ev)
                        extra = getattr(ev, "_hb_extra", None)
                    self._activate(self._proc_ctx(proc), clock, extra)
                    proc._resume(ev)
            elif kind is _Callback:
                clock = self._cb_clocks.pop(item, None)
                ctx = _Ctx(getattr(item.fn, "__qualname__", "call_later"),
                           None)
                self._activate(ctx, clock)
                item.fn(item.arg)
            else:  # pragma: no cover - unknown processed-marker item
                item._run_callbacks()
        else:
            item.callbacks = None
            clock = self._event_clocks.get(item)
            extra = getattr(item, "_hb_extra", None)
            if type(cbs) is list:
                for cb in cbs:
                    self._invoke(cb, item, clock, extra)
            elif cbs is not _NO_WAITERS:
                self._invoke(cbs, item, clock, extra)

    def step(self, env: Any) -> None:
        """One-event dispatch, delegated from ``Environment.step``."""
        if not env._queue:
            raise SimulationError("step() on an empty event queue")
        self._step(env)
        env._active_process = None
        self.current = self._external

    def run_loop(self, env: Any, until: Any = None) -> Any:
        """Instrumented replacement for ``Environment.run``.

        Same dispatch order and termination semantics as the plain loop
        (heap order, the three ``until`` variants, identical error
        messages) with clock propagation around every callback.
        """
        queue = env._queue
        try:
            if isinstance(until, Event):
                stop = until
                while stop.callbacks is not None:
                    if not queue:
                        raise SimulationError(
                            "simulation ran out of events before the "
                            "awaited event triggered (deadlock?)")
                    self._step(env)
                if stop._ok:
                    return stop._value
                raise stop._exception  # type: ignore[misc]
            if until is None:
                while queue:
                    self._step(env)
                return None
            horizon = float(until)
            if horizon < env._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={env._now})")
            while queue and queue[0][0] <= horizon:
                self._step(env)
            if horizon != float("inf"):
                env._now = horizon
            return None
        finally:
            env._active_process = None
            self.current = self._external

    # -- report accessors ------------------------------------------------
    def unsuppressed_races(self) -> list[Race]:
        return [r for r in self.races if not r.suppressed]

    def isolation_violations(self) -> list[tuple[str, str, int]]:
        """Direct accesses whose accessor is a *site* other than the
        owner — the pairs that would break a by-site sharding."""
        return sorted((src, dst, n)
                      for (src, dst), n in self.direct_matrix.items()
                      if src != dst and src in self.sites)
