"""Happens-before race sanitizer and cross-site isolation analysis.

The shardability gate for ROADMAP item 3(c): before the simulation can be
partitioned across OS processes by site, two invariants must provably
hold —

1. **same-tick independence**: events executed at the same simulated
   instant never conflict on shared state unless a causal edge orders
   them (otherwise today's determinism is an accident of heapq
   tie-breaking and would not survive a partitioned run);
2. **site autonomy**: no code path mutates another site's repository,
   store or manager state except through :class:`~repro.net.network.Network`
   messages (the paper's architecture, and the partition boundary).

:class:`~repro.analysis.hb.HBRecorder` is a vector-clock happens-before
recorder the DES kernel delegates to while attached (``Environment._hb``);
:class:`~repro.analysis.session.AnalysisSession` wires it into a built
testbed (repository subscriptions, daemon site tagging);
:mod:`repro.analysis.runner` drives the chaos + bakeoff scenarios under
it and renders the deterministic race report + cross-site access matrix
consumed by ``repro analyze`` and CI.

Everything here is strictly off the hot path: with no session attached
every kernel hook is one attribute load and an identity check
(≤2% overhead, enforced by ``tools/perf_report.py --check``).
"""

from typing import Any

from repro.analysis.hb import HBRecorder, Race
from repro.analysis.session import AnalysisSession

__all__ = [
    "AnalysisSession",
    "AnalyzeConfig",
    "HBRecorder",
    "Race",
    "render_report",
    "run_analysis",
]


def __getattr__(name: str) -> Any:
    # The runner pulls in the workloads/chaos stack, whose modules carry
    # the analysis hooks themselves — import it lazily so instrumented
    # layers can ``import repro.analysis.hooks`` without a cycle.
    if name in ("AnalyzeConfig", "run_analysis", "render_report"):
        from repro.analysis import runner
        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
