"""repro — a reproduction of "The Software Architecture of a Virtual
Distributed Computing Environment" (Topcuoglu, Hariri, Furmanski,
Valente; HPDC / Syracuse University, 1997).

The package rebuilds the complete VDCE stack over a deterministic
discrete-event simulation of a late-90s wide-area testbed:

* :mod:`repro.afg` — the Application Editor and Application Flow Graphs;
* :mod:`repro.tasklib` — the menu-driven task libraries (matrix algebra,
  Fourier analysis, C3I) with real NumPy implementations;
* :mod:`repro.scheduling` — the Application Scheduler: list-scheduling
  levels, the Host Selection Algorithm (Fig. 5), the Site Scheduler
  Algorithm (Fig. 4), baselines, QoS, dynamic rescheduling;
* :mod:`repro.prediction` — Predict(task, R): computing-power weights,
  workload forecasting, memory modelling, calibration trial runs;
* :mod:`repro.runtime` — the Runtime System: Control Manager (monitors,
  group managers, site managers, application controllers) and Data
  Manager (channel setup, socket-style transfers, data conversion);
* :mod:`repro.repository` — the four per-site databases;
* :mod:`repro.core` — the :class:`~repro.core.vdce.VDCE` facade.

Quickstart::

    from repro import VDCE, HostSpec, ATM_OC3

    vdce = VDCE(seed=1)
    vdce.add_site("syracuse"); vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    for i in range(3):
        vdce.add_host("syracuse", HostSpec(name=f"sun{i}"))
        vdce.add_host("rome", HostSpec(name=f"rl{i}", arch="x86", os="linux"))
    vdce.start()
    editor = vdce.open_editor("vdce", "vdce", "demo")
    ...
"""

from repro.afg import (
    ApplicationEditor,
    ApplicationFlowGraph,
    EditorSession,
    GraphBuilder,
    TaskProperties,
)
from repro.core import ApplicationRun, VDCE
from repro.net import (
    ATM_OC3,
    ETHERNET_10,
    ETHERNET_100,
    T1_WAN,
    LinkSpec,
    Topology,
)
from repro.prediction import PerformancePredictor
from repro.repository import SiteRepository
from repro.resources import Host, HostSpec
from repro.scheduling import (
    HostSelector,
    QoSRequirement,
    ResourceAllocationTable,
    SiteScheduler,
)
from repro.tasklib import LibraryRegistry, TaskDefinition, standard_registry
from repro.util.errors import VDCEError

__version__ = "1.0.0"

__all__ = [
    "ATM_OC3",
    "ApplicationEditor",
    "ApplicationFlowGraph",
    "ApplicationRun",
    "ETHERNET_10",
    "ETHERNET_100",
    "EditorSession",
    "GraphBuilder",
    "Host",
    "HostSelector",
    "HostSpec",
    "LibraryRegistry",
    "LinkSpec",
    "PerformancePredictor",
    "QoSRequirement",
    "ResourceAllocationTable",
    "SiteRepository",
    "SiteScheduler",
    "T1_WAN",
    "TaskDefinition",
    "TaskProperties",
    "Topology",
    "VDCE",
    "VDCEError",
    "standard_registry",
]
