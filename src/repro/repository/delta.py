"""The repository change journal powering incremental scheduling.

PR 2's version stamps tell a consumer *that* a record changed;
they do not tell it *which* (host, task-class) pairs a change dirties,
so every scheduling round still re-walks the full candidate set.  The
:class:`DeltaTracker` closes that gap: the four mutable databases of a
:class:`~repro.repository.site_repository.SiteRepository` publish every
mutation (through their ``subscribe``/``_notify`` hooks — the INV002
lint contract), and the tracker accumulates them as an ordered journal
of :class:`DeltaEvent` tuples.  Incremental consumers (the
:class:`~repro.scheduling.host_selection.HostSelector` score views,
targeted :meth:`~repro.prediction.predict.PerformancePredictor.invalidate`
calls) keep a cursor into the journal and re-score only what the events
since their cursor dirty.

Determinism: the journal is an ordered list — events replay in exactly
the order the mutations happened, never in set/dict-hash order (the
DET001 lesson).  The journal is bounded: past :data:`MAX_JOURNAL`
events the oldest half is compacted away and any consumer whose cursor
predates the surviving window receives ``None`` from
:meth:`DeltaTracker.events_since` and must rebuild from the full
repository state (which is always authoritative).
"""

from __future__ import annotations

from typing import Callable

#: One published mutation: ``(kind, a, b)``.
#:
#: ========== ============================ =======================
#: kind       a                            b
#: ========== ============================ =======================
#: host         host address                 (unused)
#: host-removed host address                 (unused)
#: weight       task name                    host address
#: task         task name                    (unused)
#: constraint   task name                    host address
#: user         user name                    tenant name
#: user-removed user name                    (unused)
#: tenant       tenant name                  (unused)
#: tenant-removed tenant name                (unused)
#: ========== ============================ =======================
DeltaEvent = tuple[str, str, str]

#: Journal bound: compaction halves the journal past this, trading a
#: full rebuild for laggard consumers against unbounded memory growth.
MAX_JOURNAL = 4096


class DeltaTracker:
    """Ordered, bounded journal of repository mutations.

    One tracker per :class:`SiteRepository`; the repository subscribes
    it to its databases at construction, so ``repo.delta.record`` is the
    single sink every ``_notify`` feeds.  ``generation`` is the monotone
    stamp consumers cursor on — it is bumped on **every** recorded
    event (the INV002 tracker contract: a journal mutation without a
    generation bump would let a cursor silently miss events).
    """

    __slots__ = ("generation", "_base", "_events", "max_journal")

    def __init__(self, max_journal: int = MAX_JOURNAL) -> None:
        #: total events ever recorded == the cursor of a fully-caught-up
        #: consumer; always ``_base + len(_events)``.
        self.generation = 0
        self._base = 0
        self._events: list[DeltaEvent] = []
        self.max_journal = max_journal

    def record(self, kind: str, a: str = "", b: str = "") -> None:
        """Append one mutation event (the ``_notify`` callback target)."""
        self._events.append((kind, a, b))
        self.generation += 1
        if len(self._events) > self.max_journal:
            drop = len(self._events) // 2
            del self._events[:drop]
            self._base += drop

    def events_since(self, cursor: int) -> list[DeltaEvent] | None:
        """Events recorded after *cursor*, oldest first.

        Returns ``None`` when compaction has discarded part of that
        range — the consumer's view is unreconstructable from deltas and
        must be rebuilt from the repository's current state.
        """
        if cursor < self._base:
            return None
        if cursor >= self.generation:
            return _NO_EVENTS
        return self._events[cursor - self._base:]

    def __len__(self) -> int:
        return len(self._events)


#: Shared empty slice for the caught-up case (no per-query allocation).
_NO_EVENTS: list[DeltaEvent] = []

#: The callback signature databases accept in ``subscribe``.
DeltaCallback = Callable[[str, str, str], None]
