"""The user-accounts database, extended with multi-tenant records.

Paper section 2: "each VDCE user account is represented by a 5-tuple:
user name, password, user ID, priority, and access domain type."
Passwords are stored salted-and-hashed (the paper predates that norm, but
storing plaintext would be indefensible even in a reproduction).

Beyond the paper: accounts belong to *tenants* — organisations sharing
the federation — each carrying an admission quota (processors, memory),
a DRF weight, and a submission rate limit.  The traffic subsystem
(``repro.traffic``) reads tenant records for admission control and
dominant-resource fairness; see ``docs/traffic.md``.

Like the other repository databases, every mutation publishes a delta
event through :meth:`UserAccountsDB.subscribe` (the INV002 contract), so
incremental consumers — admission controllers caching quota views —
observe account and tenant changes without re-walking the table.
"""

from __future__ import annotations

import hashlib
import json
import secrets
from dataclasses import dataclass
from pathlib import Path

from repro.repository.delta import DeltaCallback
from repro.repository.store import Table
from repro.util.errors import AuthenticationError, RepositoryError

#: Access-domain types: which parts of the VDCE a user may reach.
ACCESS_DOMAINS = ("local-site", "multi-site", "administrator")

#: Tenant every account lands in unless told otherwise.
DEFAULT_TENANT = "public"


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class UserAccount:
    """The paper's 5-tuple (password held as salt+hash) plus a tenant."""

    user_name: str
    password_salt: str
    password_hash: str
    user_id: int
    priority: int
    access_domain: str
    tenant: str = DEFAULT_TENANT

    def check_password(self, password: str) -> bool:
        """Constant-shape salted-hash comparison."""
        return _hash_password(password, self.password_salt) == self.password_hash


@dataclass(frozen=True)
class TenantRecord:
    """One tenant's admission contract.

    ``quota_procs`` / ``quota_memory_mb`` cap the tenant's concurrent
    allocation across the federation (``0`` means uncapped);  ``weight``
    scales its dominant-resource fair share; ``rate_per_s`` / ``burst``
    parameterise the admission token bucket (``rate_per_s == 0`` disables
    throttling); ``max_pending`` bounds the admitted-but-waiting queue
    (``0`` means unbounded — backpressure by quota alone).
    """

    name: str
    weight: float = 1.0
    quota_procs: int = 0
    quota_memory_mb: float = 0.0
    rate_per_s: float = 0.0
    burst: int = 1
    max_pending: int = 0


class UserAccountsDB:
    """Accounts + tenants keyed by name; authentication for the editor login.

    Delta kinds published (see :mod:`repro.repository.delta`):
    ``user`` (added), ``user-removed``, ``tenant`` (added or updated),
    ``tenant-removed`` — ``a`` is the user/tenant name, ``b`` the owning
    tenant for ``user`` events.
    """

    def __init__(self) -> None:
        self._table = Table("user-accounts")
        self._tenants = Table("tenants")
        self._next_id = 1
        # DB-wide version clock: bumped on every account/tenant mutation so
        # cached quota views can cheap-check staleness (INV001 pattern).
        self._version_clock = 0
        self._subscribers: list[DeltaCallback] = []

    @property
    def version(self) -> int:
        """Monotone stamp of the last account/tenant mutation."""
        return self._version_clock

    def subscribe(self, callback: DeltaCallback) -> None:
        """Register a delta callback ``cb(kind, a, b)`` (INV002 sink).

        Callbacks run synchronously in subscription order on every
        mutation — the :class:`~repro.repository.delta.DeltaTracker`
        journal therefore sees events in exactly mutation order.
        """
        self._subscribers.append(callback)

    def _notify(self, kind: str, a: str = "", b: str = "") -> None:
        for cb in self._subscribers:
            cb(kind, a, b)

    def _stamp(self, kind: str, a: str = "", b: str = "") -> None:
        self._version_clock += 1
        self._notify(kind, a, b)

    # -- accounts ---------------------------------------------------------
    def add_user(self, user_name: str, password: str, priority: int = 5,
                 access_domain: str = "local-site",
                 tenant: str = DEFAULT_TENANT) -> UserAccount:
        """Create an account (the paper's 5-tuple, plus its tenant)."""
        if not user_name:
            raise RepositoryError("user name may not be empty")
        if user_name in self._table:
            raise RepositoryError(f"user {user_name!r} already exists")
        if access_domain not in ACCESS_DOMAINS:
            raise RepositoryError(
                f"unknown access domain {access_domain!r}; "
                f"expected one of {ACCESS_DOMAINS}")
        if not 0 <= priority <= 10:
            raise RepositoryError("priority must be within [0, 10]")
        if tenant != DEFAULT_TENANT and tenant not in self._tenants:
            raise RepositoryError(f"unknown tenant {tenant!r}; "
                                  "add_tenant it first")
        salt = secrets.token_hex(8)
        account = UserAccount(
            user_name=user_name,
            password_salt=salt,
            password_hash=_hash_password(password, salt),
            user_id=self._next_id,
            priority=priority,
            access_domain=access_domain,
            tenant=tenant,
        )
        self._next_id += 1
        self._table.put(user_name, account.__dict__.copy())
        self._stamp("user", user_name, tenant)
        return account

    def authenticate(self, user_name: str, password: str) -> UserAccount:
        """Return the account on success; raise AuthenticationError otherwise.

        The error message never reveals whether the user exists.
        """
        row = self._table.get_or(user_name)
        if row is None:
            raise AuthenticationError("invalid user name or password")
        account = UserAccount(**row)
        if not account.check_password(password):
            raise AuthenticationError("invalid user name or password")
        return account

    def remove_user(self, user_name: str) -> None:
        """Delete an account."""
        self._table.delete(user_name)
        self._stamp("user-removed", user_name)

    def get(self, user_name: str) -> UserAccount:
        """Fetch an account without authenticating."""
        return UserAccount(**self._table.get(user_name))

    def __contains__(self, user_name: str) -> bool:
        return user_name in self._table

    def __len__(self) -> int:
        return len(self._table)

    # -- tenants ----------------------------------------------------------
    def add_tenant(self, record: TenantRecord) -> TenantRecord:
        """Create or replace a tenant's admission contract."""
        if not record.name:
            raise RepositoryError("tenant name may not be empty")
        if record.weight <= 0:
            raise RepositoryError("tenant weight must be positive")
        if record.quota_procs < 0 or record.quota_memory_mb < 0:
            raise RepositoryError("tenant quotas may not be negative")
        if record.rate_per_s < 0 or record.burst < 1 or record.max_pending < 0:
            raise RepositoryError("tenant rate/burst/max_pending out of range")
        self._tenants.put(record.name, record.__dict__.copy())
        self._stamp("tenant", record.name)
        return record

    def remove_tenant(self, name: str) -> None:
        """Delete a tenant record (accounts keep their tenant label)."""
        self._tenants.delete(name)
        self._stamp("tenant-removed", name)

    def tenant(self, name: str) -> TenantRecord:
        """Fetch a tenant's admission contract.

        The :data:`DEFAULT_TENANT` always resolves (uncapped, weight 1)
        even when never explicitly added.
        """
        row = self._tenants.get_or(name)
        if row is not None:
            return TenantRecord(**row)
        if name == DEFAULT_TENANT:
            return TenantRecord(name=DEFAULT_TENANT)
        raise RepositoryError(f"unknown tenant {name!r}")

    def has_tenant(self, name: str) -> bool:
        return name in self._tenants

    def tenant_names(self) -> list[str]:
        """All explicitly-registered tenant names, sorted."""
        return sorted(key for key, _row in self._tenants.items())

    def users_of(self, tenant: str) -> list[str]:
        """User names belonging to *tenant*, sorted."""
        return sorted(key for key, row in self._table.items()
                      if row.get("tenant", DEFAULT_TENANT) == tenant)

    # -- federation directory transfer (repro.federation.catchup) ----------
    #
    # A rejoining or newly-joined site replicates the directory by raw
    # row, never by replaying add_user: add_user draws a fresh salt, so
    # a replayed account would hash differently and the federation-wide
    # directory digest could never converge.

    def user_row(self, user_name: str) -> dict | None:
        """The raw stored account row, or None (a copy; transfer unit)."""
        row = self._table.get_or(user_name)
        return dict(row) if row is not None else None

    def tenant_row(self, name: str) -> dict | None:
        """The raw stored tenant row, or None (a copy; transfer unit)."""
        row = self._tenants.get_or(name)
        return dict(row) if row is not None else None

    def export_rows(self) -> dict[str, dict[str, dict]]:
        """Full raw directory snapshot: ``{"users": ..., "tenants": ...}``."""
        return {
            "users": {key: dict(row) for key, row in
                      sorted(self._table.items())},
            "tenants": {key: dict(row) for key, row in
                        sorted(self._tenants.items())},
        }

    def apply_user_row(self, user_name: str, row: dict | None) -> bool:
        """Install (or, with ``None``, remove) a transferred account row.

        Idempotent: applying a row identical to the stored one is a
        no-op that publishes no delta event, so repeated catch-ups from
        several peers neither churn the journal nor bump the version.
        Returns whether anything changed.
        """
        if row is None:
            if user_name not in self._table:
                return False
            self._table.delete(user_name)
            self._stamp("user-removed", user_name)
            return True
        if self._table.get_or(user_name) == row:
            return False
        self._table.put(user_name, dict(row))
        self._next_id = max(self._next_id, int(row["user_id"]) + 1)
        self._stamp("user", user_name, row.get("tenant", DEFAULT_TENANT))
        return True

    def apply_tenant_row(self, name: str, row: dict | None) -> bool:
        """Install (or remove) a transferred tenant row; see apply_user_row."""
        if row is None:
            if name not in self._tenants:
                return False
            self._tenants.delete(name)
            self._stamp("tenant-removed", name)
            return True
        if self._tenants.get_or(name) == row:
            return False
        self._tenants.put(name, dict(row))
        self._stamp("tenant", name)
        return True

    def directory_digest(self) -> str:
        """SHA-256 over the canonical-JSON raw directory.

        Two sites whose digests match hold byte-identical directories —
        the convergence check the federation catch-up acceptance tests
        (and ``docs/federation.md``) are built on.
        """
        canonical = json.dumps(self.export_rows(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # persistence passthrough
    @staticmethod
    def _tenants_path(path: str | Path) -> Path:
        path = Path(path)
        return path.with_name(path.stem + "_tenants" + path.suffix)

    def save(self, path: str | Path) -> None:
        self._table.save(path)
        self._tenants.save(self._tenants_path(path))

    @classmethod
    def load(cls, path: str | Path) -> "UserAccountsDB":
        db = cls()
        db._table = Table.load(path)
        tenants_file = cls._tenants_path(path)
        if tenants_file.exists():
            db._tenants = Table.load(tenants_file)
        # pre-tenancy persisted rows carry no tenant column
        for _key, row in db._table.items():
            row.setdefault("tenant", DEFAULT_TENANT)
        ids = [row["user_id"] for _k, row in db._table.items()]
        db._next_id = max(ids, default=0) + 1
        return db
