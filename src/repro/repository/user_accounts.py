"""The user-accounts database.

Paper section 2: "each VDCE user account is represented by a 5-tuple:
user name, password, user ID, priority, and access domain type."
Passwords are stored salted-and-hashed (the paper predates that norm, but
storing plaintext would be indefensible even in a reproduction).
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from pathlib import Path

from repro.repository.store import Table
from repro.util.errors import AuthenticationError, RepositoryError

#: Access-domain types: which parts of the VDCE a user may reach.
ACCESS_DOMAINS = ("local-site", "multi-site", "administrator")


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class UserAccount:
    """The paper's 5-tuple (password held as salt+hash)."""

    user_name: str
    password_salt: str
    password_hash: str
    user_id: int
    priority: int
    access_domain: str

    def check_password(self, password: str) -> bool:
        """Constant-shape salted-hash comparison."""
        return _hash_password(password, self.password_salt) == self.password_hash


class UserAccountsDB:
    """Accounts keyed by user name; authentication for the editor login."""

    def __init__(self) -> None:
        self._table = Table("user-accounts")
        self._next_id = 1

    def add_user(self, user_name: str, password: str, priority: int = 5,
                 access_domain: str = "local-site") -> UserAccount:
        """Create an account (the paper's 5-tuple)."""
        if not user_name:
            raise RepositoryError("user name may not be empty")
        if user_name in self._table:
            raise RepositoryError(f"user {user_name!r} already exists")
        if access_domain not in ACCESS_DOMAINS:
            raise RepositoryError(
                f"unknown access domain {access_domain!r}; "
                f"expected one of {ACCESS_DOMAINS}")
        if not 0 <= priority <= 10:
            raise RepositoryError("priority must be within [0, 10]")
        salt = secrets.token_hex(8)
        account = UserAccount(
            user_name=user_name,
            password_salt=salt,
            password_hash=_hash_password(password, salt),
            user_id=self._next_id,
            priority=priority,
            access_domain=access_domain,
        )
        self._next_id += 1
        self._table.put(user_name, account.__dict__.copy())
        return account

    def authenticate(self, user_name: str, password: str) -> UserAccount:
        """Return the account on success; raise AuthenticationError otherwise.

        The error message never reveals whether the user exists.
        """
        row = self._table.get_or(user_name)
        if row is None:
            raise AuthenticationError("invalid user name or password")
        account = UserAccount(**row)
        if not account.check_password(password):
            raise AuthenticationError("invalid user name or password")
        return account

    def remove_user(self, user_name: str) -> None:
        """Delete an account."""
        self._table.delete(user_name)

    def get(self, user_name: str) -> UserAccount:
        """Fetch an account without authenticating."""
        return UserAccount(**self._table.get(user_name))

    def __contains__(self, user_name: str) -> bool:
        return user_name in self._table

    def __len__(self) -> int:
        return len(self._table)

    # persistence passthrough
    def save(self, path: str | Path) -> None:
        self._table.save(path)

    @classmethod
    def load(cls, path: str | Path) -> "UserAccountsDB":
        db = cls()
        db._table = Table.load(path)
        ids = [row["user_id"] for _k, row in db._table.items()]
        db._next_id = max(ids, default=0) + 1
        return db
