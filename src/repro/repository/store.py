"""A small JSON-backed keyed table.

All four site-repository databases (paper section 2: user-accounts,
resource-performance, task-performance, task-constraints) persist through
this primitive: an in-memory dict of JSON-serialisable records with
optional save/load to disk, standing in for the paper's "web-based
repository" storage.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.util.errors import NotRegisteredError, RepositoryError


class Table:
    """Keyed records with JSON persistence.

    Keys are strings (composite keys are joined with ``"|"`` by callers);
    values must be JSON-serialisable.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._rows: dict[str, Any] = {}

    # -- CRUD ---------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Insert or replace a record."""
        self._rows[key] = value

    def get(self, key: str) -> Any:
        """Fetch a record; raises NotRegisteredError when missing."""
        try:
            return self._rows[key]
        except KeyError:
            raise NotRegisteredError(
                f"{self.name}: no record for key {key!r}") from None

    def get_or(self, key: str, default: Any = None) -> Any:
        """Fetch a record or return *default*."""
        return self._rows.get(key, default)

    def delete(self, key: str) -> None:
        """Remove a record; raises when missing."""
        if key not in self._rows:
            raise NotRegisteredError(
                f"{self.name}: cannot delete missing key {key!r}")
        del self._rows[key]

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def keys(self) -> list[str]:
        """All record keys."""
        return list(self._rows)

    def items(self) -> list[tuple[str, Any]]:
        """All (key, record) pairs."""
        return list(self._rows.items())

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the table to *path* as JSON."""
        path = Path(path)
        try:
            payload = json.dumps({"table": self.name, "rows": self._rows},
                                 indent=2, sort_keys=True)
        except TypeError as exc:
            raise RepositoryError(
                f"{self.name}: non-JSON-serialisable record: {exc}") from exc
        path.write_text(payload)

    @classmethod
    def load(cls, path: str | Path) -> "Table":
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RepositoryError(f"cannot load table from {path}: {exc}") from exc
        if not isinstance(doc, dict) or "table" not in doc or "rows" not in doc:
            raise RepositoryError(f"{path} is not a saved table")
        table = cls(doc["table"])
        table._rows = dict(doc["rows"])
        return table


def composite_key(*parts: str) -> str:
    """Join key components; components may not contain the separator."""
    for p in parts:
        if "|" in p:
            raise RepositoryError(f"key component {p!r} contains '|'")
    return "|".join(parts)
