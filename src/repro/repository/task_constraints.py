"""The task-constraints database.

Paper section 2: "In order to find locations of a task's executables,
VDCE stores location information of each task (i.e., the absolute path of
the task executable) for each host in the task-constraints database.  Due
to specific library requirements, some task executables may reside only
on some of the hosts."

The Host Selection Algorithm filters its candidate set through this
database: a host without the task's executable is infeasible regardless
of its predicted performance.
"""

from __future__ import annotations

from pathlib import Path

from repro.repository.delta import DeltaCallback
from repro.repository.store import Table, composite_key
from repro.util.errors import NotRegisteredError
from repro.util.versioned import versioned


@versioned("_version")
class TaskConstraintsDB:
    """Maps (task, host-address) to the executable's absolute path.

    Carries a version stamp like its sibling databases: constraint
    edits gate *feasibility* rather than Predict values, so nothing
    memoizes on the stamp, but the incremental scheduling layer needs
    every mutation published (INV002) to keep its candidate views
    honest when executables appear on or vanish from hosts.
    """

    def __init__(self) -> None:
        self._table = Table("task-constraints")
        self._hosts_by_task: dict[str, set[str]] = {}
        self._version = 0
        self._subscribers: list[DeltaCallback] = []

    @property
    def version(self) -> int:
        """Monotone counter bumped on every constraint edit."""
        return self._version

    def subscribe(self, callback: DeltaCallback) -> None:
        """Register a delta callback ``cb(kind, a, b)`` (INV002 sink)."""
        self._subscribers.append(callback)

    def _notify(self, kind: str, a: str = "", b: str = "") -> None:
        for cb in self._subscribers:
            cb(kind, a, b)

    def register_executable(self, task_name: str, host: str,
                            path: str) -> None:
        """Record that *host* has an executable for *task* at *path*."""
        self._table.put(composite_key(task_name, host), path)
        self._hosts_by_task.setdefault(task_name, set()).add(host)
        self._version += 1
        self._notify("constraint", task_name, host)

    def unregister_executable(self, task_name: str, host: str) -> None:
        self._table.delete(composite_key(task_name, host))
        self._hosts_by_task[task_name].discard(host)
        self._version += 1
        self._notify("constraint", task_name, host)

    def executable_path(self, task_name: str, host: str) -> str:
        """Absolute path of a task's executable on one host."""
        try:
            return str(self._table.get(composite_key(task_name, host)))
        except NotRegisteredError:
            raise NotRegisteredError(
                f"task {task_name!r} has no executable on host {host!r}"
            ) from None

    def is_runnable_on(self, task_name: str, host: str) -> bool:
        """True when the host holds an executable for the task."""
        return composite_key(task_name, host) in self._table

    def hosts_with(self, task_name: str) -> set[str]:
        """Every host that holds an executable for *task_name*."""
        return set(self._hosts_by_task.get(task_name, set()))

    def tasks_on(self, host: str) -> set[str]:
        """Every task installed on one host."""
        return {task for task, hosts in self._hosts_by_task.items()
                if host in hosts}

    # -- persistence -----------------------------------------------------
    def save(self, path: str | Path) -> None:
        self._table.save(path)

    @classmethod
    def load(cls, path: str | Path) -> "TaskConstraintsDB":
        db = cls()
        db._table = Table.load(path)
        for key in db._table.keys():
            task, host = key.split("|", 1)
            db._hosts_by_task.setdefault(task, set()).add(host)
        return db
