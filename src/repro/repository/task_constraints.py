"""The task-constraints database.

Paper section 2: "In order to find locations of a task's executables,
VDCE stores location information of each task (i.e., the absolute path of
the task executable) for each host in the task-constraints database.  Due
to specific library requirements, some task executables may reside only
on some of the hosts."

The Host Selection Algorithm filters its candidate set through this
database: a host without the task's executable is infeasible regardless
of its predicted performance.
"""

from __future__ import annotations

from pathlib import Path

from repro.repository.store import Table, composite_key
from repro.util.errors import NotRegisteredError


class TaskConstraintsDB:
    """Maps (task, host-address) to the executable's absolute path."""

    def __init__(self) -> None:
        self._table = Table("task-constraints")
        self._hosts_by_task: dict[str, set[str]] = {}

    def register_executable(self, task_name: str, host: str,
                            path: str) -> None:
        """Record that *host* has an executable for *task* at *path*."""
        self._table.put(composite_key(task_name, host), path)
        self._hosts_by_task.setdefault(task_name, set()).add(host)

    def unregister_executable(self, task_name: str, host: str) -> None:
        self._table.delete(composite_key(task_name, host))
        self._hosts_by_task[task_name].discard(host)

    def executable_path(self, task_name: str, host: str) -> str:
        """Absolute path of a task's executable on one host."""
        try:
            return str(self._table.get(composite_key(task_name, host)))
        except NotRegisteredError:
            raise NotRegisteredError(
                f"task {task_name!r} has no executable on host {host!r}"
            ) from None

    def is_runnable_on(self, task_name: str, host: str) -> bool:
        """True when the host holds an executable for the task."""
        return composite_key(task_name, host) in self._table

    def hosts_with(self, task_name: str) -> set[str]:
        """Every host that holds an executable for *task_name*."""
        return set(self._hosts_by_task.get(task_name, set()))

    def tasks_on(self, host: str) -> set[str]:
        """Every task installed on one host."""
        return {task for task, hosts in self._hosts_by_task.items()
                if host in hosts}

    # -- persistence -----------------------------------------------------
    def save(self, path: str | Path) -> None:
        self._table.save(path)

    @classmethod
    def load(cls, path: str | Path) -> "TaskConstraintsDB":
        db = cls()
        db._table = Table.load(path)
        for key in db._table.keys():
            task, host = key.split("|", 1)
            db._hosts_by_task.setdefault(task, set()).add(host)
        return db
