"""The resource-performance database.

Paper section 2: attributes are "grouped into two parts: a) static
attributes stored in the database once during the initial configuration
of VDCE such as: host name, IP address, architecture type, OS type, and
total memory size; and b) dynamic attributes that are updated
periodically, such as recent load measurement and available memory size."

The scheduler reads *this* view — which lags ground truth by the
monitoring pipeline's reporting period and significant-change filter.
That staleness is a first-class quantity in experiment F6.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.repository.delta import DeltaCallback
from repro.repository.store import Table
from repro.resources.host import HostSpec
from repro.util.errors import NotRegisteredError
from repro.util.versioned import versioned

#: Window length for "a window of most recent workload measurements"
#: (paper section 2.2.1) retained per host for forecasting.
DEFAULT_WINDOW = 16


@dataclass
class ResourceRecord:
    """One host's repository view: static spec + dynamic measurements."""

    # static attributes
    host_name: str
    site: str
    ip: str
    arch: str
    os: str
    cpu_factor: float
    total_memory_mb: float
    group: str
    # dynamic attributes
    cpu_load: float = 0.0
    available_memory_mb: float = 0.0
    status: str = "up"  # "up" | "down"
    last_update: float = 0.0
    load_window: list[float] = field(default_factory=list)
    load_window_times: list[float] = field(default_factory=list)
    #: Monotone snapshot stamp, bumped by the owning DB on every dynamic
    #: update or status change.  Prediction memoization keys on it, so a
    #: changed version is what invalidates cached Predict results.
    version: int = 0

    @property
    def address(self) -> str:
        return f"{self.site}/{self.host_name}"


@versioned("_version_clock")
class ResourcePerformanceDB:
    """Repository table of :class:`ResourceRecord` keyed by host address."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._table = Table("resource-performance")
        self._records: dict[str, ResourceRecord] = {}
        self.window = window
        # DB-wide version clock: every mutation stamps the touched record
        # with a fresh value, so (address, version) pairs never repeat —
        # even across unregister/re-register of the same host.
        self._version_clock = 0
        self._subscribers: list[DeltaCallback] = []

    def subscribe(self, callback: DeltaCallback) -> None:
        """Register a delta callback ``cb(kind, a, b)`` (INV002 sink).

        Callbacks run synchronously in subscription order on every
        mutation — the :class:`~repro.repository.delta.DeltaTracker`
        journal therefore sees events in exactly mutation order.
        """
        self._subscribers.append(callback)

    def _notify(self, kind: str, a: str = "", b: str = "") -> None:
        for cb in self._subscribers:
            cb(kind, a, b)

    def _stamp(self, rec: ResourceRecord) -> None:
        self._version_clock += 1
        rec.version = self._version_clock
        self._notify("host", rec.address)

    # -- registration ----------------------------------------------------
    def register_host(self, site: str, spec: HostSpec) -> ResourceRecord:
        """Store a host's static attributes (initial configuration)."""
        rec = ResourceRecord(
            host_name=spec.name, site=site, ip=spec.ip, arch=spec.arch,
            os=spec.os, cpu_factor=spec.cpu_factor,
            total_memory_mb=spec.memory_mb, group=spec.group,
            available_memory_mb=spec.memory_mb,
        )
        self._stamp(rec)
        self._records[rec.address] = rec
        return rec

    def unregister_host(self, address: str) -> None:
        """Drop a host removed from the VDCE."""
        if address not in self._records:
            raise NotRegisteredError(f"no resource record for {address!r}")
        del self._records[address]
        # bump the clock too: a re-registration of the same address must
        # never reuse a (address, version) pair the removal interleaved
        self._version_clock += 1
        self._notify("host-removed", address)

    # -- dynamic updates (driven by the Site Manager) ----------------------
    def update_dynamic(self, address: str, cpu_load: float,
                       available_memory_mb: float, time: float) -> None:
        """Apply one monitoring update (load + memory + window)."""
        rec = self.get(address)
        rec.cpu_load = cpu_load
        rec.available_memory_mb = available_memory_mb
        rec.last_update = time
        rec.load_window.append(cpu_load)
        rec.load_window_times.append(time)
        if len(rec.load_window) > self.window:
            del rec.load_window[0]
            del rec.load_window_times[0]
        self._stamp(rec)

    def mark_down(self, address: str, time: float) -> None:
        """Record a detected host failure (scheduling excludes it)."""
        rec = self.get(address)
        rec.status = "down"
        rec.last_update = time
        self._stamp(rec)

    def mark_up(self, address: str, time: float) -> None:
        """Record a detected host recovery."""
        rec = self.get(address)
        rec.status = "up"
        rec.last_update = time
        self._stamp(rec)

    # -- queries -----------------------------------------------------------
    def get(self, address: str) -> ResourceRecord:
        """Fetch one host's record by ``site/host`` address."""
        try:
            return self._records[address]
        except KeyError:
            raise NotRegisteredError(
                f"no resource record for {address!r}") from None

    def __contains__(self, address: str) -> bool:
        return address in self._records

    def __len__(self) -> int:
        return len(self._records)

    def hosts_at(self, site: str, include_down: bool = False
                 ) -> list[ResourceRecord]:
        """All (by default: up) hosts registered for *site*."""
        return [r for r in self._records.values()
                if r.site == site and (include_down or r.status == "up")]

    def all_records(self) -> list[ResourceRecord]:
        """Every registered host's record (up and down)."""
        return list(self._records.values())

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> None:
        for addr, rec in self._records.items():
            self._table.put(addr, asdict(rec))
        self._table.save(path)

    @classmethod
    def load(cls, path: str | Path) -> "ResourcePerformanceDB":
        db = cls()
        db._table = Table.load(path)
        for _key, row in db._table.items():
            rec = ResourceRecord(**row)
            db._records[rec.address] = rec
        # resume the clock past every persisted stamp so future mutations
        # never reuse a (address, version) pair
        db._version_clock = max(
            (r.version for r in db._records.values()), default=0)
        return db
