"""Site repository: the four per-site databases of the paper."""

from repro.repository.delta import MAX_JOURNAL, DeltaEvent, DeltaTracker
from repro.repository.resource_perf import (
    DEFAULT_WINDOW,
    ResourcePerformanceDB,
    ResourceRecord,
)
from repro.repository.site_repository import SiteRepository
from repro.repository.store import Table, composite_key
from repro.repository.task_constraints import TaskConstraintsDB
from repro.repository.task_perf import (
    ExecutionSample,
    TaskPerformanceDB,
    TaskPerformanceRecord,
)
from repro.repository.webserver import RepositoryWebServer
from repro.repository.user_accounts import (
    ACCESS_DOMAINS,
    DEFAULT_TENANT,
    TenantRecord,
    UserAccount,
    UserAccountsDB,
)

__all__ = [
    "ACCESS_DOMAINS",
    "DEFAULT_TENANT",
    "DEFAULT_WINDOW",
    "DeltaEvent",
    "DeltaTracker",
    "ExecutionSample",
    "MAX_JOURNAL",
    "ResourcePerformanceDB",
    "RepositoryWebServer",
    "ResourceRecord",
    "SiteRepository",
    "Table",
    "TaskConstraintsDB",
    "TaskPerformanceDB",
    "TaskPerformanceRecord",
    "TenantRecord",
    "UserAccount",
    "UserAccountsDB",
    "composite_key",
]
