"""The site repository: the four databases bundled per site.

Paper section 2: "Site repository, the web-based storage environment
within a VDCE site, consists of four different databases."  Every VDCE
site owns one :class:`SiteRepository`; the Site Manager is its sole
writer for dynamic data, and the Application Scheduler reads it through
the Site Manager (Figure 2).
"""

from __future__ import annotations

from pathlib import Path

from repro.repository.delta import DeltaTracker
from repro.repository.resource_perf import ResourcePerformanceDB
from repro.repository.task_constraints import TaskConstraintsDB
from repro.repository.task_perf import TaskPerformanceDB
from repro.repository.user_accounts import UserAccountsDB


class SiteRepository:
    """User accounts + resource performance + task performance + constraints."""

    def __init__(self, site: str) -> None:
        self.site = site
        self.user_accounts = UserAccountsDB()
        self.resource_performance = ResourcePerformanceDB()
        self.task_performance = TaskPerformanceDB()
        self.task_constraints = TaskConstraintsDB()
        self.delta = DeltaTracker()
        self._wire_delta()

    def _wire_delta(self) -> None:
        """Subscribe the shared change journal to the mutable databases.

        Every incremental consumer (score views, targeted prediction
        invalidation) cursors on ``self.delta``; re-wired whenever a
        database instance is replaced (:meth:`load`).
        """
        self.user_accounts.subscribe(self.delta.record)
        self.resource_performance.subscribe(self.delta.record)
        self.task_performance.subscribe(self.delta.record)
        self.task_constraints.subscribe(self.delta.record)

    # -- persistence -----------------------------------------------------
    _FILES = {
        "user_accounts": "user_accounts.json",
        "resource_performance": "resource_performance.json",
        "task_performance": "task_performance.json",
        "task_constraints": "task_constraints.json",
    }

    def save(self, directory: str | Path) -> None:
        """Persist all four databases under *directory*."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.user_accounts.save(directory / self._FILES["user_accounts"])
        self.resource_performance.save(
            directory / self._FILES["resource_performance"])
        self.task_performance.save(
            directory / self._FILES["task_performance"])
        self.task_constraints.save(
            directory / self._FILES["task_constraints"])

    @classmethod
    def load(cls, site: str, directory: str | Path) -> "SiteRepository":
        directory = Path(directory)
        repo = cls(site)
        repo.user_accounts = UserAccountsDB.load(
            directory / cls._FILES["user_accounts"])
        repo.resource_performance = ResourcePerformanceDB.load(
            directory / cls._FILES["resource_performance"])
        repo.task_performance = TaskPerformanceDB.load(
            directory / cls._FILES["task_performance"])
        repo.task_constraints = TaskConstraintsDB.load(
            directory / cls._FILES["task_constraints"])
        # the freshly-loaded DB instances replaced the subscribed ones:
        # start a new journal generation and re-subscribe
        repo.delta = DeltaTracker()
        repo._wire_delta()
        return repo
