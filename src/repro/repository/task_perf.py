"""The task-performance database.

Paper section 2: "The task-performance database provides performance
characteristics for each task in the system, and is used to predict the
performance of the task on a given resource.  Each task implementation is
specified by several parameters such as computation size, communication
size, required memory size, etc."

It also stores the two measured quantities the prediction function needs
(section 2.2.1):

* ``MeasuredTime(task, R_base)`` — execution time on a dedicated *base
  processor* for unit-size input, obtained by a trial run;
* ``Weight(task, R)`` — the per-task computing-power weight of host R
  relative to the base processor (citing Yan & Zhang / Zaki et al.:
  heterogeneity is task-dependent).  Weights start unknown, are seeded by
  calibration trial runs, and are refined by an exponentially weighted
  moving average as executions complete ("the newly measured execution
  time of each application task is stored in the task-performance
  database").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

from repro.repository.delta import DeltaCallback
from repro.repository.store import Table, composite_key
from repro.util.errors import NotRegisteredError, RepositoryError
from repro.util.versioned import versioned


@dataclass
class TaskPerformanceRecord:
    """Static performance characteristics of one library task."""

    task_name: str
    #: dedicated base-processor execution time for unit-size input (s)
    base_time_s: float
    #: abstract operation count per unit input (relative compute size)
    computation_size: float
    #: output bytes produced per unit input (relative communication size)
    communication_size: float
    #: resident memory required per unit input (MB)
    memory_mb: float


@dataclass
class ExecutionSample:
    """One completed execution, as reported back by the Site Manager."""

    host: str
    input_size: float
    elapsed_s: float
    time: float
    observed_weight: float | None = None


@versioned("_version")
class TaskPerformanceDB:
    """Task records, per-(task, host) weights, and execution history."""

    #: EWMA smoothing factor for weight refinement.
    ALPHA = 0.3

    def __init__(self) -> None:
        self._records: dict[str, TaskPerformanceRecord] = {}
        self._weights: dict[str, float] = {}  # key: task|host
        self._history: dict[str, list[ExecutionSample]] = {}
        self._version = 0
        self._subscribers: list[DeltaCallback] = []

    def subscribe(self, callback: DeltaCallback) -> None:
        """Register a delta callback ``cb(kind, a, b)`` (INV002 sink)."""
        self._subscribers.append(callback)

    def _notify(self, kind: str, a: str = "", b: str = "") -> None:
        for cb in self._subscribers:
            cb(kind, a, b)

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever a weight changes.

        Prediction memoization keys on it so cached ``Predict`` values go
        stale the moment calibration or EWMA refinement lands.
        """
        return self._version

    # -- task registration ----------------------------------------------
    def register_task(self, task_name: str, base_time_s: float,
                      computation_size: float = 1.0,
                      communication_size: float = 0.0,
                      memory_mb: float = 1.0) -> TaskPerformanceRecord:
        if base_time_s <= 0:
            raise RepositoryError(
                f"base time for {task_name!r} must be positive")
        if task_name in self._records:
            raise RepositoryError(f"task {task_name!r} already registered")
        rec = TaskPerformanceRecord(
            task_name=task_name, base_time_s=base_time_s,
            computation_size=computation_size,
            communication_size=communication_size, memory_mb=memory_mb)
        self._records[task_name] = rec
        self._version += 1
        self._notify("task", task_name)
        return rec

    def get(self, task_name: str) -> TaskPerformanceRecord:
        """Fetch a task's static performance record."""
        try:
            return self._records[task_name]
        except KeyError:
            raise NotRegisteredError(
                f"no task-performance record for {task_name!r}") from None

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._records

    def task_names(self) -> list[str]:
        """Every registered task name."""
        return list(self._records)

    # -- computing-power weights -------------------------------------------
    def set_weight(self, task_name: str, host: str, weight: float) -> None:
        """Seed a weight from a calibration trial run."""
        if weight <= 0:
            raise RepositoryError("computing-power weight must be positive")
        self.get(task_name)  # validate task exists
        self._weights[composite_key(task_name, host)] = weight
        self._version += 1
        self._notify("weight", task_name, host)

    def weight(self, task_name: str, host: str,
               default: float | None = None) -> float:
        """The weight of *host* for *task*; *default* when never measured."""
        key = composite_key(task_name, host)
        w = self._weights.get(key)
        if w is not None:
            return w
        if default is not None:
            return default
        raise NotRegisteredError(
            f"no computing-power weight for task {task_name!r} on "
            f"host {host!r} and no default given")

    def has_weight(self, task_name: str, host: str) -> bool:
        """True when a calibrated/learned weight exists for the pair."""
        return composite_key(task_name, host) in self._weights

    # -- execution history ----------------------------------------------------
    def record_execution(self, task_name: str, host: str, input_size: float,
                         elapsed_s: float, time: float,
                         dedicated_elapsed_s: float | None = None,
                         base_time_at_size_s: float | None = None) -> None:
        """Store a completed execution; refine the weight when possible.

        *dedicated_elapsed_s* is the execution time with the time-sharing
        slowdown factored out (the Application Controller knows the loads
        it observed); when given, the implied weight updates the EWMA.
        *base_time_at_size_s* is the base-processor time at this input
        size (the controller evaluates the task's complexity model); the
        fallback assumes linear scaling, which is only correct for
        linear-complexity tasks.
        """
        rec = self.get(task_name)
        sample = ExecutionSample(host=host, input_size=input_size,
                                 elapsed_s=elapsed_s, time=time)
        if dedicated_elapsed_s is not None and input_size > 0:
            base = (base_time_at_size_s if base_time_at_size_s is not None
                    else rec.base_time_s * max(input_size, 1e-12))
            observed = dedicated_elapsed_s / base
            sample.observed_weight = observed
            key = composite_key(task_name, host)
            prev = self._weights.get(key)
            if prev is None:
                self._weights[key] = observed
            else:
                self._weights[key] = (1 - self.ALPHA) * prev + self.ALPHA * observed
            self._version += 1
            self._notify("weight", task_name, host)
        self._history.setdefault(task_name, []).append(sample)

    def history(self, task_name: str,
                host: str | None = None) -> list[ExecutionSample]:
        """Recorded executions of a task, optionally for one host."""
        samples = self._history.get(task_name, [])
        if host is None:
            return list(samples)
        return [s for s in samples if s.host == host]

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> None:
        table = Table("task-performance")
        table.put("records", {k: asdict(v) for k, v in self._records.items()})
        table.put("weights", dict(self._weights))
        table.put("history", {
            k: [asdict(s) for s in v] for k, v in self._history.items()})
        table.save(path)

    @classmethod
    def load(cls, path: str | Path) -> "TaskPerformanceDB":
        table = Table.load(path)
        db = cls()
        for name, row in table.get("records").items():
            db._records[name] = TaskPerformanceRecord(**row)
        db._weights = dict(table.get("weights"))
        for name, rows in table.get("history").items():
            db._history[name] = [ExecutionSample(**r) for r in rows]
        return db
