"""The web-based repository interface.

Paper section 2: the site repository is "the *web-based* storage
environment within a VDCE site", and the Site Manager "bridges the VDCE
modules to the web-based repository" over URL connections.  This module
provides that HTTP face with the standard library: a read-only JSON API
over one :class:`SiteRepository`, plus authenticated session creation
against the user-accounts database (the editor's login step as an actual
HTTP exchange).

Endpoints (all JSON):

* ``GET  /``                          — site name + endpoint index
* ``GET  /resource-performance``      — every host record
* ``GET  /resource-performance/<site>/<host>`` — one host record
* ``GET  /task-performance``          — task records + weight count
* ``GET  /task-performance/<task>``   — one task record + its history
* ``GET  /task-constraints/<task>``   — hosts holding the executable
* ``POST /login``                     — ``{"user": ..., "password": ...}``
  → 200 with the account's public fields, or 401

The server runs on a daemon thread; it exists for fidelity and as a
debugging window, not as the simulation's transport (daemons talk over
the simulated network).
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote

from repro.repository.site_repository import SiteRepository
from repro.util.errors import AuthenticationError, NotRegisteredError


class _Handler(BaseHTTPRequestHandler):
    repository: SiteRepository  # installed by the server factory

    # -- plumbing -----------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        pass  # silence stderr noise

    def _reply(self, status: int, payload: object) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- GET ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parts = [unquote(p) for p in self.path.strip("/").split("/") if p]
        repo = self.repository
        try:
            if not parts:
                self._reply(200, {
                    "site": repo.site,
                    "endpoints": ["/resource-performance",
                                  "/task-performance",
                                  "/task-constraints/<task>", "/login"]})
            elif parts[0] == "resource-performance" and len(parts) == 1:
                self._reply(200, [asdict(r) for r in
                                  repo.resource_performance.all_records()])
            elif parts[0] == "resource-performance" and len(parts) == 3:
                rec = repo.resource_performance.get(f"{parts[1]}/{parts[2]}")
                self._reply(200, asdict(rec))
            elif parts[0] == "task-performance" and len(parts) == 1:
                names = repo.task_performance.task_names()
                self._reply(200, {"tasks": names, "count": len(names)})
            elif parts[0] == "task-performance" and len(parts) == 2:
                rec = repo.task_performance.get(parts[1])
                history = repo.task_performance.history(parts[1])
                self._reply(200, {"record": asdict(rec),
                                  "executions": [asdict(s)
                                                 for s in history]})
            elif parts[0] == "task-constraints" and len(parts) == 2:
                hosts = sorted(repo.task_constraints.hosts_with(parts[1]))
                self._reply(200, {"task": parts[1], "hosts": hosts})
            else:
                self._reply(404, {"error": f"no such endpoint {self.path}"})
        except NotRegisteredError as exc:
            self._reply(404, {"error": str(exc)})

    # -- POST ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        if self.path.rstrip("/") != "/login":
            self._reply(404, {"error": f"no such endpoint {self.path}"})
            return
        length = int(self.headers.get("Content-Length", 0))
        try:
            doc = json.loads(self.rfile.read(length) or b"{}")
            account = self.repository.user_accounts.authenticate(
                doc.get("user", ""), doc.get("password", ""))
        except json.JSONDecodeError:
            self._reply(400, {"error": "request body must be JSON"})
            return
        except AuthenticationError as exc:
            self._reply(401, {"error": str(exc)})
            return
        self._reply(200, {"user_name": account.user_name,
                          "user_id": account.user_id,
                          "priority": account.priority,
                          "access_domain": account.access_domain})


class RepositoryWebServer:
    """Serve one site repository over HTTP on a daemon thread."""

    def __init__(self, repository: SiteRepository,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,),
                       {"repository": repository})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repo-web", daemon=True)
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and release the port."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
