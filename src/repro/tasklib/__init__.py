"""VDCE task libraries: the editor's menu-driven building blocks."""

from repro.tasklib.base import (
    COMPLEXITY_FUNCTIONS,
    TaskDefinition,
    TaskSignature,
    compute_scale,
    validate_unique_names,
)
from repro.tasklib.c3i import build_c3i_library
from repro.tasklib.fourier import build_fourier_library
from repro.tasklib.imaging import build_imaging_library
from repro.tasklib.matrix import build_matrix_library
from repro.tasklib.registry import LibraryRegistry, TaskLibrary, build_registry


def standard_registry() -> LibraryRegistry:
    """The default VDCE installation: matrix, Fourier, C3I, and imaging
    libraries."""
    return build_registry([
        build_matrix_library(),
        build_fourier_library(),
        build_c3i_library(),
        build_imaging_library(),
    ])


__all__ = [
    "COMPLEXITY_FUNCTIONS",
    "LibraryRegistry",
    "TaskDefinition",
    "TaskLibrary",
    "TaskSignature",
    "build_c3i_library",
    "build_fourier_library",
    "build_imaging_library",
    "build_matrix_library",
    "build_registry",
    "compute_scale",
    "standard_registry",
    "validate_unique_names",
]
