"""The matrix-operations task library.

This is the library the paper's Figure 3 draws from: the Linear Equation
Solver application selects "LU decomposition, matrix inversion, matrix
multiplication, etc. ... from the matrix operations menu".

Every task has a real NumPy implementation so applications produce
verifiable numerics, and a 1997-calibrated performance model (base times
chosen so a 100x100 LU takes ~1s on the dedicated base processor, in the
ballpark of a mid-90s SPARCstation).

The LU decomposition is implemented without pivoting (Doolittle), exactly
solvable because the library's generators produce diagonally dominant
systems; this keeps the Figure 3 dataflow (invert L and U independently,
multiply the inverses) algebraically exact: ``A^-1 = U^-1 @ L^-1``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.tasklib.base import TaskDefinition, TaskSignature
from repro.tasklib.registry import TaskLibrary
from repro.util.errors import ExecutionError

LIBRARY_NAME = "matrix-operations"


def _as_matrix(value: Any, task: str, port: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2:
        raise ExecutionError(
            f"{task}: port {port!r} expected a matrix, got shape {arr.shape}")
    return arr


def _as_vector(value: Any, task: str, port: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 1:
        raise ExecutionError(
            f"{task}: port {port!r} expected a vector, got shape {arr.shape}")
    return arr


# -- implementations ---------------------------------------------------------

def _impl_matrix_generate(inputs: dict, params: dict) -> dict:
    n = int(params.get("n", 100))
    seed = int(params.get("seed", 0))
    kind = params.get("kind", "diag-dominant")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    if kind == "diag-dominant":
        a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    elif kind == "spd":
        a = a @ a.T + n * np.eye(n)
    elif kind != "random":
        raise ExecutionError(f"matrix-generate: unknown kind {kind!r}")
    return {"matrix": a}


def _impl_vector_generate(inputs: dict, params: dict) -> dict:
    n = int(params.get("n", 100))
    seed = int(params.get("seed", 1))
    rng = np.random.default_rng(seed)
    return {"vector": rng.standard_normal(n)}


def _impl_lu(inputs: dict, params: dict) -> dict:
    """Doolittle LU (no pivoting): A = L @ U, unit-diagonal L."""
    a = _as_matrix(inputs["matrix"], "lu-decomposition", "matrix")
    n = a.shape[0]
    if a.shape[1] != n:
        raise ExecutionError("lu-decomposition: matrix must be square")
    lower = np.eye(n)
    upper = a.astype(float).copy()
    for k in range(n - 1):
        pivot = upper[k, k]
        if abs(pivot) < 1e-12:
            raise ExecutionError(
                "lu-decomposition: zero pivot (matrix must be "
                "diagonally dominant for the unpivoted factorisation)")
        factors = upper[k + 1:, k] / pivot
        lower[k + 1:, k] = factors
        upper[k + 1:, k:] -= np.outer(factors, upper[k, k:])
        upper[k + 1:, k] = 0.0
    return {"lower": lower, "upper": upper}


def _impl_inverse(inputs: dict, params: dict) -> dict:
    a = _as_matrix(inputs["matrix"], "matrix-inverse", "matrix")
    if a.shape[0] != a.shape[1]:
        raise ExecutionError("matrix-inverse: matrix must be square")
    try:
        inv = np.linalg.inv(a)
    except np.linalg.LinAlgError as exc:
        raise ExecutionError(f"matrix-inverse: singular matrix: {exc}") from exc
    return {"inverse": inv}


def _impl_multiply(inputs: dict, params: dict) -> dict:
    a = _as_matrix(inputs["a"], "matrix-multiply", "a")
    b = _as_matrix(inputs["b"], "matrix-multiply", "b")
    if a.shape[1] != b.shape[0]:
        raise ExecutionError(
            f"matrix-multiply: shape mismatch {a.shape} @ {b.shape}")
    return {"product": a @ b}


def _impl_matvec(inputs: dict, params: dict) -> dict:
    a = _as_matrix(inputs["matrix"], "matrix-vector-multiply", "matrix")
    x = _as_vector(inputs["vector"], "matrix-vector-multiply", "vector")
    if a.shape[1] != x.shape[0]:
        raise ExecutionError(
            f"matrix-vector-multiply: shape mismatch {a.shape} @ {x.shape}")
    return {"product": a @ x}


def _impl_add(inputs: dict, params: dict) -> dict:
    a = _as_matrix(inputs["a"], "matrix-add", "a")
    b = _as_matrix(inputs["b"], "matrix-add", "b")
    if a.shape != b.shape:
        raise ExecutionError(f"matrix-add: shape mismatch {a.shape} + {b.shape}")
    return {"sum": a + b}


def _impl_transpose(inputs: dict, params: dict) -> dict:
    a = _as_matrix(inputs["matrix"], "matrix-transpose", "matrix")
    return {"transposed": a.T.copy()}


def _impl_triangular_solve(inputs: dict, params: dict) -> dict:
    """Solve L y = b (lower=True) or U x = y (lower=False) by substitution."""
    a = _as_matrix(inputs["matrix"], "triangular-solve", "matrix")
    b = _as_vector(inputs["rhs"], "triangular-solve", "rhs")
    lower = bool(params.get("lower", True))
    n = a.shape[0]
    if a.shape[1] != n or b.shape[0] != n:
        raise ExecutionError("triangular-solve: dimension mismatch")
    x = np.zeros(n)
    order = range(n) if lower else range(n - 1, -1, -1)
    for i in order:
        if abs(a[i, i]) < 1e-12:
            raise ExecutionError("triangular-solve: zero diagonal entry")
        if lower:
            s = a[i, :i] @ x[:i]
        else:
            s = a[i, i + 1:] @ x[i + 1:]
        x[i] = (b[i] - s) / a[i, i]
    return {"solution": x}


def _impl_residual(inputs: dict, params: dict) -> dict:
    a = _as_matrix(inputs["matrix"], "residual-norm", "matrix")
    x = _as_vector(inputs["solution"], "residual-norm", "solution")
    b = _as_vector(inputs["rhs"], "residual-norm", "rhs")
    return {"norm": float(np.linalg.norm(a @ x - b))}


# -- library construction -----------------------------------------------------

def build_matrix_library() -> TaskLibrary:
    """The matrix-operations menu of the Application Editor."""
    lib = TaskLibrary(LIBRARY_NAME,
                      "Dense linear algebra kernels (paper Figure 3)")
    mat_out = dict(output_bytes_per_unit=8.0, output_complexity="quadratic",
                   memory_mb_base=1.0, memory_mb_per_unit=24e-6,
                   memory_complexity="quadratic")
    vec_out = dict(output_bytes_per_unit=8.0, output_complexity="linear",
                   memory_mb_base=0.5, memory_mb_per_unit=8e-6,
                   memory_complexity="quadratic")
    lib.add(TaskDefinition(
        name="matrix-generate", library=LIBRARY_NAME,
        description="Generate an NxN test matrix (random / diag-dominant / spd)",
        signature=TaskSignature(inputs=(), outputs=("matrix",)),
        base_time_s=0.05, base_size=100, complexity="quadratic",
        impl=_impl_matrix_generate, **mat_out))
    lib.add(TaskDefinition(
        name="vector-generate", library=LIBRARY_NAME,
        description="Generate a length-N random vector",
        signature=TaskSignature(inputs=(), outputs=("vector",)),
        base_time_s=0.005, base_size=100, complexity="linear",
        impl=_impl_vector_generate, **vec_out))
    lib.add(TaskDefinition(
        name="lu-decomposition", library=LIBRARY_NAME,
        description="Doolittle LU factorisation A = L U (no pivoting)",
        signature=TaskSignature(inputs=("matrix",),
                                outputs=("lower", "upper")),
        base_time_s=1.0, base_size=100, complexity="cubic",
        parallel_capable=True, parallel_efficiency=0.85,
        impl=_impl_lu, **mat_out))
    lib.add(TaskDefinition(
        name="matrix-inverse", library=LIBRARY_NAME,
        description="General matrix inverse",
        signature=TaskSignature(inputs=("matrix",), outputs=("inverse",)),
        base_time_s=1.5, base_size=100, complexity="cubic",
        parallel_capable=True, parallel_efficiency=0.8,
        impl=_impl_inverse, **mat_out))
    lib.add(TaskDefinition(
        name="matrix-multiply", library=LIBRARY_NAME,
        description="Dense matrix-matrix product",
        signature=TaskSignature(inputs=("a", "b"), outputs=("product",)),
        base_time_s=0.8, base_size=100, complexity="cubic",
        parallel_capable=True, parallel_efficiency=0.9,
        impl=_impl_multiply, **mat_out))
    lib.add(TaskDefinition(
        name="matrix-vector-multiply", library=LIBRARY_NAME,
        description="Matrix-vector product",
        signature=TaskSignature(inputs=("matrix", "vector"),
                                outputs=("product",)),
        base_time_s=0.02, base_size=100, complexity="quadratic",
        impl=_impl_matvec, **vec_out))
    lib.add(TaskDefinition(
        name="matrix-add", library=LIBRARY_NAME,
        description="Elementwise matrix sum",
        signature=TaskSignature(inputs=("a", "b"), outputs=("sum",)),
        base_time_s=0.01, base_size=100, complexity="quadratic",
        impl=_impl_add, **mat_out))
    lib.add(TaskDefinition(
        name="matrix-transpose", library=LIBRARY_NAME,
        description="Matrix transpose",
        signature=TaskSignature(inputs=("matrix",), outputs=("transposed",)),
        base_time_s=0.008, base_size=100, complexity="quadratic",
        impl=_impl_transpose, **mat_out))
    lib.add(TaskDefinition(
        name="triangular-solve", library=LIBRARY_NAME,
        description="Forward/backward substitution on a triangular system",
        signature=TaskSignature(inputs=("matrix", "rhs"),
                                outputs=("solution",)),
        base_time_s=0.05, base_size=100, complexity="quadratic",
        impl=_impl_triangular_solve, **vec_out))
    lib.add(TaskDefinition(
        name="residual-norm", library=LIBRARY_NAME,
        description="||A x - b||_2, the solver's verification step",
        signature=TaskSignature(inputs=("matrix", "solution", "rhs"),
                                outputs=("norm",)),
        base_time_s=0.02, base_size=100, complexity="quadratic",
        output_bytes_per_unit=8.0, output_complexity="constant",
        memory_mb_base=0.5, memory_mb_per_unit=8e-6,
        memory_complexity="quadratic",
        impl=_impl_residual))
    return lib
