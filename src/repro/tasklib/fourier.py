"""The Fourier-analysis task library.

The paper lists "Fourier analysis" among the functional groups of VDCE
task libraries (section 1).  Tasks operate on 1-D signals; the spectral
kernels are NumPy FFTs, the generators produce deterministic multi-tone
test signals so example applications have verifiable outputs.
"""

from __future__ import annotations

import numpy as np

from repro.tasklib.base import TaskDefinition, TaskSignature
from repro.tasklib.registry import TaskLibrary
from repro.util.errors import ExecutionError

LIBRARY_NAME = "fourier-analysis"


def _as_signal(value, task: str, port: str) -> np.ndarray:
    arr = np.asarray(value)
    if arr.ndim != 1:
        raise ExecutionError(
            f"{task}: port {port!r} expected a 1-D signal, got shape "
            f"{arr.shape}")
    return arr


def _impl_signal_generate(inputs: dict, params: dict) -> dict:
    n = int(params.get("n", 1024))
    tones = params.get("tones", [(50.0, 1.0), (120.0, 0.5)])
    noise = float(params.get("noise", 0.1))
    seed = int(params.get("seed", 0))
    sample_rate = float(params.get("sample_rate", 1000.0))
    t = np.arange(n) / sample_rate
    signal = np.zeros(n)
    for freq, amp in tones:
        signal += amp * np.sin(2 * np.pi * freq * t)
    if noise > 0:
        signal += noise * np.random.default_rng(seed).standard_normal(n)
    return {"signal": signal}


def _impl_fft(inputs: dict, params: dict) -> dict:
    x = _as_signal(inputs["signal"], "fft-1d", "signal")
    return {"spectrum": np.fft.fft(x)}


def _impl_ifft(inputs: dict, params: dict) -> dict:
    spectrum = _as_signal(inputs["spectrum"], "ifft-1d", "spectrum")
    return {"signal": np.fft.ifft(spectrum).real}


def _impl_lowpass(inputs: dict, params: dict) -> dict:
    """Brick-wall low-pass in the frequency domain."""
    spectrum = _as_signal(inputs["spectrum"], "lowpass-filter", "spectrum")
    cutoff = float(params.get("cutoff_hz", 100.0))
    sample_rate = float(params.get("sample_rate", 1000.0))
    if cutoff <= 0:
        raise ExecutionError("lowpass-filter: cutoff must be positive")
    n = spectrum.shape[0]
    freqs = np.fft.fftfreq(n, d=1.0 / sample_rate)
    out = np.where(np.abs(freqs) <= cutoff, spectrum, 0.0)
    return {"spectrum": out}


def _impl_power_spectrum(inputs: dict, params: dict) -> dict:
    spectrum = _as_signal(inputs["spectrum"], "power-spectrum", "spectrum")
    n = spectrum.shape[0]
    return {"power": (np.abs(spectrum) ** 2) / n}


def _impl_peak_detect(inputs: dict, params: dict) -> dict:
    power = _as_signal(inputs["power"], "peak-detect", "power")
    count = int(params.get("count", 3))
    sample_rate = float(params.get("sample_rate", 1000.0))
    n = power.shape[0]
    half = power[: n // 2].astype(float)
    order = np.argsort(half)[::-1][:count]
    freqs = order * sample_rate / n
    return {"peaks": np.sort(freqs)}


def _impl_convolve(inputs: dict, params: dict) -> dict:
    a = _as_signal(inputs["a"], "convolve", "a")
    b = _as_signal(inputs["b"], "convolve", "b")
    return {"result": np.convolve(a, b, mode="full")}


def build_fourier_library() -> TaskLibrary:
    lib = TaskLibrary(LIBRARY_NAME, "1-D spectral analysis kernels")
    sig = dict(output_bytes_per_unit=8.0, output_complexity="linear",
               memory_mb_base=0.5, memory_mb_per_unit=32e-6,
               memory_complexity="linear")
    spec = dict(output_bytes_per_unit=16.0, output_complexity="linear",
                memory_mb_base=0.5, memory_mb_per_unit=32e-6,
                memory_complexity="linear")
    lib.add(TaskDefinition(
        name="signal-generate", library=LIBRARY_NAME,
        description="Multi-tone test signal with additive noise",
        signature=TaskSignature(inputs=(), outputs=("signal",)),
        base_time_s=0.01, base_size=1024, complexity="linear",
        impl=_impl_signal_generate, **sig))
    lib.add(TaskDefinition(
        name="fft-1d", library=LIBRARY_NAME,
        description="Forward FFT",
        signature=TaskSignature(inputs=("signal",), outputs=("spectrum",)),
        base_time_s=0.08, base_size=1024, complexity="nlogn",
        parallel_capable=True, parallel_efficiency=0.75,
        impl=_impl_fft, **spec))
    lib.add(TaskDefinition(
        name="ifft-1d", library=LIBRARY_NAME,
        description="Inverse FFT (real part)",
        signature=TaskSignature(inputs=("spectrum",), outputs=("signal",)),
        base_time_s=0.08, base_size=1024, complexity="nlogn",
        parallel_capable=True, parallel_efficiency=0.75,
        impl=_impl_ifft, **sig))
    lib.add(TaskDefinition(
        name="lowpass-filter", library=LIBRARY_NAME,
        description="Brick-wall low-pass in the frequency domain",
        signature=TaskSignature(inputs=("spectrum",), outputs=("spectrum",)),
        base_time_s=0.02, base_size=1024, complexity="linear",
        impl=_impl_lowpass, **spec))
    lib.add(TaskDefinition(
        name="power-spectrum", library=LIBRARY_NAME,
        description="Periodogram |X(f)|^2 / N",
        signature=TaskSignature(inputs=("spectrum",), outputs=("power",)),
        base_time_s=0.015, base_size=1024, complexity="linear",
        impl=_impl_power_spectrum, **sig))
    lib.add(TaskDefinition(
        name="peak-detect", library=LIBRARY_NAME,
        description="Strongest spectral peaks (Hz)",
        signature=TaskSignature(inputs=("power",), outputs=("peaks",)),
        base_time_s=0.01, base_size=1024, complexity="nlogn",
        output_bytes_per_unit=64.0, output_complexity="constant",
        memory_mb_base=0.5, memory_mb_per_unit=8e-6,
        impl=_impl_peak_detect))
    lib.add(TaskDefinition(
        name="convolve", library=LIBRARY_NAME,
        description="Full linear convolution of two signals",
        signature=TaskSignature(inputs=("a", "b"), outputs=("result",)),
        base_time_s=0.2, base_size=1024, complexity="quadratic",
        parallel_capable=True, parallel_efficiency=0.85,
        impl=_impl_convolve, **sig))
    return lib
