"""Task-library registry: the Application Editor's menus.

Paper section 2.1: "The Application Editor provides menu-driven task
libraries that are grouped in terms of their functionality, such as the
matrix algebra library, C3I (command and control applications) library,
etc."  A :class:`LibraryRegistry` holds the libraries; the editor asks it
for menus and resolves node names through it.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.tasklib.base import TaskDefinition
from repro.util.errors import ConfigurationError, UnknownTaskError


class TaskLibrary:
    """A functional group of tasks (one editor menu)."""

    def __init__(self, name: str, description: str = "") -> None:
        if not name:
            raise ConfigurationError("library name may not be empty")
        self.name = name
        self.description = description
        self._tasks: dict[str, TaskDefinition] = {}

    def add(self, definition: TaskDefinition) -> TaskDefinition:
        """Register a task in this library (names unique per library)."""
        if definition.name in self._tasks:
            raise ConfigurationError(
                f"library {self.name!r} already has task "
                f"{definition.name!r}")
        if definition.library != self.name:
            raise ConfigurationError(
                f"task {definition.name!r} declares library "
                f"{definition.library!r}, not {self.name!r}")
        self._tasks[definition.name] = definition
        return definition

    def get(self, task_name: str) -> TaskDefinition:
        """Fetch a task from this library by name."""
        try:
            return self._tasks[task_name]
        except KeyError:
            raise UnknownTaskError(
                f"no task {task_name!r} in library {self.name!r}") from None

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def task_names(self) -> list[str]:
        """Sorted names of this library's tasks (the menu entries)."""
        return sorted(self._tasks)

    def tasks(self) -> list[TaskDefinition]:
        """This library's definitions, sorted by name."""
        return [self._tasks[n] for n in self.task_names()]


class LibraryRegistry:
    """All libraries known to a VDCE installation.

    Task names are globally unique across libraries so that an AFG node
    can reference its task by bare name (as the paper's figures do:
    "LU Decomposition", "Matrix Inversion", ...).
    """

    def __init__(self) -> None:
        self._libraries: dict[str, TaskLibrary] = {}
        self._task_index: dict[str, str] = {}  # task name -> library name

    def add_library(self, library: TaskLibrary) -> TaskLibrary:
        """Register a library; task names must be globally unique."""
        if library.name in self._libraries:
            raise ConfigurationError(
                f"library {library.name!r} already registered")
        for name in library.task_names():
            if name in self._task_index:
                raise ConfigurationError(
                    f"task {name!r} already provided by library "
                    f"{self._task_index[name]!r}")
        self._libraries[library.name] = library
        for name in library.task_names():
            self._task_index[name] = library.name
        return library

    def library(self, name: str) -> TaskLibrary:
        """Fetch a registered library by name."""
        try:
            return self._libraries[name]
        except KeyError:
            raise ConfigurationError(f"no library {name!r}") from None

    def library_names(self) -> list[str]:
        """Sorted names of the registered libraries."""
        return sorted(self._libraries)

    # -- task resolution ---------------------------------------------------
    def resolve(self, task_name: str) -> TaskDefinition:
        """Find a task by bare name across every library."""
        lib_name = self._task_index.get(task_name)
        if lib_name is None:
            raise UnknownTaskError(
                f"task {task_name!r} not found in any library "
                f"(libraries: {self.library_names()})")
        return self._libraries[lib_name].get(task_name)

    def __contains__(self, task_name: str) -> bool:
        return task_name in self._task_index

    def all_tasks(self) -> list[TaskDefinition]:
        """Every registered task, sorted by name."""
        return [self.resolve(n) for n in sorted(self._task_index)]

    def menu(self) -> dict[str, list[str]]:
        """Library name -> task names, exactly what the editor displays."""
        return {name: lib.task_names()
                for name, lib in sorted(self._libraries.items())}


def build_registry(libraries: Iterable[TaskLibrary]) -> LibraryRegistry:
    registry = LibraryRegistry()
    for lib in libraries:
        registry.add_library(lib)
    return registry
