"""Task definitions: the well-defined library functions of VDCE.

Paper section 1: "VDCE delivers well-defined library functions that
relieve end-users of tedious task implementations and also support
reusability" — the nodes of every application flow graph are selected
from these libraries.

A :class:`TaskDefinition` carries four things:

1. a *signature* — named logical input/output ports (the colored port
   markers of the Application Editor's icons);
2. a *performance model* — base-processor execution time measured at a
   reference input size plus an asymptotic complexity class, an output
   (communication) size model, and a memory-requirement model.  These are
   the "computation size, communication size, required memory size"
   parameters of the task-performance database;
3. an optional *implementation* — a real Python/NumPy callable so that
   applications can genuinely execute (e.g. the Linear Equation Solver
   producing a verifiable solution vector);
4. *parallel capability* — whether the task supports the editor's
   parallel computation mode, with an efficiency parameter governing
   multi-processor speedup (used by the parallel-task scheduling
   extension of section 2.2.1).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ConfigurationError

# -- complexity classes -----------------------------------------------------

COMPLEXITY_FUNCTIONS: dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "linear": lambda n: n,
    "nlogn": lambda n: n * math.log2(max(n, 2.0)),
    "quadratic": lambda n: n**2,
    "cubic": lambda n: n**3,
}


def compute_scale(complexity: str, size: float, base_size: float) -> float:
    """Execution-time scale factor of input *size* vs the reference size.

    ``scale == 1`` at ``size == base_size``; grows per the complexity class.
    """
    try:
        f = COMPLEXITY_FUNCTIONS[complexity]
    except KeyError:
        raise ConfigurationError(
            f"unknown complexity class {complexity!r}; expected one of "
            f"{sorted(COMPLEXITY_FUNCTIONS)}") from None
    if size <= 0 or base_size <= 0:
        raise ValueError("sizes must be positive")
    return f(size) / f(base_size)


@dataclass(frozen=True)
class TaskSignature:
    """Named logical ports. Port names are unique within a direction."""

    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ("out",)

    def __post_init__(self) -> None:
        if len(set(self.inputs)) != len(self.inputs):
            raise ConfigurationError(f"duplicate input ports: {self.inputs}")
        if len(set(self.outputs)) != len(self.outputs):
            raise ConfigurationError(f"duplicate output ports: {self.outputs}")

    @property
    def is_source(self) -> bool:
        return not self.inputs

    @property
    def is_sink(self) -> bool:
        return not self.outputs


@dataclass(frozen=True)
class TaskDefinition:
    """One library function available in the Application Editor menus."""

    name: str
    library: str
    description: str
    signature: TaskSignature = field(default_factory=TaskSignature)
    # performance model
    base_time_s: float = 1.0          # dedicated base-processor time ...
    base_size: float = 100.0          # ... at this reference input size
    complexity: str = "linear"
    output_bytes_per_unit: float = 8.0   # output = this * f_out(input_size)
    output_complexity: str = "linear"    # f_out complexity class
    memory_mb_base: float = 1.0          # memory = base + per_unit * f_mem(size)
    memory_mb_per_unit: float = 0.01
    memory_complexity: str = "linear"    # f_mem complexity class
    # real implementation (None => simulation-only task)
    impl: Callable[..., dict[str, Any]] | None = None
    # parallel mode
    parallel_capable: bool = False
    parallel_efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.base_time_s <= 0:
            raise ConfigurationError(f"{self.name}: base_time_s must be > 0")
        if self.base_size <= 0:
            raise ConfigurationError(f"{self.name}: base_size must be > 0")
        for attr in ("complexity", "output_complexity", "memory_complexity"):
            if getattr(self, attr) not in COMPLEXITY_FUNCTIONS:
                raise ConfigurationError(
                    f"{self.name}: unknown {attr} {getattr(self, attr)!r}")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ConfigurationError(
                f"{self.name}: parallel_efficiency must be in (0, 1]")

    # -- performance model ------------------------------------------------
    def base_execution_time(self, input_size: float,
                            processors: int = 1) -> float:
        """Dedicated base-processor execution time at *input_size*.

        With ``processors > 1`` (parallel mode), Amdahl-style scaling with
        the task's parallel efficiency: ``T_p = T_1 * ((1-e) + e/p)``.
        """
        if processors < 1:
            raise ValueError("processors must be >= 1")
        if processors > 1 and not self.parallel_capable:
            raise ConfigurationError(
                f"task {self.name!r} does not support parallel mode")
        t1 = self.base_time_s * compute_scale(self.complexity, input_size,
                                              self.base_size)
        if processors == 1:
            return t1
        e = self.parallel_efficiency
        return t1 * ((1.0 - e) + e / processors)

    def output_size_bytes(self, input_size: float) -> float:
        """Bytes this task ships to each successor (communication size)."""
        if input_size <= 0:
            return 0.0
        f = COMPLEXITY_FUNCTIONS[self.output_complexity]
        return self.output_bytes_per_unit * f(input_size)

    def memory_required_mb(self, input_size: float) -> float:
        """Resident memory required to run at *input_size* (Mem_Req)."""
        extra = 0.0
        if input_size > 0:
            f = COMPLEXITY_FUNCTIONS[self.memory_complexity]
            extra = self.memory_mb_per_unit * f(input_size)
        return self.memory_mb_base + extra

    # -- real execution -----------------------------------------------------
    @property
    def executable(self) -> bool:
        return self.impl is not None

    def execute(self, inputs: dict[str, Any],
                params: dict[str, Any] | None = None) -> dict[str, Any]:
        """Run the real implementation.

        *inputs* maps input-port names to values; the return maps
        output-port names to values.  Missing or extra ports are errors —
        the editor's link validation should have prevented them.
        """
        if self.impl is None:
            raise ConfigurationError(
                f"task {self.name!r} has no real implementation")
        expected = set(self.signature.inputs)
        got = set(inputs)
        if expected != got:
            raise ConfigurationError(
                f"task {self.name!r} expects inputs {sorted(expected)}, "
                f"got {sorted(got)}")
        result = self.impl(inputs, params or {})
        if set(result) != set(self.signature.outputs):
            raise ConfigurationError(
                f"task {self.name!r} must produce outputs "
                f"{sorted(self.signature.outputs)}, produced {sorted(result)}")
        return result


def validate_unique_names(definitions: Sequence[TaskDefinition]) -> None:
    """Raise when two definitions share a name."""
    seen: set[str] = set()
    for d in definitions:
        if d.name in seen:
            raise ConfigurationError(f"duplicate task name {d.name!r}")
        seen.add(d.name)
