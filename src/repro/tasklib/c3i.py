"""The C3I (command, control, communication, and information) task library.

The paper, funded by Rome Laboratory, repeatedly cites a "C3I (command
and control applications) library" as a first-class task group.  The real
Rome Lab workloads are not public, so this library provides synthetic but
behaviourally realistic surveillance-pipeline tasks: radar scan
generation, track filtering (alpha-beta), multi-sensor fusion, threat
assessment, and an engagement-plan formatter.  They form the kind of
sensor-to-decision DAG the paper's introduction motivates, and exercise
the same registry/constraint/AFG machinery as the numeric libraries.

Data convention: a *track set* is an ``(m, 5)`` float array with columns
``(track_id, x, y, vx, vy)``.
"""

from __future__ import annotations

import numpy as np

from repro.tasklib.base import TaskDefinition, TaskSignature
from repro.tasklib.registry import TaskLibrary
from repro.util.errors import ExecutionError

LIBRARY_NAME = "c3i"


def _as_tracks(value, task: str, port: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 5:
        raise ExecutionError(
            f"{task}: port {port!r} expected an (m, 5) track array, got "
            f"shape {arr.shape}")
    return arr


def _impl_radar_scan(inputs: dict, params: dict) -> dict:
    """Noisy radar returns for a set of constant-velocity targets."""
    n_targets = int(params.get("targets", 20))
    steps = int(params.get("steps", 10))
    seed = int(params.get("seed", 0))
    noise = float(params.get("noise", 25.0))
    rng = np.random.default_rng(seed)
    pos = rng.uniform(-5e4, 5e4, size=(n_targets, 2))
    vel = rng.uniform(-300, 300, size=(n_targets, 2))
    frames = []
    for t in range(steps):
        observed = pos + vel * t + rng.normal(0, noise, size=pos.shape)
        ids = np.arange(n_targets, dtype=float).reshape(-1, 1)
        frames.append(np.hstack([np.full((n_targets, 1), float(t)), ids,
                                 observed]))
    return {"scans": np.vstack(frames)}  # columns: t, id, x, y


def _impl_track_filter(inputs: dict, params: dict) -> dict:
    """Alpha-beta filter per target over the scan sequence."""
    scans = np.asarray(inputs["scans"], dtype=float)
    if scans.ndim != 2 or scans.shape[1] != 4:
        raise ExecutionError(
            f"track-filter: expected (k, 4) scan array, got {scans.shape}")
    alpha = float(params.get("alpha", 0.85))
    beta = float(params.get("beta", 0.005))
    dt = float(params.get("dt", 1.0))
    tracks = []
    for tid in np.unique(scans[:, 1]):
        obs = scans[scans[:, 1] == tid]
        obs = obs[np.argsort(obs[:, 0])]
        x = obs[0, 2:4].copy()
        v = np.zeros(2)
        for row in obs[1:]:
            pred = x + v * dt
            resid = row[2:4] - pred
            x = pred + alpha * resid
            v = v + (beta / dt) * resid
        tracks.append([tid, x[0], x[1], v[0], v[1]])
    return {"tracks": np.asarray(tracks, dtype=float)}


def _impl_fusion(inputs: dict, params: dict) -> dict:
    """Fuse two sensors' track sets: average tracks with matching ids."""
    a = _as_tracks(inputs["tracks_a"], "data-fusion", "tracks_a")
    b = _as_tracks(inputs["tracks_b"], "data-fusion", "tracks_b")
    by_id: dict[float, list[np.ndarray]] = {}
    for row in np.vstack([a, b]):
        by_id.setdefault(row[0], []).append(row)
    fused = [np.mean(rows, axis=0) for _tid, rows in sorted(by_id.items())]
    return {"fused": np.asarray(fused, dtype=float)}


def _impl_threat_assessment(inputs: dict, params: dict) -> dict:
    """Rank tracks by closing speed toward a defended point."""
    tracks = _as_tracks(inputs["tracks"], "threat-assessment", "tracks")
    defended = np.asarray(params.get("defended_point", (0.0, 0.0)),
                          dtype=float)
    pos = tracks[:, 1:3]
    vel = tracks[:, 3:5]
    rel = defended - pos
    dist = np.linalg.norm(rel, axis=1)
    dist = np.where(dist < 1e-9, 1e-9, dist)
    closing = np.einsum("ij,ij->i", vel, rel) / dist  # +ve = approaching
    score = closing / np.sqrt(dist)
    order = np.argsort(score)[::-1]
    ranked = np.hstack([tracks[order], score[order].reshape(-1, 1)])
    return {"threats": ranked}  # columns: id, x, y, vx, vy, score


def _impl_engagement_plan(inputs: dict, params: dict) -> dict:
    """Assign the top-k threats to interceptor batteries round-robin."""
    threats = np.asarray(inputs["threats"], dtype=float)
    if threats.ndim != 2 or threats.shape[1] != 6:
        raise ExecutionError(
            f"engagement-plan: expected (m, 6) threat array, got "
            f"{threats.shape}")
    batteries = int(params.get("batteries", 4))
    top_k = int(params.get("top_k", min(8, threats.shape[0])))
    if batteries < 1:
        raise ExecutionError("engagement-plan: batteries must be >= 1")
    plan = [[threats[i, 0], float(i % batteries), threats[i, 5]]
            for i in range(min(top_k, threats.shape[0]))]
    return {"plan": np.asarray(plan, dtype=float)}


def build_c3i_library() -> TaskLibrary:
    lib = TaskLibrary(LIBRARY_NAME,
                      "Synthetic surveillance pipeline (Rome Lab stand-in)")
    common = dict(memory_mb_base=0.5, memory_mb_per_unit=1e-3,
                  memory_complexity="linear")
    lib.add(TaskDefinition(
        name="radar-scan", library=LIBRARY_NAME,
        description="Noisy radar returns for constant-velocity targets",
        signature=TaskSignature(inputs=(), outputs=("scans",)),
        base_time_s=0.05, base_size=20, complexity="linear",
        output_bytes_per_unit=320.0, output_complexity="linear",
        impl=_impl_radar_scan, **common))
    lib.add(TaskDefinition(
        name="track-filter", library=LIBRARY_NAME,
        description="Alpha-beta tracking filter per target",
        signature=TaskSignature(inputs=("scans",), outputs=("tracks",)),
        base_time_s=0.1, base_size=20, complexity="linear",
        output_bytes_per_unit=40.0, output_complexity="linear",
        parallel_capable=True, parallel_efficiency=0.9,
        impl=_impl_track_filter, **common))
    lib.add(TaskDefinition(
        name="data-fusion", library=LIBRARY_NAME,
        description="Merge two sensors' track sets by track id",
        signature=TaskSignature(inputs=("tracks_a", "tracks_b"),
                                outputs=("fused",)),
        base_time_s=0.08, base_size=20, complexity="nlogn",
        output_bytes_per_unit=40.0, output_complexity="linear",
        impl=_impl_fusion, **common))
    lib.add(TaskDefinition(
        name="threat-assessment", library=LIBRARY_NAME,
        description="Rank tracks by closing speed on the defended point",
        signature=TaskSignature(inputs=("tracks",), outputs=("threats",)),
        base_time_s=0.06, base_size=20, complexity="nlogn",
        output_bytes_per_unit=48.0, output_complexity="linear",
        impl=_impl_threat_assessment, **common))
    lib.add(TaskDefinition(
        name="engagement-plan", library=LIBRARY_NAME,
        description="Round-robin battery assignment for top threats",
        signature=TaskSignature(inputs=("threats",), outputs=("plan",)),
        base_time_s=0.02, base_size=20, complexity="linear",
        output_bytes_per_unit=24.0, output_complexity="constant",
        impl=_impl_engagement_plan, **common))
    return lib
