"""The image-processing task library.

Surveillance imagery was a staple Rome Laboratory workload and a natural
companion to the C3I library: the paper's "large set of task libraries
grouped in terms of their functionality" would certainly have included
one.  Tasks operate on 2-D float arrays (grayscale images); kernels are
implemented with NumPy stride tricks / FFT convolution, so they are
vectorised per the HPC guides.

Data convention: an *image* is an ``(h, w)`` float array in ``[0, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.tasklib.base import TaskDefinition, TaskSignature
from repro.tasklib.registry import TaskLibrary
from repro.util.errors import ExecutionError

LIBRARY_NAME = "image-processing"


def _as_image(value, task: str, port: str) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2:
        raise ExecutionError(
            f"{task}: port {port!r} expected a 2-D image, got shape "
            f"{arr.shape}")
    return arr


def _impl_image_generate(inputs: dict, params: dict) -> dict:
    """Synthetic aerial scene: smooth background + bright blobs + noise."""
    n = int(params.get("n", 128))
    blobs = int(params.get("blobs", 6))
    noise = float(params.get("noise", 0.05))
    seed = int(params.get("seed", 0))
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:n, 0:n].astype(float) / n
    image = 0.25 + 0.1 * np.sin(2 * np.pi * xx) * np.cos(2 * np.pi * yy)
    for _ in range(blobs):
        cy, cx = rng.uniform(0.1, 0.9, size=2)
        sigma = rng.uniform(0.01, 0.04)
        amp = rng.uniform(0.4, 0.7)
        image += amp * np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2)
                                / (2 * sigma**2)))
    image += noise * rng.standard_normal((n, n))
    return {"image": np.clip(image, 0.0, 1.0)}


def _fft_convolve(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Same-size FFT convolution with zero padding."""
    h, w = image.shape
    kh, kw = kernel.shape
    padded = np.zeros((h + kh - 1, w + kw - 1))
    padded[:h, :w] = image
    kpad = np.zeros_like(padded)
    kpad[:kh, :kw] = kernel
    out = np.fft.irfft2(np.fft.rfft2(padded) * np.fft.rfft2(kpad),
                        s=padded.shape)
    oy, ox = kh // 2, kw // 2
    return out[oy:oy + h, ox:ox + w]


def _impl_gaussian_blur(inputs: dict, params: dict) -> dict:
    image = _as_image(inputs["image"], "gaussian-blur", "image")
    sigma = float(params.get("sigma", 1.5))
    if sigma <= 0:
        raise ExecutionError("gaussian-blur: sigma must be positive")
    radius = max(1, int(3 * sigma))
    x = np.arange(-radius, radius + 1, dtype=float)
    g = np.exp(-(x**2) / (2 * sigma**2))
    kernel = np.outer(g, g)
    kernel /= kernel.sum()
    return {"image": _fft_convolve(image, kernel)}


def _impl_edge_detect(inputs: dict, params: dict) -> dict:
    """Sobel gradient magnitude."""
    image = _as_image(inputs["image"], "edge-detect", "image")
    sx = np.array([[-1.0, 0, 1], [-2, 0, 2], [-1, 0, 1]])
    gx = _fft_convolve(image, sx)
    gy = _fft_convolve(image, sx.T)
    return {"edges": np.hypot(gx, gy)}


def _impl_threshold_segment(inputs: dict, params: dict) -> dict:
    image = _as_image(inputs["image"], "threshold-segment", "image")
    quantile = float(params.get("quantile", 0.95))
    if not 0.0 < quantile < 1.0:
        raise ExecutionError("threshold-segment: quantile must be in (0,1)")
    level = float(np.quantile(image, quantile))
    return {"mask": (image >= level).astype(float)}


def _impl_blob_count(inputs: dict, params: dict) -> dict:
    """Connected components (4-connectivity) of a binary mask."""
    mask = _as_image(inputs["mask"], "blob-count", "mask") > 0.5
    labels = np.zeros(mask.shape, dtype=int)
    current = 0
    for y in range(mask.shape[0]):
        for x in range(mask.shape[1]):
            if mask[y, x] and labels[y, x] == 0:
                current += 1
                stack = [(y, x)]
                labels[y, x] = current
                while stack:
                    cy, cx = stack.pop()
                    for ny, nx in ((cy - 1, cx), (cy + 1, cx),
                                   (cy, cx - 1), (cy, cx + 1)):
                        if 0 <= ny < mask.shape[0] and \
                                0 <= nx < mask.shape[1] and \
                                mask[ny, nx] and labels[ny, nx] == 0:
                            labels[ny, nx] = current
                            stack.append((ny, nx))
    centroids = []
    for lbl in range(1, current + 1):
        ys, xs = np.nonzero(labels == lbl)
        centroids.append([float(lbl), ys.mean(), xs.mean(), len(ys)])
    return {"blobs": np.asarray(centroids, dtype=float).reshape(-1, 4)}


def _impl_georegister(inputs: dict, params: dict) -> dict:
    """Map pixel centroids to ground coordinates via an affine model."""
    blobs = np.asarray(inputs["blobs"], dtype=float)
    if blobs.ndim != 2 or (blobs.size and blobs.shape[1] != 4):
        raise ExecutionError(
            f"georegister: expected (m, 4) blob array, got {blobs.shape}")
    origin = np.asarray(params.get("origin", (43.04, -76.14)), dtype=float)
    scale = float(params.get("meters_per_pixel", 30.0))
    out = []
    for lbl, py, px, size in blobs:
        north = origin[0] + py * scale * 1e-5
        east = origin[1] + px * scale * 1e-5
        out.append([lbl, north, east, size])
    return {"targets": np.asarray(out, dtype=float).reshape(-1, 4)}


def build_imaging_library() -> TaskLibrary:
    lib = TaskLibrary(LIBRARY_NAME,
                      "Aerial-image exploitation (Rome Lab companion)")
    img = dict(output_bytes_per_unit=8.0, output_complexity="quadratic",
               memory_mb_base=1.0, memory_mb_per_unit=16e-6,
               memory_complexity="quadratic")
    lib.add(TaskDefinition(
        name="image-generate", library=LIBRARY_NAME,
        description="Synthetic aerial scene with bright blobs",
        signature=TaskSignature(inputs=(), outputs=("image",)),
        base_time_s=0.05, base_size=128, complexity="quadratic",
        impl=_impl_image_generate, **img))
    lib.add(TaskDefinition(
        name="gaussian-blur", library=LIBRARY_NAME,
        description="Gaussian smoothing (FFT convolution)",
        signature=TaskSignature(inputs=("image",), outputs=("image",)),
        base_time_s=0.15, base_size=128, complexity="nlogn",
        parallel_capable=True, parallel_efficiency=0.8,
        impl=_impl_gaussian_blur, **img))
    lib.add(TaskDefinition(
        name="edge-detect", library=LIBRARY_NAME,
        description="Sobel gradient magnitude",
        signature=TaskSignature(inputs=("image",), outputs=("edges",)),
        base_time_s=0.2, base_size=128, complexity="nlogn",
        parallel_capable=True, parallel_efficiency=0.85,
        impl=_impl_edge_detect, **img))
    lib.add(TaskDefinition(
        name="threshold-segment", library=LIBRARY_NAME,
        description="Quantile threshold to a binary mask",
        signature=TaskSignature(inputs=("image",), outputs=("mask",)),
        base_time_s=0.04, base_size=128, complexity="quadratic",
        impl=_impl_threshold_segment, **img))
    lib.add(TaskDefinition(
        name="blob-count", library=LIBRARY_NAME,
        description="Connected components + centroids of a mask",
        signature=TaskSignature(inputs=("mask",), outputs=("blobs",)),
        base_time_s=0.3, base_size=128, complexity="quadratic",
        output_bytes_per_unit=32.0, output_complexity="constant",
        memory_mb_base=1.0, memory_mb_per_unit=16e-6,
        memory_complexity="quadratic",
        impl=_impl_blob_count))
    lib.add(TaskDefinition(
        name="georegister", library=LIBRARY_NAME,
        description="Affine pixel-to-ground mapping of detections",
        signature=TaskSignature(inputs=("blobs",), outputs=("targets",)),
        base_time_s=0.01, base_size=128, complexity="linear",
        output_bytes_per_unit=32.0, output_complexity="constant",
        impl=_impl_georegister))
    return lib
