"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's workflow without writing code:

* ``info``      — installed task libraries and message-passing dialects;
* ``solve``     — run the Figure 3 Linear Equation Solver on the simulated
                  NYNET testbed and verify the residual;
* ``schedule``  — schedule a workload family and print the resource
                  allocation table (without executing);
* ``local``     — execute an application for real over loopback TCP;
* ``monitor``   — run the monitoring pipeline and print the workload view;
* ``obs``       — run a workload with observability on and print the
                  utilization / queue-depth / latency report (optionally
                  exporting Chrome-trace, Prometheus, or JSONL dumps);
* ``bakeoff``   — score every registered scheduler over the default
                  workloads against the branch-and-bound optimal
                  reference, emitting a table + deterministic JSON
                  (``--replay`` scores them under sustained
                  multi-tenant traffic instead);
* ``replay``    — stream a job trace or synthetic arrival process
                  through multi-tenant admission + DRF dispatch and
                  print the per-tenant report (or, given a positional
                  path, render a saved post-mortem archive).
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.runtime.data.messaging import DIALECTS
from repro.tasklib import standard_registry
from repro.viz import ApplicationPerformanceView, WorkloadView
from repro.workloads import (
    APPLICATION_FAMILIES,
    c3i_scenario_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    nynet_testbed,
)


def _build_app(name: str, registry, size: int | None):
    if name == "linear-solver":
        return linear_solver_graph(registry, n=size or 120)
    if name == "fourier-pipeline":
        return fourier_pipeline_graph(registry, n=size or 4096)
    if name == "c3i-scenario":
        return c3i_scenario_graph(registry, targets=size or 40)
    raise SystemExit(
        f"unknown application {name!r}; choose from "
        f"linear-solver, fourier-pipeline, c3i-scenario")


def cmd_info(args) -> int:
    registry = standard_registry()
    print(f"repro (VDCE reproduction) version {__version__}")
    print("\nTask libraries:")
    for library, tasks in registry.menu().items():
        print(f"  {library} ({len(tasks)} tasks)")
        for t in tasks:
            d = registry.resolve(t)
            marker = " [parallel]" if d.parallel_capable else ""
            print(f"    - {t}{marker}: {d.description}")
    print(f"\nMessage-passing dialects: {', '.join(sorted(DIALECTS))}")
    print(f"Workload families: {', '.join(sorted(APPLICATION_FAMILIES))}")
    return 0


def cmd_solve(args) -> int:
    vdce = nynet_testbed(seed=args.seed, hosts_per_site=args.hosts,
                         with_loads=not args.idle)
    vdce.start()
    if not args.idle:
        vdce.warm_up(30.0)
    graph = linear_solver_graph(vdce.registry, n=args.n,
                                parallel_lu=args.parallel)
    run = vdce.run_application(graph, "syracuse", k_remote_sites=args.k,
                               max_sim_time_s=args.max_time)
    print(f"status    : {run.status}")
    if run.status != "completed":
        return 1
    print(f"makespan  : {run.makespan:.3f} simulated seconds")
    print(f"residual  : {run.results()['verify']['norm']:.3e}")
    print()
    print(ApplicationPerformanceView(run).render())
    if args.archive:
        from repro.viz import archive_run
        archive_run(run, args.archive, tracer=vdce.tracer)
        print(f"\npost-mortem archive written to {args.archive}")
    return 0


def cmd_schedule(args) -> int:
    vdce = nynet_testbed(seed=args.seed, hosts_per_site=args.hosts,
                         with_loads=not args.idle)
    vdce.start()
    if not args.idle:
        vdce.warm_up(30.0)
    from repro.scheduling import (
        HostSelector,
        SiteScheduler,
        predicted_schedule_length,
    )
    graph = _build_app(args.app, vdce.registry, args.size)
    selectors = {s: HostSelector(r)
                 for s, r in vdce.repositories.items()}
    sched = SiteScheduler("syracuse", vdce.topology, k_remote_sites=args.k,
                          queue_aware=args.queue_aware)
    table, report = sched.schedule_with_selectors(graph, selectors)
    print(f"application     : {graph.name} ({len(graph)} tasks)")
    print(f"consulted sites : {', '.join(report.consulted_sites)}")
    print(f"predicted length: "
          f"{predicted_schedule_length(graph, table, vdce.topology):.3f} s")
    print("\nresource allocation table:")
    width = max(len(n) for n in table.entries)
    for nid in report.scheduling_order:
        e = table.get(nid)
        print(f"  {nid:<{width}} -> {','.join(e.hosts):<22} "
              f"predict {e.predicted_time_s:8.3f}s  "
              f"transfer {e.predicted_transfer_s:7.3f}s")
    return 0


def cmd_local(args) -> int:
    from repro.runtime.local import run_local
    registry = standard_registry()
    graph = _build_app(args.app, registry, args.size)
    result = run_local(graph, dialect=args.dialect,
                       timeout_s=args.max_time)
    if not result.ok:
        print(f"FAILED: {result.errors}", file=sys.stderr)
        return 1
    print(f"completed {len(result.task_order)} tasks over real TCP "
          f"({args.dialect} dialect)")
    print(f"order: {' -> '.join(result.task_order)}")
    for nid, outputs in result.outputs.items():
        for port, value in outputs.items():
            desc = getattr(value, "shape", value)
            print(f"  output {nid}.{port}: {desc}")
    return 0


def cmd_replay(args) -> int:
    if args.archive:
        from repro.viz import RunArchive
        print(RunArchive.load(args.archive).render())
        return 0
    from repro.traffic import ReplayConfig, check_report, run_replay
    generator = "trace" if args.trace else args.generator
    config = ReplayConfig(
        generator=generator, trace_path=args.trace or "",
        seed=args.seed, arrivals=args.arrivals, users=args.users,
        tenants=args.tenants, rate_per_s=args.rate,
        think_time_s=args.think_time,
        procs_per_site=args.procs_per_site,
        weight_skew=args.weight_skew, quota_procs=args.quota_procs,
        quota_memory_mb=args.quota_memory,
        rate_limit_per_s=args.rate_limit, burst=args.burst,
        max_pending=args.max_pending)
    obs = None
    if args.obs or args.prom:
        from repro.obs import Observability
        obs = Observability()
    from repro.obs import OBS_OFF
    report = run_replay(config, obs=obs if obs is not None else OBS_OFF)
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"\nreplay JSON written to {args.json}")
    if obs is not None and args.prom:
        from repro.obs.export import to_prometheus_text
        with open(args.prom, "w") as fh:
            fh.write(to_prometheus_text(obs.metrics))
        print(f"per-tenant Prometheus text written to {args.prom}")
    if obs is not None and args.obs:
        admitted = obs.metrics.counter("traffic_admitted_total").total()
        dispatched = obs.metrics.counter("traffic_dispatched_total").total()
        print(f"\nobs: {admitted:.0f} admissions, {dispatched:.0f} "
              "dispatches recorded in the metrics registry")
    if args.check:
        problems = check_report(report)
        if problems:
            print(f"\nFAIL: {len(problems)} replay invariant "
                  "violation(s):", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print("\nOK: accounting and DRF invariants hold")
    return 0


def cmd_experiment(args) -> int:
    from repro import experiments
    drivers = {
        "schedulers": lambda: experiments.scheduler_comparison(
            seeds=tuple(range(1, args.seeds + 1))),
        "ablation": lambda: experiments.prediction_ablation(
            seeds=tuple(range(1, args.seeds + 1))),
        "monitoring": lambda: experiments.monitoring_comparison(),
        "failure-detection": lambda: experiments.failure_detection_sweep(),
    }
    try:
        driver = drivers[args.name]
    except KeyError:
        raise SystemExit(f"unknown experiment {args.name!r}; choose from "
                         f"{', '.join(sorted(drivers))}")
    result = driver()
    print(result.render())
    if args.json:
        import json as _json
        print(_json.dumps({"name": result.name, "rows": result.rows,
                           "metadata": result.metadata}, indent=2))
    return 0


def cmd_plan(args) -> int:
    from repro.experiments import capacity_plan
    registry = standard_registry()
    graph = _build_app(args.app, registry, args.size)
    plan = capacity_plan(graph, deadline_s=args.deadline,
                         max_hosts=args.max_hosts)
    print(f"application : {graph.name} ({len(graph)} tasks)")
    print(f"deadline    : {args.deadline:.3f} s")
    for hosts, predicted in plan.sweep:
        marker = " <= deadline" if predicted <= args.deadline else ""
        print(f"  {hosts:3d} hosts -> predicted {predicted:8.3f} s{marker}")
    if plan.feasible:
        print(f"answer      : {plan.hosts_needed} host(s) suffice "
              f"(predicted {plan.predicted_s:.3f} s)")
        return 0
    print(f"answer      : infeasible within {args.max_hosts} hosts")
    return 1


def cmd_show(args) -> int:
    from repro.afg import render_graph, render_summary
    registry = standard_registry()
    graph = _build_app(args.app, registry, args.size)
    print(render_summary(graph))
    print()
    print(render_graph(graph, show_ports=not args.no_ports))
    return 0


def cmd_bakeoff(args) -> int:
    if args.replay:
        return _bakeoff_replay(args)
    from repro.bakeoff import (
        BakeoffConfig,
        check_json_against_baseline,
        resolve_schedulers,
        resolve_workloads,
        run_bakeoff,
    )
    config = BakeoffConfig(
        schedulers=resolve_schedulers(args.schedulers),
        workloads=resolve_workloads(args.workloads),
        seed=args.seed, hosts_per_site=args.hosts,
        optimal_task_limit=args.optimal_limit)
    obs = None
    if args.obs:
        from repro.obs import Observability
        obs = Observability()
    result = run_bakeoff(config, obs=obs)
    print(result.render())
    payload = result.to_json()
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(payload)
        print(f"\nbake-off JSON written to {args.json}")
    if args.obs and obs is not None:
        rounds = obs.metrics.counter("bakeoff_rounds_total").total()
        spans = len(obs.spans.finished("schedule-round"))
        print(f"\nschedule rounds observed: {rounds:.0f} "
              f"({spans} schedule-round spans)")
    if args.check:
        failures = check_json_against_baseline(
            payload, args.check, tolerance=args.tolerance)
        if failures:
            print(f"\nFAIL: {len(failures)} optimality-gap regression(s) "
                  f"vs {args.check}:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"\nOK: no optimality-gap regressions vs {args.check} "
              f"(tolerance +{args.tolerance:.2f})")
    return 0


def _bakeoff_replay(args) -> int:
    from repro.bakeoff import (
        DEFAULT_REPLAY_SCHEDULERS,
        ReplayBakeoffConfig,
        run_replay_bakeoff,
    )
    from repro.obs import OBS_OFF, Observability
    names = (DEFAULT_REPLAY_SCHEDULERS
             if args.schedulers in ("all", "default")
             else tuple(s.strip() for s in args.schedulers.split(",")))
    config = ReplayBakeoffConfig(
        schedulers=names, seed=args.seed,
        arrivals=args.replay_arrivals, tenants=args.replay_tenants,
        hosts_per_site=args.hosts)
    obs = Observability() if args.obs else OBS_OFF
    result = run_replay_bakeoff(config, obs=obs)
    print(result.render())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.to_json())
        print(f"\nreplay bake-off JSON written to {args.json}")
    if args.obs:
        dispatched = obs.metrics.counter("traffic_dispatched_total").total()
        print(f"\ndispatches observed across contestants: {dispatched:.0f}")
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis import AnalyzeConfig, render_report, run_analysis
    from repro.analysis.runner import SCENARIOS, report_json
    scenarios = SCENARIOS if args.scenario == "all" else (args.scenario,)
    batching = ((True,) if args.batching == "on"
                else (False,) if args.batching == "off"
                else (True, False))
    config = AnalyzeConfig(
        seeds=tuple(int(s) for s in args.seeds.split(",")),
        scenarios=scenarios, batching_modes=batching,
        chaos_tasks=args.tasks, max_sim_time_s=args.max_time)
    report = run_analysis(config)
    print(render_report(report), end="")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report_json(report))
        print(f"\nanalysis JSON written to {args.json}")
    if report["unsuppressed_races"] or not report["certificate"]["shardable"]:
        print(f"\nFAIL: {report['unsuppressed_races']} unsuppressed "
              "race(s); certificate withheld", file=sys.stderr)
        return 1
    return 0


def cmd_monitor(args) -> int:
    vdce = nynet_testbed(seed=args.seed, hosts_per_site=args.hosts,
                         with_loads=True, filter_policy=args.policy)
    vdce.start()
    vdce.run(until=args.duration)
    print(WorkloadView(vdce.tracer).render())
    reports = sum(gm.stats.reports_received
                  for gm in vdce.group_managers.values())
    forwarded = sum(gm.stats.updates_forwarded
                    for gm in vdce.group_managers.values())
    print(f"\nmonitor reports: {reports}; forwarded to repositories: "
          f"{forwarded} (policy: {args.policy}, "
          f"{reports / max(forwarded, 1):.1f}x reduction)")
    return 0


def cmd_obs(args) -> int:
    from repro.obs import Observability
    from repro.obs.export import (
        chrome_trace_json,
        spans_to_jsonl,
        to_prometheus_text,
    )
    from repro.obs.report import render_report, sample_queue_depths

    obs = Observability()
    vdce = nynet_testbed(seed=args.seed, hosts_per_site=args.hosts,
                         with_loads=not args.idle, obs=obs)
    vdce.start()
    if not args.idle:
        vdce.warm_up(30.0)
    graph = _build_app(args.app, vdce.registry, args.size)
    processes = [vdce.submit(graph, "syracuse", queue_aware=args.queue_aware)
                 for _ in range(args.apps)]
    deadline = vdce.now + args.max_time
    while (any(not p.triggered for p, _ in processes)
           and vdce.now < deadline):
        vdce.run(until=min(vdce.now + args.sample_every, deadline))
        sample_queue_depths(obs, vdce)
    for process, run in processes:
        if not process.triggered:
            run.status = "timeout"
        elif not process.ok:
            run.status = "rejected"
            raise process.exception
    statuses = [run.status for _, run in processes]
    print(f"application : {graph.name} ({len(graph)} tasks) x {args.apps}")
    print(f"statuses    : {', '.join(statuses)}")
    print()
    print(render_report(obs, clock_end=vdce.now), end="")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            fh.write(chrome_trace_json(obs.spans.spans, clock_end=vdce.now))
        print(f"\nChrome trace written to {args.chrome} "
              "(load in Perfetto / chrome://tracing)")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(to_prometheus_text(obs.metrics))
        print(f"Prometheus text written to {args.prom}")
    if args.jsonl:
        with open(args.jsonl, "w") as fh:
            fh.write(spans_to_jsonl(obs.spans.spans))
        print(f"Span JSONL written to {args.jsonl}")
    return 0 if all(s == "completed" for s in statuses) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VDCE — Virtual Distributed Computing Environment "
                    "(Topcuoglu et al., 1997) reproduction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list task libraries and dialects")

    solve = sub.add_parser("solve", help="run the Figure 3 solver")
    solve.add_argument("--n", type=int, default=120,
                       help="matrix dimension")
    solve.add_argument("--parallel", action="store_true",
                       help="parallel LU on two nodes (the figure's panel)")
    solve.add_argument("--k", type=int, default=1,
                       help="remote sites to consult")
    solve.add_argument("--archive", default=None,
                       help="write a post-mortem JSON archive here")

    replay = sub.add_parser(
        "replay",
        help="replay a job trace or synthetic arrival process through "
             "multi-tenant admission + DRF dispatch (or render a saved "
             "post-mortem archive)")
    replay.add_argument("archive", nargs="?", default=None,
                        help="path to a saved run archive "
                             "(archive-render mode)")
    replay.add_argument("--generator", default="open-loop",
                        choices=("open-loop", "closed-loop",
                                 "synthetic-alibaba"),
                        help="arrival process when no --trace is given")
    replay.add_argument("--trace", default=None,
                        help="replay this trace file "
                             "(job nproc submit duration user [tenant])")
    replay.add_argument("--arrivals", type=int, default=100_000,
                        help="arrivals to stream (lazily, never "
                             "materialized)")
    replay.add_argument("--users", type=int, default=1000)
    replay.add_argument("--tenants", type=int, default=10)
    replay.add_argument("--rate", type=float, default=40.0,
                        help="open-loop arrivals per simulated second")
    replay.add_argument("--think-time", type=float, default=20.0,
                        help="closed-loop user think time (simulated s)")
    replay.add_argument("--seed", type=int, default=11)
    replay.add_argument("--procs-per-site", type=int, default=64)
    replay.add_argument("--weight-skew", type=float, default=0.0,
                        help="spread tenant DRF weights over [1, 1+skew]")
    replay.add_argument("--quota-procs", type=int, default=0,
                        help="per-tenant processor quota (0 = uncapped)")
    replay.add_argument("--quota-memory", type=float, default=0.0,
                        help="per-tenant memory quota in MB (0 = uncapped)")
    replay.add_argument("--rate-limit", type=float, default=0.0,
                        help="per-tenant admission tokens per second "
                             "(0 = unthrottled)")
    replay.add_argument("--burst", type=int, default=8,
                        help="token-bucket burst size")
    replay.add_argument("--max-pending", type=int, default=0,
                        help="per-tenant pending-queue bound (0 = none)")
    replay.add_argument("--json", default=None,
                        help="write the deterministic replay JSON here")
    replay.add_argument("--check", action="store_true",
                        help="fail unless accounting and DRF invariants "
                             "hold")
    replay.add_argument("--obs", action="store_true",
                        help="record per-tenant metrics in the obs "
                             "registry")
    replay.add_argument("--prom", default=None,
                        help="write per-tenant Prometheus text here "
                             "(implies --obs)")

    sched = sub.add_parser("schedule", help="print an allocation table")
    sched.add_argument("--app", default="linear-solver")
    sched.add_argument("--size", type=int, default=None)
    sched.add_argument("--k", type=int, default=1)
    sched.add_argument("--queue-aware", action="store_true",
                       help="use the earliest-finish-time extension")

    local = sub.add_parser("local", help="execute over real TCP sockets")
    local.add_argument("--app", default="linear-solver")
    local.add_argument("--size", type=int, default=60)
    local.add_argument("--dialect", default="vdce",
                       choices=sorted(DIALECTS))

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("name",
                     choices=("schedulers", "ablation", "monitoring",
                              "failure-detection"))
    exp.add_argument("--seeds", type=int, default=2,
                     help="replications for averaged experiments")
    exp.add_argument("--json", action="store_true",
                     help="also dump machine-readable JSON")

    plan = sub.add_parser("plan",
                          help="capacity planning: hosts needed for a deadline")
    plan.add_argument("--app", default="linear-solver")
    plan.add_argument("--size", type=int, default=None)
    plan.add_argument("--deadline", type=float, required=True,
                      help="target schedule length (simulated seconds)")
    plan.add_argument("--max-hosts", type=int, default=16)

    show = sub.add_parser("show", help="render an application flow graph")
    show.add_argument("--app", default="linear-solver")
    show.add_argument("--size", type=int, default=None)
    show.add_argument("--no-ports", action="store_true")

    bakeoff = sub.add_parser(
        "bakeoff",
        help="score registered schedulers against the optimal reference")
    bakeoff.add_argument("--schedulers", default="all",
                         help="'all' or a comma list of registry names")
    bakeoff.add_argument("--workloads", default="default",
                         help="'default' or a comma list of workload names")
    bakeoff.add_argument("--seed", type=int, default=0)
    bakeoff.add_argument("--hosts", type=int, default=3,
                         help="hosts per site")
    bakeoff.add_argument("--optimal-limit", type=int, default=9,
                         help="max tasks for the branch-and-bound reference")
    bakeoff.add_argument("--json", default=None,
                         help="write the deterministic comparison JSON here")
    bakeoff.add_argument("--check", default=None, metavar="BASELINE",
                         help="fail on optimality-gap regression vs this "
                              "committed bake-off JSON")
    bakeoff.add_argument("--tolerance", type=float, default=0.10,
                         help="allowed absolute gap increase for --check")
    bakeoff.add_argument("--obs", action="store_true",
                         help="record schedule-round spans and counters")
    bakeoff.add_argument("--replay", action="store_true",
                         help="score schedulers under sustained "
                              "multi-tenant replay load instead of "
                              "per-workload scheduling")
    bakeoff.add_argument("--replay-arrivals", type=int, default=200,
                         help="arrivals per contestant in --replay mode")
    bakeoff.add_argument("--replay-tenants", type=int, default=5,
                         help="tenant count in --replay mode")

    analyze = sub.add_parser(
        "analyze",
        help="run the happens-before race sanitizer and emit the "
             "cross-site isolation certificate")
    analyze.add_argument("--seeds", default="101,202,303",
                         help="comma list of seeds")
    analyze.add_argument("--scenario", default="all",
                         choices=("chaos", "bakeoff", "all"))
    analyze.add_argument("--batching", default="both",
                         choices=("on", "off", "both"),
                         help="network same-tick batching mode(s) to run")
    analyze.add_argument("--tasks", type=int, default=60,
                         help="chaos solver problem size")
    analyze.add_argument("--max-time", type=float, default=600.0,
                         help="simulated-time budget per run")
    analyze.add_argument("--json", default=None,
                         help="write the deterministic race report here")

    monitor = sub.add_parser("monitor", help="run the monitoring pipeline")
    monitor.add_argument("--duration", type=float, default=60.0)
    monitor.add_argument("--policy", default="ci",
                         choices=("always", "ci", "threshold"))

    obs = sub.add_parser(
        "obs", help="run with observability on and print the report")
    obs.add_argument("--app", default="linear-solver")
    obs.add_argument("--size", type=int, default=None)
    obs.add_argument("--apps", type=int, default=1,
                     help="copies of the application to submit")
    obs.add_argument("--queue-aware", action="store_true")
    obs.add_argument("--sample-every", type=float, default=5.0,
                     help="queue-depth sampling period (simulated s)")
    obs.add_argument("--max-time", type=float, default=3600.0,
                     help="simulated-time budget")
    obs.add_argument("--chrome", default=None,
                     help="write a Chrome trace_event JSON here")
    obs.add_argument("--prom", default=None,
                     help="write a Prometheus text exposition here")
    obs.add_argument("--jsonl", default=None,
                     help="write the span log as JSONL here")

    for p in (solve, sched, monitor, obs):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--hosts", type=int, default=4,
                       help="hosts per site")
        p.add_argument("--idle", action="store_true",
                       help="no background load")
    solve.add_argument("--max-time", type=float, default=3600.0,
                       help="simulated-time budget")
    local.add_argument("--max-time", type=float, default=120.0,
                       help="wall-clock budget (s)")
    return parser


COMMANDS = {
    "info": cmd_info,
    "analyze": cmd_analyze,
    "bakeoff": cmd_bakeoff,
    "solve": cmd_solve,
    "schedule": cmd_schedule,
    "local": cmd_local,
    "monitor": cmd_monitor,
    "obs": cmd_obs,
    "plan": cmd_plan,
    "show": cmd_show,
    "experiment": cmd_experiment,
    "replay": cmd_replay,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
