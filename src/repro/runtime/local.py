"""LocalRunner: execute an application flow graph for real, with threads
and TCP sockets on the local machine.

This is the paper's campus-prototype execution mode made runnable today:
each task gets its own "machine" — a :class:`RealEndpoint` (listening
Data Manager) plus the thread-based organisation of section 2.3.2: "the
Data Manager consists of three threads that are initiated by the
communication proxy: send thread, receive thread, and compute thread."
Channel setup follows Figure 7 (setup frame -> acknowledgment -> start),
data really crosses loopback TCP in a chosen message-passing dialect, and
the exit tasks' outputs come back as the result.

The simulated backend measures *time*; this backend proves the *protocol
and numerics* on genuine sockets.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.afg.graph import ApplicationFlowGraph
from repro.runtime.data.realsock import RealEndpoint, RealProxy
from repro.runtime.services import ConsoleService, IOService
from repro.util.errors import ExecutionError


def channel_key(node_id: str, port: str) -> str:
    return f"{node_id}:{port}"


@dataclass
class LocalResult:
    """Outcome of one local execution."""

    outputs: dict[str, dict[str, Any]]  # exit node -> port -> value
    task_order: list[str] = field(default_factory=list)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors


class _TaskWorker:
    """One task's 'machine': endpoint + receive/compute/send threads."""

    def __init__(self, runner: "LocalRunner", node_id: str) -> None:
        self.runner = runner
        self.node = runner.graph.node(node_id)
        self.node_id = node_id
        self.endpoint = RealEndpoint(name=f"ep:{node_id}",
                                     dialect=runner.dialect)
        self.inputs: dict[str, Any] = {}
        self._input_q: queue.Queue = queue.Queue()
        self.proxies: dict[str, RealProxy] = {}  # consumer node -> proxy
        self.threads: list[threading.Thread] = []

    # Figure 7 steps 2-4: activate proxies + channel setup handshakes.
    def setup(self) -> None:
        for link in self.runner.graph.out_links(self.node_id):
            peer = self.runner.workers[link.dst]
            proxy = self.proxies.get(link.dst)
            if proxy is None:
                proxy = RealProxy(peer.endpoint.address,
                                  dialect=self.runner.dialect,
                                  name=f"proxy:{self.node_id}->{link.dst}")
                self.proxies[link.dst] = proxy
            proxy.setup_channel(channel_key(link.dst, link.dst_port))

    def start(self) -> None:
        # receive thread(s): one per input port
        for link in self.runner.graph.in_links(self.node_id):
            t = threading.Thread(
                target=self._receive_one,
                args=(link.dst_port,),
                name=f"recv:{self.node_id}:{link.dst_port}", daemon=True)
            t.start()
            self.threads.append(t)
        # compute thread (sends via the proxies when done)
        t = threading.Thread(target=self._compute,
                             name=f"compute:{self.node_id}", daemon=True)
        t.start()
        self.threads.append(t)

    def _receive_one(self, port: str) -> None:
        try:
            value = self.endpoint.receive(channel_key(self.node_id, port),
                                          timeout=self.runner.timeout_s)
            self._input_q.put((port, value))
        except Exception as exc:  # surface into the compute thread
            self._input_q.put((port, _Failure(str(exc))))

    def _compute(self) -> None:
        try:
            expected = set(self.node.input_ports)
            while set(self.inputs) != expected:
                port, value = self._input_q.get(
                    timeout=self.runner.timeout_s)
                if isinstance(value, _Failure):
                    raise ExecutionError(
                        f"{self.node_id}: input {port!r} failed: "
                        f"{value.message}")
                self.inputs[port] = value
            # console service: honour suspend/resume before starting
            self.runner.console_barrier()
            params = dict(self.node.properties.params)
            # I/O service: params may reference registered named inputs
            # via {"_io_inputs": {"param": "registered-name"}}.
            io_inputs = params.pop("_io_inputs", None)
            if isinstance(io_inputs, dict):
                for name, key in io_inputs.items():
                    params[name] = self.runner.io.resolve(key)
            outputs = self.node.definition.execute(self.inputs, params)
            with self.runner._order_lock:
                self.runner.result.task_order.append(self.node_id)
            for link in self.runner.graph.out_links(self.node_id):
                self.proxies[link.dst].send(
                    channel_key(link.dst, link.dst_port),
                    outputs[link.src_port])
            if not self.runner.graph.out_links(self.node_id):
                self.runner.result.outputs[self.node_id] = outputs
        except Exception as exc:
            self.runner.result.errors[self.node_id] = str(exc)
        finally:
            self.runner.task_done(self.node_id)

    def close(self) -> None:
        for proxy in self.proxies.values():
            proxy.close()
        self.endpoint.close()


class _Failure:
    def __init__(self, message: str) -> None:
        self.message = message


class LocalRunner:
    """Run a validated AFG with real threads + loopback TCP channels."""

    def __init__(self, graph: ApplicationFlowGraph,
                 dialect: str = "vdce",
                 io: IOService | None = None,
                 console: ConsoleService | None = None,
                 timeout_s: float = 60.0) -> None:
        graph.validate()
        for nid, node in graph.nodes.items():
            if not node.definition.executable:
                raise ExecutionError(
                    f"task {nid!r} ({node.task_name}) has no real "
                    "implementation; LocalRunner requires executable tasks")
        self.graph = graph
        self.dialect = dialect
        self.io = io or IOService()
        self.console = console
        self.timeout_s = timeout_s
        self.workers: dict[str, _TaskWorker] = {}
        self.result = LocalResult(outputs={})
        self._pending = len(graph.nodes)
        self._all_done = threading.Event()
        self._order_lock = threading.Lock()
        self._suspend_gate = threading.Event()
        self._suspend_gate.set()

    # -- console integration -------------------------------------------------
    def suspend(self) -> None:
        """Console service: block tasks from *starting* computation."""
        self._suspend_gate.clear()
        if self.console is not None:
            self.console.suspend()

    def resume(self) -> None:
        self._suspend_gate.set()
        if self.console is not None:
            self.console.resume()

    def console_barrier(self) -> None:
        """Block (wall-clock) while the console holds the app suspended."""
        self._suspend_gate.wait(timeout=self.timeout_s)

    def task_done(self, node_id: str) -> None:
        """Worker callback: one task reached a terminal state."""
        with self._order_lock:
            self._pending -= 1
            if self._pending == 0:
                self._all_done.set()

    # -- execution ----------------------------------------------------------------
    def run(self) -> LocalResult:
        """Execute the whole graph; returns when every task finished."""
        try:
            for nid in self.graph.nodes:
                self.workers[nid] = _TaskWorker(self, nid)
            # Figure 7: all channel setups complete (and acknowledged)
            # before any execution starts.
            for worker in self.workers.values():
                worker.setup()
            if self.console is not None and self.console.state == "created":
                self.console.start()
            # execution startup signal
            for worker in self.workers.values():
                worker.start()
            if not self._all_done.wait(timeout=self.timeout_s * 2):
                stuck = [nid for nid, w in self.workers.items()
                         if nid not in self.result.task_order
                         and nid not in self.result.errors]
                self.result.errors["__runner__"] = (
                    f"timed out; unfinished tasks: {sorted(stuck)}")
            if self.console is not None and \
                    self.console.state == "running":
                self.console.complete()
            return self.result
        finally:
            for worker in self.workers.values():
                worker.close()


def run_local(graph: ApplicationFlowGraph, dialect: str = "vdce",
              timeout_s: float = 60.0) -> LocalResult:
    """One-shot convenience wrapper around :class:`LocalRunner`."""
    return LocalRunner(graph, dialect=dialect, timeout_s=timeout_s).run()

