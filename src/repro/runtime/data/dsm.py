"""A minimal distributed-shared-memory model (the paper's future work).

Paper section 3: "We are also implementing a distributed shared memory
model that will allow VDCE users to describe their applications using
shared-memory paradigm."  This module provides that extension in the
simulation substrate: a sequentially-consistent shared tuple space with
per-site caches and write-invalidate coherence, so the costs the paper's
DSM would have paid (remote read misses, invalidation broadcasts) are
measurable.

The model is deliberately simple — single-writer-at-a-time per key,
whole-value granularity — matching what a 1997 prototype would have
built first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.topology import Topology
from repro.simcore.engine import Environment
from repro.util.errors import RuntimeSystemError


@dataclass
class DSMStats:
    reads: int = 0
    read_hits: int = 0
    read_misses: int = 0
    writes: int = 0
    invalidations_sent: int = 0


class SharedMemory:
    """A write-invalidate shared key-value space over the VDCE WAN.

    One *home site* owns the authoritative copy of every key; other sites
    cache values on read and are invalidated on write.  ``read``/``write``
    are simulation processes — they consume simulated time proportional
    to the WAN distance when the cache misses.
    """

    def __init__(self, env: Environment, topology: Topology,
                 home_site: str, value_size_bytes: float = 1024.0) -> None:
        if home_site not in topology.sites:
            raise RuntimeSystemError(f"unknown home site {home_site!r}")
        self.env = env
        self.topology = topology
        self.home_site = home_site
        self.value_size_bytes = value_size_bytes
        self._store: dict[str, Any] = {}
        self._caches: dict[str, dict[str, Any]] = {}  # site -> key -> value
        self.stats = DSMStats()

    def _cache(self, site: str) -> dict[str, Any]:
        return self._caches.setdefault(site, {})

    # -- operations (simulation processes) ---------------------------------
    def read(self, site: str, key: str):
        """Process: read *key* from *site*; remote miss costs a WAN trip."""
        self.stats.reads += 1
        cache = self._cache(site)
        if key in cache:
            self.stats.read_hits += 1
            yield self.env.timeout(1e-6)  # local cache access
            return cache[key]
        self.stats.read_misses += 1
        if key not in self._store:
            raise RuntimeSystemError(f"DSM read of unwritten key {key!r}")
        if site != self.home_site:
            # request + reply across the WAN, value-sized reply
            yield self.env.timeout(
                self.topology.latency(site, self.home_site)
                + self.topology.transfer_time(self.home_site, site,
                                              self.value_size_bytes))
        else:
            yield self.env.timeout(1e-6)
        value = self._store[key]
        cache[key] = value
        return value

    def write(self, site: str, key: str, value: Any):
        """Process: write-through to the home site + invalidate caches."""
        self.stats.writes += 1
        if site != self.home_site:
            yield self.env.timeout(self.topology.transfer_time(
                site, self.home_site, self.value_size_bytes))
        else:
            yield self.env.timeout(1e-6)
        self._store[key] = value
        # invalidate every other site's cached copy
        for other, cache in self._caches.items():
            if other != site and key in cache:
                del cache[key]
                self.stats.invalidations_sent += 1
                yield self.env.timeout(
                    self.topology.latency(self.home_site, other))
        self._cache(site)[key] = value
        return value

    # -- inspection ------------------------------------------------------------
    def peek(self, key: str) -> Any:
        """Authoritative value without simulated cost (test helper)."""
        return self._store.get(key)

    def hit_rate(self) -> float:
        """Fraction of reads served from a site-local cache."""
        if self.stats.reads == 0:
            return 0.0
        return self.stats.read_hits / self.stats.reads
