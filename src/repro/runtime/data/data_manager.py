"""The Data Manager: socket-style point-to-point inter-task communication.

Paper section 2.3.2 / Figure 7: "The VDCE Data Manager is a socket-based,
point-to-point communication system for inter-task communications. ...
the Data Manager activates the communication proxy and sends the resource
allocation information, including the socket number, IP address for
target machine, etc. ... After the setup is completed successfully, the
communication proxy sends an acknowledgment to the Application
Controller."

In the simulation backend a *channel* is a registered endpoint keyed by
``(execution, consumer node, input port)``; setup is a real message
round-trip between the two hosts' Data Managers (so setup latency scales
with channel count and WAN distance — experiment F7), and data messages
carry both the modelled payload size and, when real task implementations
are executing, the actual Python value (byte-order-converted when the
endpoint architectures differ).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import CHANNEL_ACK, CHANNEL_SETUP, TASK_DATA
from repro.net.network import Network
from repro.obs import OBS_OFF, Observability
from repro.resources.host import Host
from repro.runtime.data.conversion import conversion_cost_s, convert
from repro.runtime.data.messaging import RetryPolicy
from repro.simcore.engine import Environment
from repro.simcore.store import Store
from repro.simcore.trace import Tracer
from repro.util.errors import ChannelError, DeliveryTimeoutError


def channel_key(execution_id: str, dst_node: str, dst_port: str) -> str:
    return f"{execution_id}:{dst_node}:{dst_port}"


@dataclass(frozen=True)
class ChannelSpec:
    """One point-to-point channel (producer port -> consumer port)."""

    execution_id: str
    src_node: str
    src_port: str
    src_host: str
    dst_node: str
    dst_port: str
    dst_host: str

    @property
    def key(self) -> str:
        return channel_key(self.execution_id, self.dst_node, self.dst_port)

    @property
    def crosses_hosts(self) -> bool:
        return self.src_host != self.dst_host


@dataclass
class DataManagerStats:
    channels_opened: int = 0
    setups_requested: int = 0
    retries: int = 0
    setups_abandoned: int = 0
    data_messages_sent: int = 0
    data_bytes_sent: float = 0.0
    conversions: int = 0
    conversion_time_s: float = 0.0


class DataManager:
    """One per VDCE machine; owns that machine's communication proxies."""

    SERVICE = "datamgr"

    def __init__(self, env: Environment, network: Network, host: Host,
                 byte_orders: dict[str, str] | None = None,
                 tracer: Tracer | None = None,
                 retry_policy: RetryPolicy | None = None,
                 retry_rng=None,
                 obs: Observability | None = None) -> None:
        self.env = env
        self.network = network
        self.host = host
        self.retry_policy = retry_policy or RetryPolicy()
        #: seeded generator for retry-timeout jitter (the facade wires
        #: the shared named stream ``rng.stream("retry-jitter")``); None
        #: keeps the plain deterministic backoff ladder
        self.retry_rng = retry_rng
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.address = f"{host.address}/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        #: host address -> byte order, for conversion decisions; filled by
        #: the facade (it knows every host's architecture).
        self.byte_orders = byte_orders if byte_orders is not None else {}
        self.stats = DataManagerStats()
        self._endpoints: dict[str, Store] = {}
        self._pending_acks: dict[str, object] = {}
        self._inbox_proc = env.process(self._inbox_loop(),
                                       name=f"dm:{self.address}")

    # -- endpoints (receive side) ----------------------------------------
    def open_endpoint(self, spec: ChannelSpec) -> Store:
        """Create the receive mailbox for a channel terminating here.

        Idempotent: the producer's setup request and the consumer's own
        Application Controller both try to open the endpoint, in an order
        that depends on message timing — whichever arrives first wins and
        the second call returns the same store.
        """
        if spec.dst_host != self.host.address:
            raise ChannelError(
                f"endpoint {spec.key} belongs to {spec.dst_host}, not "
                f"{self.host.address}")
        store = self._endpoints.get(spec.key)
        if store is None:
            store = Store(self.env)
            self._endpoints[spec.key] = store
            self.stats.channels_opened += 1
        return store

    def endpoint(self, key: str) -> Store:
        """Fetch an open channel's receive store by key."""
        try:
            return self._endpoints[key]
        except KeyError:
            raise ChannelError(f"no open channel {key!r}") from None

    def has_endpoint(self, key: str) -> bool:
        """True when the receive store for *key* is open on this host."""
        return key in self._endpoints

    def close_execution(self, execution_id: str) -> None:
        """Tear down all channels of one finished execution."""
        prefix = f"{execution_id}:"
        for key in [k for k in self._endpoints if k.startswith(prefix)]:
            del self._endpoints[key]

    # -- setup handshake (send side; Figure 7 steps 2-4) ---------------------
    def _setup_one(self, spec: ChannelSpec):
        """Process: handshake one cross-host channel with retry/backoff.

        Each unanswered setup is resent after the policy's (growing)
        timeout; returns True on ack, False when the budget is exhausted
        — by then either the peer host is down (the Group Manager will
        report it) or the link is partitioned beyond the retry horizon.
        """
        policy = self.retry_policy
        obs = self.obs
        for attempt in range(1, policy.max_attempts + 1):
            ack = self.env.event()
            self._pending_acks[spec.key] = ack
            self.stats.setups_requested += 1
            if obs.enabled:
                obs.metrics.counter(
                    "dm_setups_requested_total",
                    help="channel-setup handshakes sent").inc(
                        host=self.host.address)
            self.network.send(
                self.address, f"{spec.dst_host}/{self.SERVICE}",
                CHANNEL_SETUP,
                payload={"spec": spec, "reply_to": self.address},
                size_bytes=96)
            index, _ = yield self.env.any_of(
                [ack, self.env.timeout(
                    policy.timeout_for(attempt, rng=self.retry_rng))])
            if index == 0:
                return True
            if attempt < policy.max_attempts:
                self.stats.retries += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "dm_setup_retries_total",
                        help="channel-setup retries").inc(
                            host=self.host.address)
                    obs.metrics.counter(
                        "retries_total",
                        help="retransmissions across all subsystems").inc(
                            component="data-manager",
                            host=self.host.address)
                self.tracer.record(self.env.now, "dm:retry", self.address,
                                   key=spec.key, attempt=attempt + 1,
                                   dst=spec.dst_host)
        self.stats.setups_abandoned += 1
        if obs.enabled:
            obs.metrics.counter(
                "dm_setups_abandoned_total",
                help="channel setups abandoned after retries").inc(
                    host=self.host.address)
            obs.metrics.counter(
                "delivery_timeouts_total",
                help="exchanges abandoned after the retry budget").inc(
                    component="data-manager", host=self.host.address)
        self.tracer.record(self.env.now, "dm:setup-abandoned", self.address,
                           key=spec.key, dst=spec.dst_host,
                           attempts=policy.max_attempts)
        self._pending_acks.pop(spec.key, None)
        return False

    def setup_channels(self, specs: list[ChannelSpec],
                       on_failure: str = "abandon"):
        """Process: handshake every outgoing cross-host channel.

        Local (same-host) channels are opened synchronously by the
        consumer side; cross-host channels require a setup round-trip to
        the peer Data Manager, retried per :class:`RetryPolicy`.  With
        ``on_failure="abandon"`` (default) exhausted handshakes are
        dropped — safe because the consumer opens its own endpoints, so
        data still lands if the peer comes back; ``on_failure="raise"``
        raises :class:`DeliveryTimeoutError` instead.
        """
        if on_failure not in ("abandon", "raise"):
            raise ChannelError(
                f"on_failure must be 'abandon' or 'raise', got "
                f"{on_failure!r}")
        procs = []
        remote = []
        for spec in specs:
            if spec.src_host != self.host.address:
                raise ChannelError(
                    f"channel {spec.key} does not originate at "
                    f"{self.host.address}")
            if not spec.crosses_hosts:
                continue  # receiver opened it locally; no wire handshake
            remote.append(spec)
            procs.append(self.env.process(
                self._setup_one(spec), name=f"dm:setup:{spec.key}"))
        if procs:
            outcomes = yield self.env.all_of(procs)
            failed = [s.key for s, ok in zip(remote, outcomes) if not ok]
            if failed and on_failure == "raise":
                raise DeliveryTimeoutError(
                    f"channel setup exhausted retries for {failed} "
                    f"(policy: {self.retry_policy})")
        self.tracer.record(self.env.now, "dm:channels-ready", self.address,
                           count=len(specs))
        return len(specs)

    def _inbox_loop(self):
        while True:
            msg = yield self.mailbox.get()
            if msg.kind == CHANNEL_SETUP:
                spec: ChannelSpec = msg.payload["spec"]
                if spec.key not in self._endpoints:
                    self.open_endpoint(spec)
                self.network.send(self.address, msg.payload["reply_to"],
                                  CHANNEL_ACK, payload={"key": spec.key},
                                  size_bytes=32)
            elif msg.kind == CHANNEL_ACK:
                ack = self._pending_acks.pop(msg.payload["key"], None)
                if ack is not None and not ack.triggered:
                    ack.succeed()
            elif msg.kind == TASK_DATA:
                self._on_task_data(msg)

    # -- data transfer ----------------------------------------------------
    def send_output(self, spec: ChannelSpec, value, size_bytes: float):
        """Process: ship one output along a channel (with conversion).

        The sender pays the conversion cost before the wire transfer when
        the two hosts' byte orders differ — the paper's heterogeneous
        data-conversion service.
        """
        src_order = self.byte_orders.get(spec.src_host, "big")
        dst_order = self.byte_orders.get(spec.dst_host, "big")
        cost = conversion_cost_s(size_bytes, src_order, dst_order)
        if cost > 0:
            self.stats.conversions += 1
            self.stats.conversion_time_s += cost
            value = convert(value, src_order, dst_order)
            yield self.env.timeout(cost)
        self.stats.data_messages_sent += 1
        self.stats.data_bytes_sent += size_bytes
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "dm_data_messages_total",
                help="task-data messages shipped").inc(
                    host=self.host.address)
            obs.metrics.counter(
                "dm_data_bytes_total",
                help="task-data bytes shipped").inc(
                    size_bytes, host=self.host.address)
        if spec.crosses_hosts:
            if obs.enabled:
                # Parent the resulting message-delivery span under the
                # producing task.  send() is synchronous — no yields
                # between set and reset — so the hand-off is exact even
                # with many tasks in flight.
                obs.current_parent = obs.spans.lookup(
                    ("task", spec.execution_id, spec.src_node))
            self.network.send(self.address, f"{spec.dst_host}/{self.SERVICE}",
                              TASK_DATA,
                              payload={"key": spec.key, "value": value,
                                       "src_node": spec.src_node},
                              size_bytes=size_bytes)
            if obs.enabled:
                obs.current_parent = None
        else:
            # same machine: inter-process communication (pipes/shm), not
            # the network — modelled as immediate local delivery.  The
            # endpoint may be gone when the consumer was rescheduled away
            # (e.g. this host crashed and recovered with stale work):
            # drop, exactly like the cross-host orphan-data path.
            store = self._endpoints.get(spec.key)
            if store is None:
                self.tracer.record(self.env.now, "dm:orphan-data",
                                   self.address, key=spec.key)
            else:
                store.put({"key": spec.key, "value": value,
                           "src_node": spec.src_node})
        return size_bytes

    def _on_task_data(self, msg) -> None:
        key = msg.payload["key"]
        store = self._endpoints.get(key)
        if store is None:
            # Channel torn down (e.g. consumer rescheduled): drop.
            self.tracer.record(self.env.now, "dm:orphan-data", self.address,
                               key=key)
            return
        store.put(msg.payload)

    def receive(self, execution_id: str, node_id: str, port: str):
        """Event that fires with the payload dict for one input port."""
        return self.endpoint(channel_key(execution_id, node_id, port)).get()

    def stop(self) -> None:
        """Terminate the manager's inbox process (teardown)."""
        if self._inbox_proc.is_alive:
            self._inbox_proc.interrupt("stop")
