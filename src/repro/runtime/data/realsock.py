"""A real TCP backend for the Data Manager.

Paper section 2.3.2: "The VDCE Data Manager is a socket-based,
point-to-point communication system for inter-task communications.
Therefore, any machine that supports socket programming can be part of
VDCE."  The simulation backend models sockets; this module *is* sockets:
loopback TCP with the Figure 7 handshake (channel-setup frame ->
acknowledgment -> data frames), framed by the message-passing dialects of
:mod:`repro.runtime.data.messaging`.

Used by :class:`repro.runtime.local.LocalRunner`, which executes an
application flow graph for real on the local machine with the paper's
thread-based Data Manager organisation ("three threads ... send thread,
receive thread, and compute thread").
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from typing import Any

from repro.runtime.data.messaging import MessageCodec
from repro.util.errors import ChannelError

_SETUP = "setup"
_ACK = "ack"
_DATA = "data"
_CLOSE = "close"


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameStream:
    """Paired-frame protocol over one socket: a JSON control frame,
    optionally followed by a payload frame (which may be a typed array)."""

    def __init__(self, sock: socket.socket, dialect: str = "vdce") -> None:
        self.sock = sock
        self.codec = MessageCodec(dialect)
        self._endian = ">" if self.codec.dialect.wire_byte_order == "big" \
            else "<"
        self._send_lock = threading.Lock()

    def send(self, control: dict, payload: Any = None) -> None:
        """Ship a control frame (plus optional payload frame) atomically."""
        control = dict(control)
        control["has_payload"] = payload is not None
        blob = self.codec.frame(control)
        if payload is not None:
            blob += self.codec.frame(payload)
        with self._send_lock:
            self.sock.sendall(blob)

    def _read_one(self) -> Any | None:
        head = _recv_exact(self.sock, 4)
        if head is None:
            return None
        (length,) = struct.unpack(f"{self._endian}I", head)
        body = _recv_exact(self.sock, length)
        if body is None:
            raise ChannelError("socket closed mid-frame")
        return self.codec.decode(body)

    def receive(self) -> tuple[dict, Any] | None:
        """Blocking read of one (control, payload) pair; None on EOF."""
        control = self._read_one()
        if control is None:
            return None
        payload = self._read_one() if control.get("has_payload") else None
        return control, payload

    def close(self) -> None:
        """Shut both directions and close the socket."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class RealEndpoint:
    """One machine's listening Data Manager (the receive side).

    Accepts peer connections; a receive thread per connection routes data
    frames into per-channel queues keyed ``dst_node:dst_port``.
    """

    def __init__(self, name: str = "endpoint", dialect: str = "vdce") -> None:
        self.name = name
        self.dialect = dialect
        self._server = socket.create_server(("127.0.0.1", 0))
        self._server.settimeout(0.2)
        self.address = self._server.getsockname()
        self._queues: dict[str, queue.Queue] = {}
        self._queues_lock = threading.Lock()
        self._streams: list[FrameStream] = []
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        accept = threading.Thread(target=self._accept_loop,
                                  name=f"{name}-accept", daemon=True)
        accept.start()
        self._threads.append(accept)

    # -- channels ----------------------------------------------------------
    def open_channel(self, key: str) -> queue.Queue:
        """Create (or fetch) the receive queue for one channel key."""
        with self._queues_lock:
            return self._queues.setdefault(key, queue.Queue())

    def receive(self, key: str, timeout: float = 30.0) -> Any:
        """Blocking read of the next value on a channel."""
        q = self.open_channel(key)
        try:
            return q.get(timeout=timeout)
        except queue.Empty:
            raise ChannelError(
                f"{self.name}: timed out waiting on channel {key!r}"
            ) from None

    # -- internals -------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _peer = self._server.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            stream = FrameStream(conn, self.dialect)
            self._streams.append(stream)
            worker = threading.Thread(target=self._receive_loop,
                                      args=(stream,),
                                      name=f"{self.name}-recv", daemon=True)
            worker.start()
            self._threads.append(worker)

    def _receive_loop(self, stream: FrameStream) -> None:
        while not self._stop.is_set():
            try:
                item = stream.receive()
            except (ChannelError, OSError):
                return
            if item is None:
                return
            control, payload = item
            kind = control.get("type")
            if kind == _SETUP:
                # Figure 7 step 4: acknowledge the channel setup
                self.open_channel(control["key"])
                stream.send({"type": _ACK, "key": control["key"]})
            elif kind == _DATA:
                self.open_channel(control["key"]).put(payload)
            elif kind == _CLOSE:
                return

    def close(self) -> None:
        """Stop accepting, close every stream, release the port."""
        self._stop.set()
        for stream in self._streams:
            stream.close()
        self._server.close()


class RealProxy:
    """The communication proxy: the producer's sending side."""

    def __init__(self, peer_address: tuple[str, int],
                 dialect: str = "vdce", name: str = "proxy") -> None:
        self.name = name
        sock = socket.create_connection(peer_address, timeout=10.0)
        sock.settimeout(30.0)
        self.stream = FrameStream(sock, dialect)
        self._acks: queue.Queue = queue.Queue()
        self._reader = threading.Thread(target=self._ack_loop,
                                        name=f"{name}-acks", daemon=True)
        self._reader.start()

    def _ack_loop(self) -> None:
        while True:
            try:
                item = self.stream.receive()
            except (ChannelError, OSError):
                return
            if item is None:
                return
            control, _payload = item
            if control.get("type") == _ACK:
                self._acks.put(control["key"])

    def setup_channel(self, key: str, timeout: float = 10.0) -> None:
        """Figure 7 steps 3-4: request setup, wait for the acknowledgment."""
        self.stream.send({"type": _SETUP, "key": key})
        try:
            acked = self._acks.get(timeout=timeout)
        except queue.Empty:
            raise ChannelError(
                f"{self.name}: no setup acknowledgment for {key!r}"
            ) from None
        if acked != key:
            raise ChannelError(
                f"{self.name}: acknowledgment mismatch "
                f"({acked!r} != {key!r})")

    def send(self, key: str, value: Any) -> None:
        """Ship one value down an established channel."""
        self.stream.send({"type": _DATA, "key": key}, payload=value)

    def close(self) -> None:
        """Announce closure to the peer and shut the socket."""
        try:
            self.stream.send({"type": _CLOSE})
        except OSError:
            pass
        self.stream.close()
