"""Message-passing wire formats (dialects).

Paper section 2.3.2: "Since user tasks can be programmed in various
message-passing tools, the VDCE Runtime System supports multiple
message-passing libraries such as P4, PVM, MPI, NCS."

The dead 1990s libraries are substituted by *wire dialects*: each dialect
is a self-describing binary framing with its own header layout and byte
order convention, capturing the interoperability problem those libraries
posed (a PVM task and an MPI task exchanging arrays across machines of
different endianness).  NumPy arrays are serialised explicitly (dtype,
shape, raw bytes in the dialect's wire order); plain Python structures
travel as JSON.  Every dialect round-trips every payload; arrays cross
endianness boundaries intact, which the tests assert bit-exactly.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.util.errors import ConfigurationError, DataConversionError

MAGIC = b"VDCE"
_KIND_ARRAY = 1
_KIND_JSON = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Per-message timeout with bounded exponential backoff and jitter.

    Attempt *n* (1-based) waits ``min(timeout_s * backoff_factor**(n-1),
    max_timeout_s)`` for an answer before resending; after
    ``max_attempts`` unanswered sends the exchange is abandoned.  The
    defaults give a ~15 s total budget (1 + 2 + 4 + 8), sized so a
    handshake can ride out the short link partitions chaos plans inject
    (see ``docs/faults.md``).

    *jitter* desynchronises retry storms: when non-zero, each timeout is
    stretched by up to ``jitter`` of its capped value, with the draw
    taken from the generator passed to :meth:`timeout_for` — the VDCE
    facade wires the named ``rng.stream("retry-jitter")`` stream, so two
    same-seed runs produce identical retry timings (the determinism
    contract; a regression test asserts it).  With ``jitter=0`` (the
    default) or no generator the ladder is the plain deterministic one.
    """

    timeout_s: float = 1.0
    max_attempts: int = 4
    backoff_factor: float = 2.0
    max_timeout_s: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_timeout_s < self.timeout_s:
            raise ConfigurationError(
                "max_timeout_s must be >= timeout_s "
                f"({self.max_timeout_s} < {self.timeout_s})")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def timeout_for(self, attempt: int, rng: Any = None) -> float:
        """Wait budget for the *attempt*-th send (1-based).

        With a *rng* (``numpy.random.Generator``) and a non-zero
        ``jitter``, the capped backoff is stretched by a seeded draw in
        ``[0, jitter)`` of its value.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt is 1-based, got {attempt}")
        base = min(self.timeout_s * self.backoff_factor ** (attempt - 1),
                   self.max_timeout_s)
        if self.jitter and rng is not None:
            base += base * self.jitter * float(rng.random())
        return base

    def schedule(self) -> list[float]:
        """The jitter-free timeout ladder, one entry per attempt."""
        return [self.timeout_for(n) for n in
                range(1, self.max_attempts + 1)]

    @property
    def total_wait_s(self) -> float:
        """Worst-case total time spent waiting before giving up."""
        return sum(self.schedule())


@dataclass(frozen=True)
class Dialect:
    """One message-passing library's wire convention."""

    name: str
    wire_byte_order: str  # "big" (network order) or "little"
    header_pad: int = 0   # extra header bytes (library envelope overhead)


#: The four libraries the paper names, plus the native format.
DIALECTS: dict[str, Dialect] = {
    "vdce": Dialect("vdce", wire_byte_order="big"),
    "p4": Dialect("p4", wire_byte_order="big", header_pad=8),
    "pvm": Dialect("pvm", wire_byte_order="big", header_pad=16),
    "mpi": Dialect("mpi", wire_byte_order="little", header_pad=4),
    "ncs": Dialect("ncs", wire_byte_order="little", header_pad=12),
}


def get_dialect(name: str) -> Dialect:
    try:
        return DIALECTS[name]
    except KeyError:
        raise DataConversionError(
            f"unknown message-passing dialect {name!r}; expected one of "
            f"{sorted(DIALECTS)}") from None


class MessageCodec:
    """Encode/decode payloads in a dialect's wire format."""

    def __init__(self, dialect: str | Dialect = "vdce") -> None:
        self.dialect = (dialect if isinstance(dialect, Dialect)
                        else get_dialect(dialect))
        self._endian = ">" if self.dialect.wire_byte_order == "big" else "<"

    # -- encoding -----------------------------------------------------------
    def encode(self, value: Any) -> bytes:
        """Serialise *value*; arrays go typed, everything else as JSON."""
        if isinstance(value, np.ndarray):
            kind = _KIND_ARRAY
            body = self._encode_array(value)
        else:
            kind = _KIND_JSON
            try:
                body = json.dumps(value).encode("utf-8")
            except TypeError as exc:
                raise DataConversionError(
                    f"payload is neither ndarray nor JSON-serialisable: "
                    f"{exc}") from exc
        header = struct.pack(
            f"{self._endian}4sB B I",
            MAGIC, kind, self.dialect.header_pad, len(body))
        return header + b"\x00" * self.dialect.header_pad + body

    def _encode_array(self, arr: np.ndarray) -> bytes:
        wire = arr.astype(arr.dtype.newbyteorder(self._endian), copy=False)
        dtype_tag = arr.dtype.str.lstrip("<>=|").encode("ascii")
        shape = arr.shape
        meta = struct.pack(f"{self._endian}B B", len(dtype_tag), len(shape))
        meta += dtype_tag
        meta += struct.pack(f"{self._endian}{len(shape)}q", *shape)
        return meta + np.ascontiguousarray(wire).tobytes()

    # -- decoding -------------------------------------------------------------
    def decode(self, data: bytes) -> Any:
        """Deserialise to native byte order (the receiver's format)."""
        if len(data) < 10 or data[:4] != MAGIC:
            raise DataConversionError("not a VDCE-framed message")
        magic, kind, pad, length = struct.unpack(
            f"{self._endian}4sB B I", data[:10])
        body = data[10 + pad:10 + pad + length]
        if len(body) != length:
            raise DataConversionError(
                f"truncated message: expected {length} body bytes, got "
                f"{len(body)}")
        if kind == _KIND_JSON:
            return json.loads(body.decode("utf-8"))
        if kind == _KIND_ARRAY:
            return self._decode_array(body)
        raise DataConversionError(f"unknown payload kind {kind}")

    def _decode_array(self, body: bytes) -> np.ndarray:
        dlen, ndim = struct.unpack(f"{self._endian}B B", body[:2])
        offset = 2
        dtype_tag = body[offset:offset + dlen].decode("ascii")
        offset += dlen
        shape = struct.unpack(f"{self._endian}{ndim}q",
                              body[offset:offset + 8 * ndim])
        offset += 8 * ndim
        wire_dtype = np.dtype(dtype_tag).newbyteorder(self._endian)
        arr = np.frombuffer(body[offset:], dtype=wire_dtype).reshape(shape)
        # hand the receiver a native-order array
        return arr.astype(arr.dtype.newbyteorder("="), copy=True)

    # -- framing for stream transports ------------------------------------------
    def frame(self, value: Any) -> bytes:
        """Length-prefixed encoding for stream (socket) transports."""
        payload = self.encode(value)
        return struct.pack(f"{self._endian}I", len(payload)) + payload

    def read_frame(self, buffer: bytes) -> tuple[Any, bytes] | None:
        """Try to consume one frame; returns (value, rest) or None."""
        if len(buffer) < 4:
            return None
        (length,) = struct.unpack(f"{self._endian}I", buffer[:4])
        if len(buffer) < 4 + length:
            return None
        value = self.decode(buffer[4:4 + length])
        return value, buffer[4 + length:]


def translate(data: bytes, src_dialect: str, dst_dialect: str) -> bytes:
    """Re-encode a message from one library's format to another's.

    This is the interoperability shim the paper's Data Manager provides
    between tasks written against different message-passing tools.
    """
    value = MessageCodec(src_dialect).decode(data)
    return MessageCodec(dst_dialect).encode(value)
