"""The Data Manager: channels, proxies, conversion, messaging dialects,
the real TCP backend, and the DSM extension."""

from repro.runtime.data.conversion import (
    CONVERSION_BYTES_PER_S,
    conversion_cost_s,
    conversion_needed,
    convert,
)
from repro.runtime.data.data_manager import (
    ChannelSpec,
    DataManager,
    DataManagerStats,
    channel_key,
)
from repro.runtime.data.dsm import DSMStats, SharedMemory
from repro.runtime.data.messaging import (
    DIALECTS,
    Dialect,
    MessageCodec,
    get_dialect,
    translate,
)
from repro.runtime.data.realsock import FrameStream, RealEndpoint, RealProxy

__all__ = [
    "CONVERSION_BYTES_PER_S",
    "ChannelSpec",
    "DIALECTS",
    "DSMStats",
    "DataManager",
    "DataManagerStats",
    "Dialect",
    "FrameStream",
    "MessageCodec",
    "RealEndpoint",
    "RealProxy",
    "SharedMemory",
    "channel_key",
    "conversion_cost_s",
    "conversion_needed",
    "convert",
    "get_dialect",
    "translate",
]
