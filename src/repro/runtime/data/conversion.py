"""Data conversion for heterogeneous machines.

Paper section 2.3.2: "the VDCE Runtime System provides data conversions
that might be needed when an application execution environment includes
heterogeneous machines."  The classic case is byte order: a big-endian
SPARC shipping doubles to a little-endian Alpha.  Conversion really
happens (NumPy byte-swap) and costs modelled time proportional to the
payload size, so experiment F7 can measure the heterogeneous-vs-
homogeneous overhead.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.util.errors import DataConversionError

#: Modelled conversion throughput: a mid-90s workstation byte-swapping
#: in memory (~40 MB/s).
CONVERSION_BYTES_PER_S = 40e6


def conversion_needed(src_byte_order: str, dst_byte_order: str) -> bool:
    for order in (src_byte_order, dst_byte_order):
        if order not in ("big", "little"):
            raise DataConversionError(f"unknown byte order {order!r}")
    return src_byte_order != dst_byte_order


def conversion_cost_s(nbytes: float, src_byte_order: str,
                      dst_byte_order: str) -> float:
    """Modelled wall-clock cost of converting *nbytes*."""
    if not conversion_needed(src_byte_order, dst_byte_order):
        return 0.0
    if nbytes < 0:
        raise DataConversionError(f"negative payload size {nbytes}")
    return nbytes / CONVERSION_BYTES_PER_S


def convert(value: Any, src_byte_order: str, dst_byte_order: str) -> Any:
    """Convert *value* between byte orders.

    NumPy arrays are genuinely byte-swapped (twice over the wire model:
    the sender serialises to network order, the receiver to native — the
    net numeric effect is identity, which is the correctness property the
    tests assert).  Non-array values are endianness-agnostic Python
    objects and pass through unchanged.
    """
    if not conversion_needed(src_byte_order, dst_byte_order):
        return value
    if isinstance(value, np.ndarray) and value.dtype.byteorder != "|":
        swapped = value.byteswap().view(value.dtype.newbyteorder())
        # Normalise to native order so downstream computation is unaffected.
        return np.ascontiguousarray(swapped.astype(value.dtype.newbyteorder("=")))
    return value
