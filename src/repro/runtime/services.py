"""User-requested runtime services.

Paper section 2.3.2: "The VDCE Runtime System provides several
user-requested services such as I/O service, console service, and
visualization service."

* :class:`IOService` — "either file I/O or URL I/O for the inputs of the
  application tasks": named input providers resolving to task parameters
  or input values (the URL case is a registered in-memory provider, since
  the sandbox has no network).
* :class:`ConsoleService` — "the user can suspend and restart the
  application execution": a per-execution state machine with a gate that
  executors await before starting each task.

The visualization services live in :mod:`repro.viz` (they are data
consumers, not daemons).
"""

from __future__ import annotations

import json
from collections.abc import Callable
from pathlib import Path
from typing import Any

import numpy as np

from repro.simcore.engine import Environment, Event
from repro.util.errors import ConsoleError, RuntimeSystemError


class IOService:
    """Resolves named inputs for application tasks."""

    def __init__(self) -> None:
        self._providers: dict[str, Callable[[], Any]] = {}

    # -- registration ------------------------------------------------------
    def register_value(self, name: str, value: Any) -> None:
        """An in-memory input (the stand-in for the paper's URL I/O)."""
        self._providers[name] = lambda: value

    def register_file(self, name: str, path: str | Path) -> None:
        """File I/O: ``.json`` and ``.npy`` files are supported."""
        path = Path(path)

        def load() -> Any:
            if not path.exists():
                raise RuntimeSystemError(f"input file {path} does not exist")
            if path.suffix == ".json":
                return json.loads(path.read_text())
            if path.suffix == ".npy":
                return np.load(path)
            raise RuntimeSystemError(
                f"unsupported input file type {path.suffix!r} "
                "(expected .json or .npy)")

        self._providers[name] = load

    def register_provider(self, name: str,
                          provider: Callable[[], Any]) -> None:
        """Register an arbitrary zero-argument input provider."""
        self._providers[name] = provider

    # -- resolution ----------------------------------------------------------
    def resolve(self, name: str) -> Any:
        try:
            provider = self._providers[name]
        except KeyError:
            raise RuntimeSystemError(
                f"no registered input named {name!r}") from None
        return provider()

    def __contains__(self, name: str) -> bool:
        return name in self._providers


#: console states and their legal transitions
_TRANSITIONS = {
    "created": {"running"},
    "running": {"suspended", "completed", "aborted"},
    "suspended": {"running", "aborted"},
    "completed": set(),
    "aborted": set(),
}


class ConsoleService:
    """Suspend/resume control over one application execution."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.state = "created"
        self._gate: Event | None = None  # pending while suspended
        self.transitions: list[tuple[float, str]] = [(env.now, "created")]

    def _move(self, new_state: str) -> None:
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise ConsoleError(
                f"cannot move from {self.state!r} to {new_state!r} "
                f"(allowed: {sorted(allowed)})")
        self.state = new_state
        self.transitions.append((self.env.now, new_state))

    # -- commands -----------------------------------------------------------
    def start(self) -> None:
        """Begin execution (created -> running)."""
        self._move("running")

    def suspend(self) -> None:
        """Pause the application; tasks block before starting."""
        self._move("suspended")
        if self._gate is None or self._gate.triggered:
            self._gate = self.env.event()

    def resume(self) -> None:
        """Continue a suspended application."""
        self._move("running")
        if self._gate is not None and not self._gate.triggered:
            self._gate.succeed()

    def complete(self) -> None:
        """Mark the application finished (terminal)."""
        self._move("completed")

    def abort(self) -> None:
        """Abort the application, releasing any blocked tasks."""
        self._move("aborted")
        if self._gate is not None and not self._gate.triggered:
            self._gate.succeed()  # release waiters so they can observe abort

    # -- executor side -----------------------------------------------------
    @property
    def is_suspended(self) -> bool:
        return self.state == "suspended"

    def wait_if_suspended(self):
        """Process helper: ``yield from console.wait_if_suspended()``."""
        while self.state == "suspended":
            assert self._gate is not None
            yield self._gate

    def suspended_time(self) -> float:
        """Total simulated seconds spent suspended so far."""
        total = 0.0
        since: float | None = None
        for when, state in self.transitions:
            if state == "suspended" and since is None:
                since = when
            elif state != "suspended" and since is not None:
                total += when - since
                since = None
        if since is not None:
            total += self.env.now - since
        return total
