"""The VDCE Runtime System: Control Manager + Data Manager + services."""

from repro.runtime.control import (
    ApplicationController,
    ChangeFilter,
    GroupManager,
    MonitorDaemon,
    SiteManager,
)
from repro.runtime.data import ChannelSpec, DataManager, MessageCodec, SharedMemory
from repro.runtime.local import LocalResult, LocalRunner, run_local
from repro.runtime.services import ConsoleService, IOService

__all__ = [
    "ApplicationController",
    "ChangeFilter",
    "ChannelSpec",
    "ConsoleService",
    "DataManager",
    "GroupManager",
    "IOService",
    "LocalResult",
    "LocalRunner",
    "MessageCodec",
    "MonitorDaemon",
    "SharedMemory",
    "SiteManager",
    "run_local",
]
