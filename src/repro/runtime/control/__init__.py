"""The Control Manager: Resource Controller + Application Controller."""

from repro.runtime.control.app_controller import (
    PARALLEL_OCCUPY,
    ApplicationController,
    ControllerStats,
)
from repro.runtime.control.change_filter import POLICIES, ChangeFilter
from repro.runtime.control.group_manager import (
    HOST_UP,
    GroupManager,
    GroupManagerStats,
)
from repro.runtime.control.monitor import MonitorDaemon
from repro.runtime.control.site_manager import (
    APP_COMPLETED,
    TASK_COMPLETED,
    ExecutionState,
    SiteManager,
)

__all__ = [
    "APP_COMPLETED",
    "ApplicationController",
    "ChangeFilter",
    "ControllerStats",
    "ExecutionState",
    "GroupManager",
    "GroupManagerStats",
    "HOST_UP",
    "MonitorDaemon",
    "PARALLEL_OCCUPY",
    "POLICIES",
    "SiteManager",
    "TASK_COMPLETED",
]
