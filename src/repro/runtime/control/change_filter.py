"""Significant-change filtering of workload updates.

Paper section 2.3.1: "Group Manager sends only the workloads of the
resources that have changed considerably from the previous measurement to
the Site Manager.  The workload of a resource is significantly changed if
the up-to-date measurement is higher or lower than the summation of the
previous measurement and the width of the confidence interval."

Three policies are provided so experiment F6 can quantify the traffic /
staleness trade-off:

* ``always``    — forward every measurement (no filtering);
* ``ci``        — the paper's confidence-interval test;
* ``threshold`` — a fixed absolute-delta test.
"""

from __future__ import annotations

from collections import deque

from repro.util.errors import ConfigurationError
from repro.util.stats import confidence_interval

POLICIES = ("always", "ci", "threshold")


class ChangeFilter:
    """Decides, per host, whether a new measurement is worth forwarding."""

    def __init__(self, policy: str = "ci", window: int = 8,
                 confidence: float = 0.95,
                 threshold: float = 0.25) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown filter policy {policy!r}; expected one of "
                f"{POLICIES}")
        if window < 2:
            raise ConfigurationError("window must be >= 2")
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.policy = policy
        self.window = window
        self.confidence = confidence
        self.threshold = threshold
        self._history: dict[str, deque[float]] = {}
        self._last_sent: dict[str, float] = {}

    def observe(self, host: str, value: float) -> bool:
        """Record a measurement; return True when it should be forwarded."""
        history = self._history.setdefault(
            host, deque(maxlen=self.window))
        history.append(value)
        if host not in self._last_sent:
            send = True  # always forward the first measurement
        elif self.policy == "always":
            send = True
        elif self.policy == "threshold":
            send = abs(value - self._last_sent[host]) > self.threshold
        else:  # "ci": the paper's rule
            ci = confidence_interval(list(history), self.confidence)
            last = self._last_sent[host]
            send = value > last + ci.half_width or \
                value < last - ci.half_width
        if send:
            self._last_sent[host] = value
        return send

    def last_forwarded(self, host: str) -> float | None:
        """The value most recently forwarded for a host (None if never)."""
        return self._last_sent.get(host)

    def reset(self, host: str | None = None) -> None:
        """Forget history for one host (or for all)."""
        if host is None:
            self._history.clear()
            self._last_sent.clear()
        else:
            self._history.pop(host, None)
            self._last_sent.pop(host, None)
