"""The Site Manager: the VDCE server software of one site.

Paper section 2 / Figure 6: the Site Manager "handles the inter-site
communications and bridges the VDCE modules to the web-based repository".
Concretely it:

* updates the site repository with workload measurements and failure /
  recovery notifications from Group Managers ("Updating the Site
  Repository");
* serves the local Application Scheduler's repository reads;
* as a *remote* site: receives AFG multicasts, runs the Host Selection
  Algorithm, and returns the mapping ("Inter-site Coordination");
* as the *local* site: multicasts the AFG to the k nearest sites,
  gathers replies, and runs the Site Scheduler walk;
* multicasts the finished resource allocation table to the Group
  Managers involved ("Sending the Related Portion of the Resource
  Allocation Table");
* collects channel-setup acknowledgments and emits the execution
  startup signal (Figure 7 step 5);
* records completed task execution times into the task-performance
  database ("the newly measured execution time of each application task
  is stored in the task-performance database").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.afg.graph import ApplicationFlowGraph
from repro.analysis import hooks
from repro.net import (
    AFG_MULTICAST,
    ALLOCATION_PUSH,
    CHANNEL_ACK,
    HOST_DOWN,
    HOST_SELECTION_REPLY,
    RESCHEDULE_REQUEST,
    START_SIGNAL,
    WORKLOAD_UPDATE,
)
from repro.net.network import Network
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.repository.site_repository import SiteRepository
from repro.resources.site import Site
from repro.runtime.control.group_manager import HOST_UP, GroupManager
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.host_selection import HostSelectionResult, HostSelector
from repro.scheduling.site_scheduler import SiteScheduler
from repro.simcore.engine import Environment, Event
from repro.simcore.trace import Tracer
from repro.util.errors import SchedulingError

TASK_COMPLETED = "task-completed"
APP_COMPLETED = "application-completed"


@dataclass
class PendingSchedule:
    """State of one in-flight inter-site scheduling round."""

    request_id: str
    graph: ApplicationFlowGraph
    expected_sites: set[str]
    results: dict[str, HostSelectionResult] = field(default_factory=dict)
    done: Event | None = None


@dataclass
class ExecutionState:
    """Per-execution bookkeeping at the local Site Manager."""

    execution_id: str
    application: str
    expected_acks: set[str]
    received_acks: set[str] = field(default_factory=set)
    controllers: set[str] = field(default_factory=set)
    started: bool = False
    start_signal_time: float | None = None
    completed_tasks: dict[str, dict] = field(default_factory=dict)
    finished: Event | None = None
    total_tasks: int = 0


class SiteManager:
    """One per VDCE server machine."""

    SERVICE = "sitemgr"

    def __init__(self, env: Environment, network: Network, site: Site,
                 repository: SiteRepository, topology: Topology,
                 selection_timeout_s: float = 5.0,
                 tracer: Tracer | None = None,
                 obs: Observability | None = None) -> None:
        self.env = env
        self.network = network
        self.site = site
        self.repository = repository
        self.topology = topology
        self.selection_timeout_s = selection_timeout_s
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.address = f"{site.name}/server/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        self.selector = HostSelector(repository)
        self.group_managers: dict[str, GroupManager] = {}
        self._pending: dict[str, PendingSchedule] = {}
        self._executions: dict[str, ExecutionState] = {}
        self._request_seq = 0
        #: hook invoked with the reschedule-request payload (installed by
        #: the VDCE facade, which owns cross-module rescheduling)
        self.on_reschedule_request: Callable[[dict], None] | None = None
        #: degraded-mode site predicate (installed by the facade when
        #: federation membership is enabled): quarantined sites are
        #: excluded from every scheduling round this manager runs
        self.site_filter: Callable[[str], bool] | None = None
        #: write-ahead-log shipper (a ReplicationShipper, attached by the
        #: RecoveryCoordinator when failover is enabled for this site);
        #: every mutating operation logs through :meth:`_log` first
        self.replication: Any = None
        self.updates_applied = 0
        self._inbox_proc = env.process(self._inbox_loop(),
                                       name=f"sm:{self.address}")

    # -- group manager wiring -------------------------------------------------
    def register_group_manager(self, gm: GroupManager) -> None:
        """Attach a Group Manager so allocations can reach its group."""
        self.group_managers[gm.group] = gm

    # -- inbox ------------------------------------------------------------
    def _inbox_loop(self):
        while True:
            msg = yield self.mailbox.get()
            handler = {
                WORKLOAD_UPDATE: self._on_workload_update,
                HOST_DOWN: self._on_host_down,
                HOST_UP: self._on_host_up,
                AFG_MULTICAST: self._on_afg_multicast,
                HOST_SELECTION_REPLY: self._on_selection_reply,
                CHANNEL_ACK: self._on_channel_ack,
                RESCHEDULE_REQUEST: self._on_reschedule_request,
                TASK_COMPLETED: self._on_task_completed,
                ALLOCATION_PUSH: self._on_allocation_push,
            }.get(msg.kind)
            if handler is not None:
                handler(msg)

    # -- write-ahead logging ------------------------------------------------
    def _log(self, kind: str, payload: dict) -> None:
        """Append one mutation to the replication WAL (no-op standalone)."""
        if self.replication is not None:
            # The shipper reports the WAL-cell write to the sanitizer.
            self.replication.log(kind, payload)

    def _hb_exec(self, detail: str) -> None:
        """Report a mutation of the execution-state table (``sm-exec``)
        to the attached sanitizer; call sites guard on ``hooks.HB``."""
        hooks.HB.write(self.site.name, "sm-exec", detail)

    # -- repository updates -----------------------------------------------
    def _on_workload_update(self, msg) -> None:
        # A coalescing Group Manager ships {"samples": [...]}; the
        # uncoalesced path ships one bare sample.  Both apply (and WAL)
        # per sample, in arrival order, so replication and repository
        # bytes are identical with coalescing on or off.
        payload = msg.payload
        samples = (payload["samples"] if isinstance(payload, dict)
                   and "samples" in payload else [payload])
        for sample in samples:
            self._log("workload-update", dict(sample))
            self.repository.resource_performance.update_dynamic(
                sample["host"], cpu_load=sample["cpu_load"],
                available_memory_mb=sample["available_memory_mb"],
                time=sample["time"])
            self.updates_applied += 1
            self.tracer.record(self.env.now, "sm:db-update", self.address,
                               host=sample["host"], load=sample["cpu_load"])
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "sm_db_updates_total",
                    help="repository workload updates applied").inc(
                        site=self.site.name)

    def _on_host_down(self, msg) -> None:
        host = msg.payload["host"]
        self._log("host-down", {"host": host, "time": self.env.now})
        if host in self.repository.resource_performance:
            self.repository.resource_performance.mark_down(host, self.env.now)
        self.tracer.record(self.env.now, "sm:host-down", self.address,
                           host=host)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "sm_host_events_total",
                help="host down/up notifications handled").inc(
                    site=self.site.name, kind="down")
        # A host that died before acking its channels would block the
        # start signal forever; waive its ack for executions that have
        # not started (its tasks get rerouted by the host-down hook).
        for state in self._executions.values():
            if state.started or host not in state.expected_acks:
                continue
            if hooks.HB is not None:
                self._hb_exec(f"ack-waive:{state.execution_id}")
            state.expected_acks.discard(host)
            state.received_acks.discard(host)
            state.controllers.discard(f"{host}/appctl")
            self.tracer.record(self.env.now, "sm:ack-waived", self.address,
                               execution=state.execution_id, host=host)
            self._maybe_start(state)

    def waive_site_acks(self, site_name: str) -> None:
        """Waive pending channel acks from every host at an unreachable site.

        The partition analogue of the host-down ack waiver: hosts at a
        quarantined (or departing) site cannot deliver their acks, and a
        not-yet-started execution must not wait on them forever — their
        tasks are re-queued onto reachable sites by the facade.
        """
        prefix = f"{site_name}/"
        for state in self._executions.values():
            if state.started:
                continue
            stale = sorted(h for h in state.expected_acks
                           if h.startswith(prefix))
            if not stale:
                continue
            if hooks.HB is not None:
                self._hb_exec(f"ack-waive:{state.execution_id}")
            for host in stale:
                state.expected_acks.discard(host)
                state.received_acks.discard(host)
                state.controllers.discard(f"{host}/appctl")
            self.tracer.record(self.env.now, "sm:site-acks-waived",
                               self.address, execution=state.execution_id,
                               site=site_name, hosts=len(stale))
            self._maybe_start(state)

    def _on_host_up(self, msg) -> None:
        host = msg.payload["host"]
        self._log("host-up", {"host": host, "time": self.env.now})
        if host in self.repository.resource_performance:
            self.repository.resource_performance.mark_up(host, self.env.now)
        self.tracer.record(self.env.now, "sm:host-up", self.address,
                           host=host)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "sm_host_events_total",
                help="host down/up notifications handled").inc(
                    site=self.site.name, kind="up")

    # -- resource add/remove ("whenever a resource is added or removed") -----
    def resource_added(self, spec) -> None:
        self.repository.resource_performance.register_host(self.site.name,
                                                           spec)

    def resource_removed(self, address: str) -> None:
        self.repository.resource_performance.unregister_host(address)

    # -- remote-site role: answer AFG multicasts -----------------------------
    def _on_afg_multicast(self, msg) -> None:
        payload = msg.payload
        graph: ApplicationFlowGraph = payload["graph"]
        result = self.selector.select(graph)
        self.network.send(self.address, msg.src, HOST_SELECTION_REPLY,
                          payload={"request_id": payload["request_id"],
                                   "result": result},
                          size_bytes=128 + 64 * len(result.choices))
        self.tracer.record(self.env.now, "sm:selection-served", self.address,
                           application=graph.name, requester=msg.src)

    def _on_selection_reply(self, msg) -> None:
        payload = msg.payload
        pending = self._pending.get(payload["request_id"])
        if pending is None:
            return  # late reply after timeout: ignored
        result: HostSelectionResult = payload["result"]
        pending.results[result.site] = result
        if set(pending.results) >= pending.expected_sites and \
                pending.done is not None and not pending.done.triggered:
            pending.done.succeed(pending.results)

    # -- local-site role: the full Figure 4 round over messages --------------
    def schedule_application(self, graph: ApplicationFlowGraph,
                             k_remote_sites: int = 2,
                             queue_aware: bool = False):
        """Process: multicast AFG, gather selections, run the site walk.

        Yields simulation events; returns ``(table, report)``.  Remote
        sites that do not answer within ``selection_timeout_s`` are
        dropped from consideration (wide-area robustness).
        """
        self._request_seq += 1
        request_id = f"{self.site.name}-req-{self._request_seq}"
        scheduler = SiteScheduler(self.site.name, self.topology,
                                  k_remote_sites=k_remote_sites,
                                  queue_aware=queue_aware, obs=self.obs,
                                  site_filter=self.site_filter)
        remote_sites = scheduler.select_remote_sites()
        pending = PendingSchedule(request_id=request_id, graph=graph,
                                  expected_sites=set(remote_sites),
                                  done=self.env.event())
        self._pending[request_id] = pending
        # Local selection runs in-process (Figure 4 step 4 "for local site").
        pending.results[self.site.name] = self.selector.select(graph)
        if remote_sites:
            # step 3's multicast proper: one batched fan-out, one heap
            # entry per distinct delay instead of one process per site
            self.network.send_batch(
                self.address,
                [f"{remote}/server/{self.SERVICE}"
                 for remote in remote_sites],
                AFG_MULTICAST,
                payload={"request_id": request_id, "graph": graph},
                size_bytes=256 + 128 * len(graph))
            timeout = self.env.timeout(self.selection_timeout_s)
            yield self.env.any_of([pending.done, timeout])
        del self._pending[request_id]
        table, report = scheduler.schedule(graph, dict(pending.results))
        self.tracer.record(self.env.now, "sm:scheduled", self.address,
                           application=graph.name,
                           sites=sorted(pending.results))
        return table, report

    # -- allocation distribution (Figure 6 interaction 4) ---------------------
    def distribute_allocation(self, table: ResourceAllocationTable,
                              execution_id: str,
                              graph: ApplicationFlowGraph,
                              max_host_load: float | None = None
                              ) -> ExecutionState:
        """Multicast RAT portions to the Group Managers involved.

        Returns the execution-tracking state used for ack collection.
        Only the local site's hosts are served by this site's group
        managers; remote portions are forwarded to the remote Site
        Managers, which distribute to their own groups.  Entries are
        enriched with the communication information (peer hosts, port
        wiring, transfer sizes) the Data Managers need for channel setup.
        """
        state = ExecutionState(
            execution_id=execution_id, application=table.application,
            expected_acks=set(table.hosts()),
            # reprolint: disable=DET001 -- membership-only set, no order escapes
            controllers={f"{h}/appctl" for h in table.hosts()},
            finished=self.env.event(), total_tasks=len(table))
        if hooks.HB is not None:
            self._hb_exec(f"begin:{execution_id}")
        self._executions[execution_id] = state
        by_site: dict[str, dict[str, list]] = {}
        for host in sorted(table.hosts()):
            site = host.split("/")[0]
            portion = []
            for e in table.portion_for_host(host):
                payload = self._entry_payload(e, graph, table)
                if max_host_load is not None:
                    # the application's QoS overload ceiling travels with
                    # the allocation (paper: the Application Controller
                    # maintains "the performance ... and QoS requirements")
                    payload["max_host_load"] = max_host_load
                portion.append(payload)
            by_site.setdefault(site, {})[host] = portion
        # WAL first (write-ahead): a standby must learn the execution
        # exists before any push effect can race ahead of the log
        self._log("exec-begin", {
            "execution_id": execution_id, "application": table.application,
            "expected_acks": sorted(state.expected_acks),
            "controllers": sorted(state.controllers),
            "total_tasks": state.total_tasks,
            "coordinator": self.address, "by_site": by_site})
        remote_dsts: list[str] = []
        remote_payloads: list[Any] = []
        remote_sizes: list[float] = []
        for site, portions in by_site.items():
            if site == self.site.name:
                self._push_to_groups(portions, table.application,
                                     execution_id)
            else:
                remote_dsts.append(f"{site}/server/{self.SERVICE}")
                remote_payloads.append(
                    {"application": table.application,
                     "execution_id": execution_id,
                     "portions": portions,
                     "coordinator": self.address})
                remote_sizes.append(
                    256 + 128 * sum(map(len, portions.values())))
        if remote_dsts:
            self.network.send_batch(
                self.address, remote_dsts, ALLOCATION_PUSH,
                payloads=remote_payloads, sizes=remote_sizes)
        return state

    def _on_allocation_push(self, msg) -> None:
        """Remote-site role: distribute a forwarded portion to my groups."""
        payload = msg.payload
        self._push_to_groups(payload["portions"], payload["application"],
                             payload["execution_id"],
                             coordinator=payload.get("coordinator",
                                                     msg.src))

    def _push_to_groups(self, portions: dict[str, list], application: str,
                        execution_id: str,
                        coordinator: str | None = None) -> None:
        by_group: dict[str, dict[str, list]] = {}
        for host, entries in portions.items():
            host_name = host.split("/")[1]
            group = self.site.group_of(host_name)
            by_group.setdefault(group, {})[host] = entries
        dsts: list[str] = []
        payloads: list[Any] = []
        for group, group_portions in by_group.items():
            gm = self.group_managers.get(group)
            if gm is None:
                raise SchedulingError(
                    f"no group manager for group {group!r} at "
                    f"{self.site.name!r}")
            dsts.append(gm.address)
            payloads.append({"application": application,
                             "execution_id": execution_id,
                             "portions": group_portions,
                             "coordinator": coordinator or self.address})
        if dsts:
            self.network.send_batch(self.address, dsts, ALLOCATION_PUSH,
                                    payloads=payloads, size_bytes=256)

    @staticmethod
    def _entry_payload(entry, graph: ApplicationFlowGraph,
                       table: ResourceAllocationTable) -> dict[str, Any]:
        """One RAT entry plus the communication info the runtime needs."""
        node = graph.node(entry.node_id)
        in_links = [
            {"src_node": link.src, "src_port": link.src_port,
             "dst_port": link.dst_port,
             "src_host": table.get(link.src).host,
             "size_bytes": graph.node(link.src).output_bytes()}
            for link in graph.in_links(entry.node_id)
        ]
        out_links = [
            {"dst_node": link.dst, "dst_port": link.dst_port,
             "src_port": link.src_port,
             "dst_host": table.get(link.dst).host,
             "size_bytes": node.output_bytes()}
            for link in graph.out_links(entry.node_id)
        ]
        return {
            "node_id": entry.node_id, "task_name": entry.task_name,
            "site": entry.site, "hosts": list(entry.hosts),
            "predicted_time_s": entry.predicted_time_s,
            "processors": entry.processors,
            "input_size": node.properties.input_size,
            "params": dict(node.properties.params),
            "is_exit": not graph.out_links(entry.node_id),
            "in_links": in_links,
            "out_links": out_links,
        }

    # -- ack collection + start signal (Figure 7) ------------------------------
    def _on_channel_ack(self, msg) -> None:
        payload = msg.payload
        state = self._executions.get(payload["execution_id"])
        if state is None or state.started:
            return
        if payload["host"] not in state.received_acks:
            self._log("ack", {"execution_id": payload["execution_id"],
                              "host": payload["host"]})
        if hooks.HB is not None:
            self._hb_exec(f"ack:{payload['execution_id']}")
        state.received_acks.add(payload["host"])
        self._maybe_start(state)

    def _maybe_start(self, state: ExecutionState) -> None:
        """Emit the start signal once every expected ack is in (or waived)."""
        if state.started or not (state.received_acks >= state.expected_acks):
            return
        if hooks.HB is not None:
            self._hb_exec(f"start:{state.execution_id}")
        state.started = True
        state.start_signal_time = self.env.now
        self._log("start", {"execution_id": state.execution_id})
        self.network.send_batch(
            self.address, sorted(state.controllers), START_SIGNAL,
            payload={"execution_id": state.execution_id}, size_bytes=32)
        self.tracer.record(self.env.now, "sm:start-signal", self.address,
                           execution=state.execution_id)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "sm_start_signals_total",
                help="execution start signals emitted").inc(
                    site=self.site.name)

    # -- completion recording ---------------------------------------------------
    def _on_task_completed(self, msg) -> None:
        payload = msg.payload
        state = self._executions.get(payload["execution_id"])
        if state is None:
            return
        if payload["node_id"] in state.completed_tasks:
            # duplicate report (controller re-sent it after a failover
            # re-push): already recorded, must not double-count
            return
        self._log("task-completed", payload)
        if hooks.HB is not None:
            self._hb_exec(f"completed:{payload['execution_id']}")
        state.completed_tasks[payload["node_id"]] = payload
        if self.obs.enabled:
            self.obs.metrics.counter(
                "sm_tasks_completed_total",
                help="task-completion reports recorded").inc(
                    site=self.site.name)
        # Paper: newly measured execution times go into the task-
        # performance database after the application completes.
        tp = self.repository.task_performance
        if payload["task_name"] in tp:
            tp.record_execution(
                payload["task_name"], payload["host"],
                input_size=payload["input_size"],
                elapsed_s=payload["elapsed_s"], time=self.env.now,
                dedicated_elapsed_s=payload.get("dedicated_elapsed_s"),
                base_time_at_size_s=payload.get("base_time_at_size_s"))
        if len(state.completed_tasks) >= state.total_tasks and \
                state.finished is not None and not state.finished.triggered:
            self._log("exec-finished",
                      {"execution_id": state.execution_id})
            state.finished.succeed(dict(state.completed_tasks))
            self.tracer.record(self.env.now, "sm:app-completed", self.address,
                               execution=state.execution_id)

    def resend_start(self, state: ExecutionState) -> None:
        """Re-emit the start signal for an already-started execution.

        Used after a failover re-push: controllers whose setup completed
        before the crash already consumed the original signal (their
        start event stays triggered), while re-pushed controllers need
        one to run tasks the log shows as not yet completed.
        """
        self.network.send_batch(
            self.address, sorted(state.controllers), START_SIGNAL,
            payload={"execution_id": state.execution_id}, size_bytes=32)
        self.tracer.record(self.env.now, "sm:start-resent", self.address,
                           execution=state.execution_id)

    def execution_state(self, execution_id: str) -> ExecutionState:
        """Bookkeeping for one distributed execution (acks, completions)."""
        return self._executions[execution_id]

    # -- rescheduling relay -------------------------------------------------------
    def _on_reschedule_request(self, msg) -> None:
        self.tracer.record(self.env.now, "sm:reschedule-request", self.address,
                           host=msg.payload.get("host"),
                           reason=msg.payload.get("reason"))
        if self.on_reschedule_request is not None:
            self.on_reschedule_request(msg.payload)

    def stop(self) -> None:
        """Terminate the manager's inbox process (teardown)."""
        if self._inbox_proc.is_alive:
            self._inbox_proc.interrupt("stop")
