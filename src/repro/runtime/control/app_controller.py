"""The Application Controller: one per VDCE machine.

Paper section 2.3.1: "The execution environment setup and management
services are provided by the Application Controller by interacting with
the Data Manager."  On receiving an execution request from its Group
Manager it activates the Data Manager (channel endpoints + setup
handshakes), forwards the acknowledgment toward the Site Manager, waits
for the execution startup signal, runs its assigned tasks, and reports
completions.

It also *manages* the execution: "If the current load on any of these
machines is more than a predefined threshold value, the Application
Controller terminates the task execution on the machine and sends a task
rescheduling request to the Group Manager."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net import (
    CHANNEL_ACK,
    EXECUTION_REQUEST,
    RESCHEDULE_REQUEST,
    START_SIGNAL,
)
from repro.net.network import Network
from repro.obs import OBS_OFF, Observability
from repro.resources.groundtruth import ExecutionModel
from repro.resources.host import Host
from repro.runtime.control.site_manager import TASK_COMPLETED
from repro.runtime.data.data_manager import (
    ChannelSpec,
    DataManager,
    channel_key,
)
from repro.scheduling.rescheduling import ReschedulePolicy
from repro.simcore.engine import Environment, Interrupt
from repro.simcore.trace import Tracer
from repro.tasklib.registry import LibraryRegistry
from repro.util.errors import ExecutionError

PARALLEL_OCCUPY = "parallel-occupy"


@dataclass
class ControllerStats:
    tasks_executed: int = 0
    tasks_rescheduled_away: int = 0
    overload_terminations: int = 0
    executions_seen: set = field(default_factory=set)


class ApplicationController:
    """Per-host execution-environment setup and task management."""

    SERVICE = "appctl"

    def __init__(self, env: Environment, network: Network, host: Host,
                 registry: LibraryRegistry, model: ExecutionModel,
                 data_manager: DataManager,
                 group_manager_addr: str,
                 policy: ReschedulePolicy | None = None,
                 monitor_interval_s: float = 1.0,
                 tracer: Tracer | None = None,
                 obs: Observability | None = None) -> None:
        self.env = env
        self.network = network
        self.host = host
        self.registry = registry
        self.model = model
        self.data_manager = data_manager
        self.group_manager_addr = group_manager_addr
        self.policy = policy or ReschedulePolicy()
        self.monitor_interval_s = monitor_interval_s
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.address = f"{host.address}/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        self.stats = ControllerStats()
        self._start_events: dict[str, Any] = {}
        # exactly-once bookkeeping: after a server failover the promoted
        # Site Manager re-pushes allocations it cannot prove were acted
        # on; these dedup keys make every re-push idempotent.
        #: (execution_id, node_id) -> "running" | "done" | "aborted"
        self._node_status: dict[tuple[str, str], str] = {}
        #: executions whose channel setup completed and was acked
        self._acked: set[str] = set()
        #: cached completion reports, re-sent on duplicate pushes so a
        #: promoted server can fill log gaps without re-running tasks
        self._completed_reports: dict[str, dict[str, dict]] = {}
        #: inputs consumed by aborted runs, keyed (execution, node) —
        #: a re-issued task must not re-await channels it already drained
        self._aborted_inputs: dict[tuple[str, str], dict] = {}
        self._inbox_proc = env.process(self._inbox_loop(),
                                       name=f"ac:{self.address}")

    # -- inbox ----------------------------------------------------------
    def _inbox_loop(self):
        while True:
            msg = yield self.mailbox.get()
            if msg.kind == EXECUTION_REQUEST:
                self.env.process(self._handle_execution(msg.payload),
                                 name=f"ac-exec:{self.address}")
            elif msg.kind == START_SIGNAL:
                ev = self._start_events.get(msg.payload["execution_id"])
                if ev is not None and not ev.triggered:
                    ev.succeed()
            elif msg.kind == PARALLEL_OCCUPY:
                self.env.process(self._occupy(msg.payload),
                                 name=f"ac-occupy:{self.address}")

    # -- execution environment setup (Figure 7 steps 1-4) ----------------------
    def _handle_execution(self, payload: dict):
        execution_id = payload["execution_id"]
        coordinator = payload["coordinator"]
        self.stats.executions_seen.add(execution_id)
        if payload.get("immediate"):
            # Rescheduled task: inputs travel with the request, the
            # execution is already under way — no setup, no start signal.
            procs = []
            for entry in payload["entries"]:
                if entry["hosts"][0] != self.host.address:
                    continue
                if not self._can_source_inputs(execution_id, entry):
                    # Promotion-time re-push of a task this host never
                    # set up: no forwarded inputs, no cached aborted
                    # inputs, no open endpoints — the inputs can never
                    # arrive here, so running would die on a closed
                    # channel.  Leave it unclaimed; the rescheduling
                    # pipeline re-issues it with the inputs attached.
                    self.tracer.record(self.env.now,
                                       "ac:unsourceable-repush",
                                       self.host.address,
                                       node=entry["node_id"],
                                       execution=execution_id)
                    continue
                if not self._claim(execution_id, entry["node_id"],
                                   coordinator):
                    continue
                procs.append(self.env.process(
                    self._run_task(execution_id, coordinator, entry),
                    name=f"retask:{entry['node_id']}@{self.host.address}"))
            if procs:
                yield self.env.all_of(procs)
            return
        my_entries = [e for e in payload["entries"]
                      if e["hosts"][0] == self.host.address]
        participant_entries = [e for e in payload["entries"]
                               if e["hosts"][0] != self.host.address]
        if execution_id not in self._acked:
            # 1-2. activate the Data Manager: open receive endpoints for
            # my tasks' inputs, then handshake outgoing channels.
            out_specs: list[ChannelSpec] = []
            for entry in my_entries:
                for link in entry["in_links"]:
                    spec = self._in_spec(execution_id, entry, link)
                    self.data_manager.open_endpoint(spec)
                for link in entry["out_links"]:
                    out_specs.append(
                        self._out_spec(execution_id, entry, link))
            yield self.env.process(
                self.data_manager.setup_channels(out_specs))
            self._acked.add(execution_id)
        # (else: duplicate push from a promoted server — channels are
        # already set up, but the new coordinator still needs the ack)
        # 3-4. forward the acknowledgment toward the Site Manager.
        self.network.send(self.address, coordinator, CHANNEL_ACK,
                          payload={"execution_id": execution_id,
                                   "host": self.host.address},
                          size_bytes=48)
        start = self._start_events.setdefault(execution_id,
                                              self.env.event())
        yield start
        # 5. run my tasks (each as its own process so independent tasks
        # interleave exactly as separate processes would on the machine).
        # A duplicate push re-runs only tasks that never ran here.
        procs = []
        for entry in my_entries:
            if not self._claim(execution_id, entry["node_id"],
                               coordinator, allow_aborted=False):
                continue
            procs.append(self.env.process(
                self._run_task(execution_id, coordinator, entry),
                name=f"task:{entry['node_id']}@{self.host.address}"))
        if procs:
            yield self.env.all_of(procs)
        # participant entries occupy this host when the primary signals;
        # nothing to do here (handled by PARALLEL_OCCUPY messages).
        _ = participant_entries

    def _can_source_inputs(self, execution_id: str, entry: dict) -> bool:
        """May :meth:`_run_task` actually gather this entry's inputs here?

        True when the inputs travel with the entry, a prior aborted run
        on this host already drained them, or every input channel's
        receive endpoint is open locally (the original-allocation case).
        """
        if "forward_inputs" in entry:
            return True
        if (execution_id, entry["node_id"]) in self._aborted_inputs:
            return True
        return all(
            self.data_manager.has_endpoint(channel_key(
                execution_id, entry["node_id"], link["dst_port"]))
            for link in entry["in_links"])

    def _claim(self, execution_id: str, node_id: str, coordinator: str,
               allow_aborted: bool = True) -> bool:
        """Dedup gate: may this (execution, node) start here now?

        Running and completed tasks refuse the claim (for completed
        ones the cached report is re-sent, healing a coordinator whose
        replicated log missed the original completion).  Aborted tasks
        may be reclaimed only by an *immediate* push — the rescheduling
        pipeline deliberately re-issuing them — never by a duplicate
        allocation push, which would race the rescheduled copy.
        """
        key = (execution_id, node_id)
        status = self._node_status.get(key)
        if status == "running":
            return False
        if status == "done":
            self._resend_report(execution_id, node_id, coordinator)
            return False
        if status == "aborted" and not allow_aborted:
            return False
        self._node_status[key] = "running"
        return True

    def _resend_report(self, execution_id: str, node_id: str,
                       coordinator: str) -> None:
        report = self._completed_reports.get(execution_id, {}).get(node_id)
        if report is not None:
            self.network.send(self.address, coordinator, TASK_COMPLETED,
                              payload=report, size_bytes=128)
            self.tracer.record(self.env.now, "task-report-resent",
                               self.host.address, node=node_id,
                               execution=execution_id)

    def _in_spec(self, execution_id: str, entry: dict,
                 link: dict) -> ChannelSpec:
        return ChannelSpec(
            execution_id=execution_id,
            src_node=link["src_node"], src_port=link["src_port"],
            src_host=link["src_host"],
            dst_node=entry["node_id"], dst_port=link["dst_port"],
            dst_host=self.host.address)

    def _out_spec(self, execution_id: str, entry: dict,
                  link: dict) -> ChannelSpec:
        return ChannelSpec(
            execution_id=execution_id,
            src_node=entry["node_id"], src_port=link["src_port"],
            src_host=self.host.address,
            dst_node=link["dst_node"], dst_port=link["dst_port"],
            dst_host=link["dst_host"])

    # -- task execution --------------------------------------------------------
    def _run_task(self, execution_id: str, coordinator: str, entry: dict):
        node_id = entry["node_id"]
        definition = self.registry.resolve(entry["task_name"])
        input_size = entry["input_size"]
        processors = entry.get("processors", 1)
        # gather every input port (values may be None in simulation-only
        # mode, or forwarded wholesale when the task was rescheduled)
        if "forward_inputs" in entry:
            inputs: dict[str, Any] = dict(entry["forward_inputs"])
        elif (execution_id, node_id) in self._aborted_inputs:
            # re-issued after an abort here: the first run already
            # drained the input channels, so reuse what it gathered
            inputs = dict(self._aborted_inputs[(execution_id, node_id)])
        else:
            inputs = {}
            for link in entry["in_links"]:
                payload = yield self.data_manager.receive(
                    execution_id, node_id, link["dst_port"])
                inputs[link["dst_port"]] = payload["value"]
        if not self.host.up:
            # a crashed host silently does nothing; release the dedup
            # slot so a post-recovery re-push may run the task here
            self._node_status[(execution_id, node_id)] = "aborted"
            self._aborted_inputs[(execution_id, node_id)] = inputs
            return
        # overload check before starting (QoS management); the per-
        # application QoS ceiling overrides the site-wide policy; a
        # forced rescheduled task (attempts exhausted) runs regardless
        qos_ceiling = entry.get("max_host_load")
        overloaded = ((lambda load: load > qos_ceiling)
                      if qos_ceiling is not None
                      else self.policy.should_reschedule)
        if not entry.get("forced") and overloaded(self.host.cpu_load):
            self._node_status[(execution_id, node_id)] = "aborted"
            self._aborted_inputs[(execution_id, node_id)] = inputs
            self._request_reschedule(execution_id, entry, inputs,
                                     reason="overload-before-start")
            return
        memory = definition.memory_required_mb(input_size)
        duration = self.model.duration(definition, input_size, self.host,
                                       processors=processors)
        slowdown_at_start = self.host.slowdown(extra_memory_mb=memory)
        self.host.task_started(load=1.0, memory_mb=memory)
        self._occupy_participants(entry, duration)
        self.tracer.record(self.env.now, "task-start", self.host.address,
                           node=node_id, duration=duration,
                           execution=execution_id)
        started = self.env.now
        obs = self.obs
        task_span = None
        if obs.enabled:
            task_span = obs.spans.begin(
                node_id, "task-execution", self.host.address, started,
                parent_id=obs.spans.lookup(("app", execution_id)),
                task=entry["task_name"])
            obs.spans.bind(("task", execution_id, node_id), task_span)
        task_proc = self.env.active_process
        watcher = self.env.process(
            self._overload_watch(task_proc, overloaded),
            name=f"watch:{node_id}")
        try:
            yield self.env.timeout(duration)
        except Interrupt as interrupt:
            # terminated by the overload watcher (or a failure handler)
            self.host.task_finished(load=1.0, memory_mb=memory)
            self.stats.overload_terminations += 1
            self.tracer.record(self.env.now, "task-terminated",
                               self.host.address, node=node_id,
                               cause=str(interrupt.cause))
            if obs.enabled and task_span is not None:
                obs.spans.end(task_span, self.env.now,
                              terminated=str(interrupt.cause))
                obs.metrics.counter(
                    "ac_tasks_terminated_total",
                    help="tasks terminated mid-run").inc(
                        host=self.host.address)
            self._node_status[(execution_id, node_id)] = "aborted"
            self._aborted_inputs[(execution_id, node_id)] = inputs
            self._request_reschedule(execution_id, entry, inputs,
                                     reason=str(interrupt.cause))
            return
        finally:
            if watcher.is_alive:
                watcher.interrupt("task-done")
        self.host.task_finished(load=1.0, memory_mb=memory)
        elapsed = self.env.now - started
        if obs.enabled and task_span is not None:
            obs.spans.end(task_span, self.env.now, elapsed=elapsed)
            obs.metrics.counter(
                "ac_tasks_executed_total",
                help="tasks run to completion").inc(host=self.host.address)
            obs.metrics.histogram(
                "ac_task_elapsed_seconds",
                help="task wall time on the simulated machine").observe(
                    elapsed, host=self.host.address)
        outputs = self._compute_outputs(definition, inputs, entry)
        # ship outputs along every outgoing channel
        for link in entry["out_links"]:
            spec = self._out_spec(execution_id, entry, link)
            value = outputs.get(link["src_port"])
            yield self.env.process(self.data_manager.send_output(
                spec, value, link["size_bytes"]))
        self.stats.tasks_executed += 1
        self.tracer.record(self.env.now, "task-finish", self.host.address,
                           node=node_id, elapsed=elapsed,
                           execution=execution_id)
        report = {
            "execution_id": execution_id, "node_id": node_id,
            "task_name": entry["task_name"], "host": self.host.address,
            "input_size": input_size, "elapsed_s": elapsed,
            "dedicated_elapsed_s": elapsed / max(slowdown_at_start, 1e-12),
            "base_time_at_size_s": definition.base_execution_time(
                input_size, processors=processors),
            "started_s": started,
        }
        if entry.get("is_exit", False):
            report["outputs"] = outputs
        self._node_status[(execution_id, node_id)] = "done"
        self._completed_reports.setdefault(execution_id, {})[node_id] = \
            report
        self.network.send(self.address, coordinator, TASK_COMPLETED,
                          payload=report, size_bytes=128)

    def _compute_outputs(self, definition, inputs: dict,
                         entry: dict) -> dict:
        """Real results when the implementation and all values exist."""
        expected = set(definition.signature.inputs)
        have_all = expected == set(inputs) and \
            all(v is not None for v in inputs.values())
        if definition.executable and have_all:
            try:
                return definition.execute(inputs, entry.get("params") or {})
            except ExecutionError:
                # numeric failure: propagate Nones downstream; the paper's
                # runtime "intercepts the error messages generated"
                self.tracer.record(self.env.now, "task-numeric-error",
                                   self.host.address, node=entry["node_id"])
        return {port: None for port in definition.signature.outputs}

    # -- parallel participants -----------------------------------------------
    def _occupy_participants(self, entry: dict, duration: float) -> None:
        for participant in entry["hosts"][1:]:
            self.network.send(self.address, f"{participant}/{self.SERVICE}",
                              PARALLEL_OCCUPY,
                              payload={"duration": duration,
                                       "node_id": entry["node_id"]},
                              size_bytes=48)

    def _occupy(self, payload: dict):
        """Hold this machine busy as a parallel-task participant."""
        self.host.task_started(load=1.0)
        yield self.env.timeout(payload["duration"])
        self.host.task_finished(load=1.0)

    # -- overload monitoring + rescheduling ------------------------------------
    def _overload_watch(self, task_proc, overloaded=None):
        """Interrupt the running task when load crosses the threshold.

        Only the *background* load counts — the task's own contribution
        must not trigger its own termination.
        """
        if overloaded is None:
            overloaded = self.policy.should_reschedule
        while True:
            yield self.env.timeout(self.monitor_interval_s)
            if not task_proc.is_alive:
                return
            if overloaded(self.host.true_load):
                task_proc.interrupt("overload")
                return

    def _request_reschedule(self, execution_id: str, entry: dict,
                            inputs: dict, reason: str) -> None:
        self.stats.tasks_rescheduled_away += 1
        self.network.send(
            self.address, self.group_manager_addr, RESCHEDULE_REQUEST,
            payload={"execution_id": execution_id, "entry": entry,
                     "host": self.host.address, "reason": reason,
                     "inputs": inputs, "time": self.env.now},
            size_bytes=128)

    def stop(self) -> None:
        """Terminate the controller's inbox process (teardown)."""
        if self._inbox_proc.is_alive:
            self._inbox_proc.interrupt("stop")
