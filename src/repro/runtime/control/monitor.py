"""The per-host Monitor daemon.

Paper section 2.3.1: "Each VDCE machine has a Monitor daemon that
periodically measures the up-to-date processor parameters, i.e., CPU load
and memory availability.  The measured values are sent to the group
leader machine."

The daemon also answers the Group Manager's echo packets; a crashed host
(``host.up == False``) answers nothing — the network layer drops both
directions — which is precisely how failures become detectable.
"""

from __future__ import annotations

from repro.net import ECHO_REPLY, ECHO_REQUEST, LOAD_REPORT
from repro.net.network import Network
from repro.obs import OBS_OFF, Observability
from repro.resources.host import Host
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError


class MonitorDaemon:
    """Periodic load/memory sampling + echo response, one per host."""

    SERVICE = "monitor"

    def __init__(self, env: Environment, network: Network, host: Host,
                 group_leader_addr: str, period_s: float = 2.0,
                 tracer: Tracer | None = None,
                 obs: Observability | None = None) -> None:
        if period_s <= 0:
            raise ConfigurationError("monitor period must be positive")
        self.env = env
        self.network = network
        self.host = host
        self.group_leader_addr = group_leader_addr
        self.period_s = period_s
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.address = f"{host.address}/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        self.reports_sent = 0
        #: observed local up/down transitions: (time, "crashed"/"recovered")
        self.transitions: list[tuple[float, str]] = []
        #: server-liveness detector (a recovery.failover.HeartbeatTracker)
        #: ticked from the crash-watch loop when this host is a standby
        self._server_tracker = None
        self._sampler = env.process(self._sample_loop(), name=f"mon:{host.name}")
        self._responder = env.process(self._respond_loop(),
                                      name=f"mon-echo:{host.name}")
        self._watcher = env.process(self._crash_watch_loop(),
                                    name=f"mon-watch:{host.name}")

    # -- measurement ---------------------------------------------------------
    def measure(self) -> dict:
        """One sample of the host's dynamic attributes."""
        return {
            "host": self.host.address,
            "cpu_load": self.host.cpu_load,
            "available_memory_mb": self.host.memory_available_mb,
            "time": self.env.now,
        }

    def _sample_loop(self):
        while True:
            yield self.env.timeout(self.period_s)
            if not self.host.up:
                continue  # a down host measures nothing
            sample = self.measure()
            self.network.send(self.address, self.group_leader_addr,
                              LOAD_REPORT, payload=sample,
                              size_bytes=64)
            self.reports_sent += 1
            obs = self.obs
            if obs.enabled:
                obs.metrics.counter(
                    "monitor_reports_total",
                    help="load reports sent, by host").inc(
                        host=self.host.address)
                obs.metrics.gauge(
                    "host_cpu_load",
                    help="last monitor-sampled CPU load").set(
                        sample["cpu_load"], host=self.host.address)

    # -- local crash detection ----------------------------------------------
    def _crash_watch_loop(self):
        """Observe the host's own up/down state each sampling period.

        The Group Manager infers remote crashes from echo silence; the
        Monitor records the local ground truth into the trace so
        post-mortem analysis can separate detection latency from the
        fault itself.  On recovery it pushes a load report at once
        instead of waiting out the period, so repositories catch up a
        period earlier.

        When this host is a failover standby the same loop extends the
        crash watch to the *server* host: each period it ticks the
        attached heartbeat tracker, which promotes once the server has
        been silent past this standby's rank-staggered deadline.
        """
        was_up = self.host.up
        while True:
            yield self.env.timeout(self.period_s)
            if self._server_tracker is not None and self.host.up:
                self._server_tracker.tick(self.env.now)
            if self.host.up == was_up:
                continue
            was_up = self.host.up
            obs = self.obs
            if obs.enabled:
                obs.metrics.counter(
                    "monitor_transitions_total",
                    help="locally observed up/down transitions").inc(
                        host=self.host.address,
                        kind="recovered" if self.host.up else "crashed")
            if not self.host.up:
                self.transitions.append((self.env.now, "crashed"))
                self.tracer.record(self.env.now, "mon:crashed",
                                   self.address)
            else:
                self.transitions.append((self.env.now, "recovered"))
                self.tracer.record(self.env.now, "mon:recovered",
                                   self.address)
                self.network.send(self.address, self.group_leader_addr,
                                  LOAD_REPORT, payload=self.measure(),
                                  size_bytes=64)
                self.reports_sent += 1

    # -- server failure detection (failover standbys) ------------------------
    def watch_server(self, tracker) -> None:
        """Attach (or with ``None`` detach) a server heartbeat tracker."""
        self._server_tracker = tracker

    # -- echo ---------------------------------------------------------------
    def _respond_loop(self):
        while True:
            msg = yield self.mailbox.get()
            if msg.kind == ECHO_REQUEST and self.host.up:
                self.network.send(self.address, msg.src, ECHO_REPLY,
                                  payload={"host": self.host.address,
                                           "echo_seq": msg.payload},
                                  size_bytes=32)

    def stop(self) -> None:
        """Terminate the daemon's processes (simulation teardown)."""
        for proc in (self._sampler, self._responder, self._watcher):
            if proc.is_alive:
                proc.interrupt("stop")
