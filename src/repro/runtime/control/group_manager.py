"""The Group Manager: one per group leader machine.

Paper section 2.3.1, Figure 6.  Responsibilities:

* receive the Monitor daemons' periodic load reports and forward to the
  Site Manager only those that changed *significantly* (confidence-
  interval filter — see :mod:`.change_filter`);
* "periodically check ... if all hosts in the group are alive by sending
  echo packets to hosts and waiting for their responses", measuring the
  intra-group network RTT along the way and reporting failures (and
  recoveries) to the Site Manager;
* receive the application's resource allocation table portion from the
  Site Manager and send "an execution request message and related parts
  of the resource allocation table" to each assigned machine's
  Application Controller;
* relay task rescheduling requests from Application Controllers up to
  the Site Manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net import (
    ECHO_REPLY,
    ECHO_REQUEST,
    EXECUTION_REQUEST,
    HOST_DOWN,
    LOAD_REPORT,
    RESCHEDULE_REQUEST,
    WORKLOAD_UPDATE,
)
from repro.net.network import Network
from repro.obs import OBS_OFF, Observability
from repro.runtime.control.change_filter import ChangeFilter
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError

HOST_UP = "host-up"


@dataclass
class GroupManagerStats:
    reports_received: int = 0
    updates_forwarded: int = 0
    echo_rounds: int = 0
    failures_detected: int = 0
    recoveries_detected: int = 0
    rtt_samples: dict[str, list[float]] = field(default_factory=dict)


class GroupManager:
    """Monitoring relay + failure detector for one host group."""

    SERVICE = "groupmgr"

    def __init__(self, env: Environment, network: Network,
                 site: str, group: str, leader_host: str,
                 member_hosts: list[str],
                 site_manager_addr: str,
                 echo_period_s: float = 5.0,
                 echo_timeout_s: float = 1.0,
                 miss_limit: int = 2,
                 change_filter: ChangeFilter | None = None,
                 tracer: Tracer | None = None,
                 obs: Observability | None = None,
                 coalesce_updates: bool = True) -> None:
        if echo_period_s <= 0 or echo_timeout_s <= 0:
            raise ConfigurationError("echo period/timeout must be positive")
        if miss_limit < 1:
            raise ConfigurationError("miss_limit must be >= 1")
        self.env = env
        self.network = network
        self.site = site
        self.group = group
        self.leader_host = leader_host
        self.member_hosts = list(member_hosts)
        self.site_manager_addr = site_manager_addr
        self.echo_period_s = echo_period_s
        self.echo_timeout_s = echo_timeout_s
        self.miss_limit = miss_limit
        self.filter = change_filter or ChangeFilter()
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.stats = GroupManagerStats()
        #: coalesce same-tick forwarded monitor samples into one batched
        #: WORKLOAD_UPDATE (the Site Manager applies and WALs per sample
        #: in order, so repository/WAL content is identical either way)
        self.coalesce_updates = coalesce_updates
        self._pending_updates: list[dict] = []
        self._flush_scheduled = False
        self.address = f"{site}/{leader_host}/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        self._echo_seq = 0
        self._round_sent_at = 0.0
        self._replied: set[str] = set()
        self._misses: dict[str, int] = {h: 0 for h in self.member_hosts}
        self._marked_down: set[str] = set()
        self._inbox_proc = env.process(self._inbox_loop(),
                                       name=f"gm:{self.address}")
        self._echo_proc = env.process(self._echo_loop(),
                                      name=f"gm-echo:{self.address}")

    # -- inbox -----------------------------------------------------------
    def _inbox_loop(self):
        while True:
            msg = yield self.mailbox.get()
            if msg.kind == LOAD_REPORT:
                self._on_load_report(msg)
            elif msg.kind == ECHO_REPLY:
                self._on_echo_reply(msg)
            elif msg.kind == "allocation-push":
                self._on_allocation(msg)
            elif msg.kind == RESCHEDULE_REQUEST:
                # relay to the Site Manager unchanged
                self.network.send(self.address, self.site_manager_addr,
                                  RESCHEDULE_REQUEST, payload=msg.payload,
                                  size_bytes=msg.size_bytes)

    def _on_load_report(self, msg) -> None:
        self.stats.reports_received += 1
        sample = msg.payload
        host = sample["host"]
        forwarded = self.filter.observe(host, sample["cpu_load"])
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "gm_reports_total",
                help="load reports handled, by filter outcome").inc(
                    group=self.group,
                    outcome="forwarded" if forwarded else "suppressed")
        if forwarded:
            self.stats.updates_forwarded += 1
            if self.coalesce_updates:
                self._pending_updates.append(sample)
                if not self._flush_scheduled:
                    self._flush_scheduled = True
                    # the group's monitors share one period, so their
                    # reports land on the same tick; one flush entry
                    # coalesces the whole round.  Safe same-tick use:
                    # NORMAL-priority callback, append order preserved.
                    # reprolint: disable=DET003 -- same-tick coalescing flush, arrival-ordered
                    self.env.call_later(0.0, self._flush_updates)
            else:
                self.network.send(self.address, self.site_manager_addr,
                                  WORKLOAD_UPDATE, payload=sample,
                                  size_bytes=64)
            self.tracer.record(self.env.now, "gm:forward", self.address,
                               host=host, load=sample["cpu_load"])
        else:
            self.tracer.record(self.env.now, "gm:suppress", self.address,
                               host=host, load=sample["cpu_load"])

    def _flush_updates(self, _arg=None) -> None:
        """Ship the tick's forwarded samples as one batched update."""
        self._flush_scheduled = False
        samples, self._pending_updates = self._pending_updates, []
        if not samples:
            return
        self.network.send(self.address, self.site_manager_addr,
                          WORKLOAD_UPDATE, payload={"samples": samples},
                          size_bytes=64.0 * len(samples))
        if self.obs.enabled:
            self.obs.metrics.counter(
                "gm_update_batches_total",
                help="coalesced workload-update batches shipped").inc(
                    group=self.group)

    # -- echo / failure detection -----------------------------------------
    def _echo_loop(self):
        while True:
            yield self.env.timeout(self.echo_period_s)
            self.stats.echo_rounds += 1
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "gm_echo_rounds_total",
                    help="echo rounds started, by group").inc(
                        group=self.group)
            self._echo_seq += 1
            self._replied = set()
            sent_at = self.env.now
            self._round_sent_at = sent_at
            # the per-round heartbeat fan-out is the hottest periodic
            # send in the system: batch it (one heap entry per delay run)
            self.network.send_batch(
                self.address,
                [f"{host}/monitor" for host in self.member_hosts],
                ECHO_REQUEST, payload=self._echo_seq, size_bytes=32)
            yield self.env.timeout(self.echo_timeout_s)
            self._evaluate_round(sent_at)

    def _on_echo_reply(self, msg) -> None:
        if msg.payload.get("echo_seq") == self._echo_seq:
            host = msg.payload["host"]
            self._replied.add(host)
            # round-trip: echo-request send time to reply arrival; this is
            # the "network parameters ... within a group" measurement.
            rtt = self.env.now - self._round_sent_at
            self.stats.rtt_samples.setdefault(host, []).append(rtt)
            obs = self.obs
            if obs.enabled:
                obs.metrics.histogram(
                    "gm_echo_rtt_seconds",
                    help="intra-group echo round-trip times").observe(
                        rtt, host=host)

    def _evaluate_round(self, _sent_at: float) -> None:
        obs = self.obs
        for host in self.member_hosts:
            if host in self._replied:
                self._misses[host] = 0
                if host in self._marked_down:
                    # the machine answered again: recovery
                    self._marked_down.discard(host)
                    self.stats.recoveries_detected += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "gm_liveness_events_total",
                            help="echo-inferred host state changes").inc(
                                host=host, kind="recovery")
                    self.network.send(self.address, self.site_manager_addr,
                                      HOST_UP, payload={"host": host,
                                                        "time": self.env.now},
                                      size_bytes=48)
                    self.tracer.record(self.env.now, "gm:host-up",
                                       self.address, host=host)
            else:
                self._misses[host] += 1
                if self._misses[host] >= self.miss_limit and \
                        host not in self._marked_down:
                    self._marked_down.add(host)
                    self.stats.failures_detected += 1
                    if obs.enabled:
                        obs.metrics.counter(
                            "gm_liveness_events_total",
                            help="echo-inferred host state changes").inc(
                                host=host, kind="failure")
                    self.network.send(self.address, self.site_manager_addr,
                                      HOST_DOWN, payload={"host": host,
                                                          "time": self.env.now},
                                      size_bytes=48)
                    self.tracer.record(self.env.now, "gm:host-down",
                                       self.address, host=host)

    # -- allocation distribution -------------------------------------------
    def _on_allocation(self, msg) -> None:
        """Forward the related RAT portion to each assigned machine."""
        payload = msg.payload
        portions: dict[str, list] = payload["portions"]
        dsts: list[str] = []
        payloads: list[dict] = []
        sizes: list[float] = []
        for host, entries in portions.items():
            dsts.append(f"{host}/appctl")
            payloads.append({"application": payload["application"],
                             "execution_id": payload["execution_id"],
                             "entries": entries,
                             "coordinator": payload["coordinator"]})
            sizes.append(256 + 128 * len(entries))
        if dsts:
            self.network.send_batch(self.address, dsts, EXECUTION_REQUEST,
                                    payloads=payloads, sizes=sizes)

    def stop(self) -> None:
        """Terminate the daemon's processes (simulation teardown)."""
        for proc in (self._inbox_proc, self._echo_proc):
            if proc.is_alive:
                proc.interrupt("stop")
