"""``repro.federation`` — elastic membership for the VDCE federation.

Sites are not a fixed construction-time set: they join, leave, get cut
off by WAN faults, and come back.  This package supplies the
control-plane pieces the facade (``VDCE.enable_membership`` /
``site_join`` / ``site_leave``) wires together:

* :class:`~repro.federation.membership.MembershipDaemon` — one per
  site server: batched heartbeats to every peer, deterministic
  suspicion, the member → quarantined → member (rejoin) / left state
  machine, and a canonical-JSON membership ledger;
* :class:`~repro.federation.membership.Federation` — the aggregated
  view schedulers and admission control consult (usable peers, the
  quarantine filter);
* :class:`~repro.federation.catchup.DirectorySync` — the
  delta-cursor/snapshot directory transfer a rejoining or joining site
  uses to converge its user/tenant directory (raw rows, digest-checked).

See ``docs/federation.md``.
"""

from repro.federation.catchup import DIRECTORY_KINDS, DirectorySync
from repro.federation.membership import (
    Federation,
    MembershipConfig,
    MembershipDaemon,
    PeerView,
)

__all__ = [
    "DIRECTORY_KINDS",
    "DirectorySync",
    "Federation",
    "MembershipConfig",
    "MembershipDaemon",
    "PeerView",
]
