"""Directory catch-up: how a rejoining site converges its repository.

The federation-shared portion of a site repository is the *directory* —
user accounts and tenant records (the other three databases hold
site-local measurements that legitimately diverge between sites).  A
site cut off by a WAN partition misses directory mutations; when it
rejoins, its membership daemon pulls what it missed from the first peer
it hears again.

The transfer piggybacks on the repository's existing
:class:`~repro.repository.delta.DeltaTracker` journal: every heartbeat
carries the sender's journal ``generation``, so each side always knows
the last generation it observed of every peer.  On rejoin that stamp
becomes the catch-up cursor:

* ``events_since(cursor)`` still covered by the journal → **delta
  mode**: only the dirtied user/tenant names travel, each resolved to
  its *current* raw row (or ``None`` for a removal) — the journal is an
  index of what changed, never the payload;
* the journal compacted past the cursor (or there is no cursor — a
  brand-new joiner) → **snapshot mode**: the full raw directory
  travels, applied as an additive merge (rows the receiver holds that
  the sender lacks are kept: they flow the other way when the peer's
  own daemon performs its symmetric pull; removals propagate through
  delta mode).

Rows move raw (salt + hash included) and apply idempotently through
:meth:`~repro.repository.user_accounts.UserAccountsDB.apply_user_row`,
so directories converge to byte-identical state —
:meth:`DirectorySync.digest` is the convergence check.
"""

from __future__ import annotations

from typing import Any

from repro.repository.site_repository import SiteRepository

#: the delta-journal kinds that describe directory mutations
DIRECTORY_KINDS = frozenset(
    {"user", "user-removed", "tenant", "tenant-removed"})


class DirectorySync:
    """Per-site directory transfer endpoint (serve and apply sides)."""

    def __init__(self, repository: SiteRepository) -> None:
        self.repository = repository

    # -- cursor / digest ----------------------------------------------------
    def generation(self) -> int:
        """The delta-journal stamp heartbeats advertise (the cursor)."""
        return self.repository.delta.generation

    def digest(self) -> str:
        """Canonical directory digest (see UserAccountsDB.directory_digest)."""
        return self.repository.user_accounts.directory_digest()

    # -- serving side -------------------------------------------------------
    def build_reply(self, cursor: int | None) -> dict[str, Any]:
        """The SYNC_REPLY payload for a peer whose view stops at *cursor*."""
        accounts = self.repository.user_accounts
        events = (self.repository.delta.events_since(cursor)
                  if cursor is not None else None)
        if events is None:
            return {"mode": "snapshot", "generation": self.generation(),
                    "directory": accounts.export_rows()}
        dirty_users = sorted({a for kind, a, _b in events
                              if kind in ("user", "user-removed")})
        dirty_tenants = sorted({a for kind, a, _b in events
                                if kind in ("tenant", "tenant-removed")})
        return {
            "mode": "delta", "generation": self.generation(),
            "users": {name: accounts.user_row(name)
                      for name in dirty_users},
            "tenants": {name: accounts.tenant_row(name)
                        for name in dirty_tenants},
        }

    @staticmethod
    def reply_size_bytes(reply: dict[str, Any]) -> float:
        """Transfer-model size of a reply: per-row cost plus an envelope."""
        if reply["mode"] == "snapshot":
            rows = (len(reply["directory"]["users"])
                    + len(reply["directory"]["tenants"]))
        else:
            rows = len(reply["users"]) + len(reply["tenants"])
        return 128.0 + 96.0 * rows

    # -- applying side ------------------------------------------------------
    def apply_reply(self, reply: dict[str, Any]) -> int:
        """Fold a SYNC_REPLY into the local directory; rows changed.

        Tenants apply before users so a transferred account never lands
        ahead of the tenant record it references.  Application is
        idempotent — overlapping catch-ups from several rejoined peers
        settle on the same bytes.
        """
        accounts = self.repository.user_accounts
        applied = 0
        if reply["mode"] == "snapshot":
            directory = reply["directory"]
            for name in sorted(directory["tenants"]):
                if accounts.apply_tenant_row(name,
                                             directory["tenants"][name]):
                    applied += 1
            for name in sorted(directory["users"]):
                if accounts.apply_user_row(name, directory["users"][name]):
                    applied += 1
            return applied
        for name in sorted(reply["tenants"]):
            if accounts.apply_tenant_row(name, reply["tenants"][name]):
                applied += 1
        for name in sorted(reply["users"]):
            if accounts.apply_user_row(name, reply["users"][name]):
                applied += 1
        return applied
