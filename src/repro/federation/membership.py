"""Federation-level liveness: heartbeats, suspicion, join/leave.

One :class:`MembershipDaemon` runs on every site's server machine (the
service address ``<site>/server/membership``) and maintains that site's
*view* of every peer:

``member`` ── missed heartbeats ──▶ ``quarantined`` ── heartbeat ──▶
``member`` (a *rejoin*), or ── SITE_LEAVE ──▶ ``left`` (terminal).

The protocol is a single periodic loop per daemon — one batched
heartbeat fan-out to the sorted peer list, then one suspicion sweep in
sorted order — so membership costs O(sites) work per beat, entirely off
the scheduling hot path, and every transition happens at a
deterministic simulated instant.  Views are **per-observer** by design:
during a partition each side quarantines the other, both shed the
unreachable capacity, and both reconcile on rejoin (duplicate task
completions are absorbed by the existing idempotency keys).

Heartbeats carry the sender's directory journal ``generation``
(:class:`~repro.federation.catchup.DirectorySync`), so on rejoin the
daemon knows exactly where its view of the peer's directory stops and
pulls the missed mutations with a SYNC_REQUEST — delta when the peer's
journal still covers the cursor, full snapshot otherwise.

Every transition is appended to a ledger whose canonical JSON
(:meth:`MembershipDaemon.ledger_json`) is byte-identical across
same-seed runs — the determinism contract the chaos partition suite
asserts — and write-ahead-logged through the site's replication shipper
when failover is enabled (``MEMBERSHIP_KINDS`` in
:mod:`repro.recovery.wal`).
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.federation.catchup import DirectorySync
from repro.net import (
    SITE_HEARTBEAT,
    SITE_JOIN,
    SITE_LEAVE,
    SYNC_REPLY,
    SYNC_REQUEST,
)
from repro.net.network import Network
from repro.obs import OBS_OFF, Observability
from repro.resources.site import Site
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError

#: peer statuses (the state machine above)
MEMBER = "member"
QUARANTINED = "quarantined"
LEFT = "left"


@dataclass(frozen=True)
class MembershipConfig:
    """Timing of the heartbeat/suspicion protocol.

    ``suspect_after_s`` is the silence horizon: a member peer not heard
    from for longer is quarantined at the next beat.  It must exceed the
    beat period by enough slack to absorb WAN latency; the default
    tolerates three lost beats.
    """

    heartbeat_period_s: float = 2.0
    suspect_after_s: float = 6.5
    #: transfer-model size of one heartbeat message
    heartbeat_bytes: float = 64.0

    def __post_init__(self) -> None:
        if self.heartbeat_period_s <= 0:
            raise ConfigurationError("heartbeat_period_s must be positive")
        if self.suspect_after_s <= self.heartbeat_period_s:
            raise ConfigurationError(
                "suspect_after_s must exceed heartbeat_period_s "
                f"({self.suspect_after_s} <= {self.heartbeat_period_s})")


@dataclass
class PeerView:
    """One observer's knowledge of one peer site."""

    name: str
    status: str = MEMBER
    last_heard: float = 0.0
    #: the peer's directory journal generation, as of the last heartbeat
    #: — the catch-up cursor a rejoin uses
    generation: int = 0
    quarantined_at: float | None = None
    span_id: int | None = None


class MembershipDaemon:
    """One site's membership endpoint: beats out, suspicion in."""

    SERVICE = "membership"

    def __init__(self, env: Environment, network: Network, site: Site,
                 sync: DirectorySync,
                 config: MembershipConfig | None = None,
                 tracer: Tracer | None = None,
                 obs: Observability | None = None,
                 wal_log: Callable[[str, dict], None] | None = None,
                 on_quarantine: Callable[[str, str], None] | None = None,
                 on_rejoin: Callable[[str, str], None] | None = None,
                 on_join: Callable[[str, str], None] | None = None,
                 on_leave: Callable[[str, str], None] | None = None) -> None:
        self.env = env
        self.network = network
        self.site = site
        self.sync = sync
        self.config = config or MembershipConfig()
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.wal_log = wal_log
        self.on_quarantine = on_quarantine
        self.on_rejoin = on_rejoin
        self.on_join = on_join
        self.on_leave = on_leave
        self.address = f"{site.name}/server/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        self.peers: dict[str, PeerView] = {}
        #: ordered transition ledger; ledger_json() is the canonical form
        self.events: list[dict[str, Any]] = []
        self._was_dark = False
        self._beat_proc = env.process(
            self._beat_loop(), name=f"membership:{site.name}")
        self._inbox_proc = env.process(
            self._inbox_loop(), name=f"membership-inbox:{site.name}")

    # -- peer bootstrap -----------------------------------------------------
    def seed_peer(self, name: str, generation: int = 0) -> PeerView:
        """Register a peer known at enable/join time (status member)."""
        if name == self.site.name:
            raise ConfigurationError(
                f"site {name!r} cannot be its own membership peer")
        view = PeerView(name=name, last_heard=self.env.now,
                        generation=generation)
        self.peers[name] = view
        return view

    # -- aggregate views ----------------------------------------------------
    def is_usable(self, peer: str) -> bool:
        """May *peer* be scheduled onto, from this site's viewpoint?"""
        view = self.peers.get(peer)
        return view is not None and view.status == MEMBER

    def usable_sites(self) -> list[str]:
        """Member peers, sorted (self excluded — always usable locally)."""
        return sorted(name for name, view in self.peers.items()
                      if view.status == MEMBER)

    def quarantined_sites(self) -> list[str]:
        return sorted(name for name, view in self.peers.items()
                      if view.status == QUARANTINED)

    # -- the one periodic loop ---------------------------------------------
    def _beat_loop(self):
        period = self.config.heartbeat_period_s
        while True:
            yield self.env.timeout(period)
            if not self.site.server_is_up():
                # a dark server neither beats nor judges its peers
                self._was_dark = True
                continue
            now = self.env.now
            if self._was_dark:
                # fresh grace after our own outage: stale silence from
                # the dark window is our fault, not the peers'
                self._was_dark = False
                for name in sorted(self.peers):
                    self.peers[name].last_heard = now
            targets = [name for name in sorted(self.peers)
                       if self.peers[name].status != LEFT]
            if targets:
                self.network.send_batch(
                    self.address,
                    [f"{peer}/server/{self.SERVICE}" for peer in targets],
                    SITE_HEARTBEAT,
                    payload={"site": self.site.name,
                             "generation": self.sync.generation()},
                    size_bytes=self.config.heartbeat_bytes)
            horizon = now - self.config.suspect_after_s
            for name in sorted(self.peers):
                view = self.peers[name]
                if view.status == MEMBER and view.last_heard < horizon:
                    self._quarantine(view)

    # -- inbox --------------------------------------------------------------
    def _inbox_loop(self):
        while True:
            msg = yield self.mailbox.get()
            handler = {
                SITE_HEARTBEAT: self._on_heartbeat,
                SITE_JOIN: self._on_site_join,
                SITE_LEAVE: self._on_site_leave,
                SYNC_REQUEST: self._on_sync_request,
                SYNC_REPLY: self._on_sync_reply,
            }.get(msg.kind)
            if handler is not None:
                handler(msg)

    def _on_heartbeat(self, msg) -> None:
        payload = msg.payload
        peer = payload["site"]
        view = self.peers.get(peer)
        if view is None:
            # a joiner whose SITE_JOIN announcement we missed
            view = self._admit(peer, via="heartbeat")
        elif view.status == LEFT:
            return  # stale in-flight beat from a departed site
        elif view.status == QUARANTINED:
            self._rejoin(view)
        view.last_heard = self.env.now
        view.generation = payload["generation"]

    def _on_site_join(self, msg) -> None:
        peer = msg.payload["site"]
        view = self.peers.get(peer)
        if view is None:
            view = self._admit(peer, via="announce")
        elif view.status == LEFT:
            # departed site coming back: treated as a fresh join
            view.status = MEMBER
            self._transition("join", peer, via="announce")
            if self.on_join is not None:
                self.on_join(self.site.name, peer)
        elif view.status == QUARANTINED:
            self._rejoin(view)
        view.last_heard = self.env.now
        view.generation = msg.payload["generation"]

    def _on_site_leave(self, msg) -> None:
        peer = msg.payload["site"]
        view = self.peers.get(peer)
        if view is None or view.status == LEFT:
            return
        if view.span_id is not None and self.obs.enabled:
            self.obs.spans.end(view.span_id, self.env.now, outcome="left")
            view.span_id = None
        view.status = LEFT
        self._transition("leave", peer)
        if self.on_leave is not None:
            self.on_leave(self.site.name, peer)

    def _on_sync_request(self, msg) -> None:
        reply = self.sync.build_reply(msg.payload["cursor"])
        reply["site"] = self.site.name
        self.network.send(self.address, msg.src, SYNC_REPLY,
                          payload=reply,
                          size_bytes=DirectorySync.reply_size_bytes(reply))
        self._transition("sync-served", msg.payload["site"],
                         mode=reply["mode"])

    def _on_sync_reply(self, msg) -> None:
        payload = msg.payload
        applied = self.sync.apply_reply(payload)
        self._transition("catch-up", payload["site"],
                         mode=payload["mode"], applied=applied)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "membership_catchup_rows_total",
                help="directory rows applied by catch-up transfers").inc(
                    applied, site=self.site.name, mode=payload["mode"])

    # -- transitions --------------------------------------------------------
    def _transition(self, event: str, peer: str, **detail: Any) -> None:
        """Ledger + tracer + WAL + counter for one membership event."""
        self.events.append({"t": self.env.now, "site": self.site.name,
                            "event": event, "peer": peer, **detail})
        self.tracer.record(self.env.now, f"membership:{event}",
                           self.address, peer=peer, **detail)
        if self.wal_log is not None and event in ("join", "leave",
                                                  "quarantine", "rejoin"):
            self.wal_log(f"site-{event}",
                         {"site": self.site.name, "peer": peer,
                          "time": self.env.now})
        if self.obs.enabled:
            self.obs.metrics.counter(
                "membership_transitions_total",
                help="membership state transitions observed").inc(
                    site=self.site.name, event=event)

    def _admit(self, peer: str, via: str) -> PeerView:
        view = self.seed_peer(peer)
        self._transition("join", peer, via=via)
        if self.on_join is not None:
            self.on_join(self.site.name, peer)
        return view

    def _quarantine(self, view: PeerView) -> None:
        view.status = QUARANTINED
        view.quarantined_at = self.env.now
        if self.obs.enabled:
            view.span_id = self.obs.spans.begin(
                f"quarantine:{view.name}", "membership", self.address,
                self.env.now, peer=view.name)
        self._transition("quarantine", view.name)
        if self.on_quarantine is not None:
            self.on_quarantine(self.site.name, view.name)

    def _rejoin(self, view: PeerView) -> None:
        cursor = view.generation
        view.status = MEMBER
        view.quarantined_at = None
        if view.span_id is not None and self.obs.enabled:
            self.obs.spans.end(view.span_id, self.env.now,
                               outcome="rejoined")
            view.span_id = None
        self._transition("rejoin", view.name, cursor=cursor)
        # pull the directory mutations the partition made us miss
        self.network.send(self.address,
                          f"{view.name}/server/{self.SERVICE}",
                          SYNC_REQUEST,
                          payload={"site": self.site.name, "cursor": cursor},
                          size_bytes=64)
        if self.on_rejoin is not None:
            self.on_rejoin(self.site.name, view.name)

    # -- explicit elastic operations (driven by the facade) ------------------
    def announce_join(self) -> None:
        """Multicast SITE_JOIN to every seeded peer (joiner side)."""
        targets = [name for name in sorted(self.peers)
                   if self.peers[name].status != LEFT]
        if targets:
            self.network.send_batch(
                self.address,
                [f"{peer}/server/{self.SERVICE}" for peer in targets],
                SITE_JOIN,
                payload={"site": self.site.name,
                         "generation": self.sync.generation()},
                size_bytes=64)
        self._transition("announce-join", self.site.name)

    def announce_leave(self) -> None:
        """Multicast SITE_LEAVE to every peer (leaver side, after drain)."""
        targets = [name for name in sorted(self.peers)
                   if self.peers[name].status != LEFT]
        if targets:
            self.network.send_batch(
                self.address,
                [f"{peer}/server/{self.SERVICE}" for peer in targets],
                SITE_LEAVE,
                payload={"site": self.site.name},
                size_bytes=64)
        self._transition("announce-leave", self.site.name)

    def request_snapshot(self, sponsor: str) -> None:
        """Ask *sponsor* for a full directory snapshot (joiner bootstrap)."""
        self.network.send(self.address,
                          f"{sponsor}/server/{self.SERVICE}",
                          SYNC_REQUEST,
                          payload={"site": self.site.name, "cursor": None},
                          size_bytes=64)

    # -- ledger -------------------------------------------------------------
    def ledger_json(self) -> str:
        """Canonical JSON of this site's membership ledger."""
        return json.dumps(self.events, sort_keys=True,
                          separators=(",", ":"))

    def stop(self) -> None:
        """Terminate both daemon processes (teardown / site_leave)."""
        if self._beat_proc.is_alive:
            self._beat_proc.interrupt("stop")
        if self._inbox_proc.is_alive:
            self._inbox_proc.interrupt("stop")


class Federation:
    """The facade-level aggregate over every site's membership daemon."""

    def __init__(self, config: MembershipConfig | None = None) -> None:
        self.config = config or MembershipConfig()
        self.daemons: dict[str, MembershipDaemon] = {}

    def add(self, daemon: MembershipDaemon) -> None:
        self.daemons[daemon.site.name] = daemon

    def remove(self, site: str) -> None:
        self.daemons.pop(site, None)

    def daemon(self, site: str) -> MembershipDaemon:
        try:
            return self.daemons[site]
        except KeyError:
            raise ConfigurationError(
                f"no membership daemon for site {site!r}") from None

    def is_usable(self, observer: str, peer: str) -> bool:
        """Is *peer* schedulable from *observer*'s point of view?"""
        if observer == peer:
            return True
        return self.daemon(observer).is_usable(peer)

    def usable_filter(self, observer: str) -> Callable[[str], bool]:
        """The per-observer predicate schedulers exclude sites with."""
        return lambda peer: self.is_usable(observer, peer)

    def quarantined(self, observer: str) -> list[str]:
        return self.daemon(observer).quarantined_sites()

    def ledger_json(self) -> str:
        """Canonical JSON of every site's ledger, keyed by site name."""
        return json.dumps(
            {site: self.daemons[site].events
             for site in sorted(self.daemons)},
            sort_keys=True, separators=(",", ":"))
