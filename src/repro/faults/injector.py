"""Deterministic fault injection over the simulated network and hosts.

The :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a live environment: host crashes and site outages are scheduled
as simulated processes that flip ``host.up`` (exactly like the legacy
:class:`~repro.resources.failures.FailureInjector`, so the Group Manager
echo pipeline detects them), while windowed network faults install a hook
into :meth:`repro.net.network.Network.send` that can drop, duplicate or
delay individual messages.

Every injected fault is recorded twice: as a ``fault:*`` record in the
shared :class:`~repro.simcore.trace.Tracer` (for post-mortem analysis via
:mod:`repro.viz.postmortem`) and as a row in :attr:`FaultInjector.events`
whose canonical JSON form (:meth:`log_json`) is byte-identical across
runs with the same seed — the determinism contract the chaos harness
asserts.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.faults.plan import (
    FaultPlan,
    HostCrash,
    LinkDegradation,
    LinkDegrade,
    LinkDown,
    LinkFlap,
    LinkPartition,
    MessageFaults,
    ServerCrash,
    SiteOutage,
)
from repro.net.message import Message
from repro.net.network import FaultAction, Network, split_address
from repro.resources.host import Host
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError


class FaultInjector:
    """Executes fault plans; the single source of injected-fault truth."""

    #: actor name used for every ``fault:*`` trace record
    ACTOR = "faults"

    def __init__(self, env: Environment, network: Network,
                 tracer: Tracer | None = None,
                 rng: np.random.Generator | None = None,
                 host_resolver: Callable[[str], Host] | None = None,
                 site_hosts: Callable[[str], Iterable[Host]] | None = None,
                 site_resolver: Callable[[str], Any] | None = None,
                 ) -> None:
        self.env = env
        self.network = network
        self.tracer = tracer or Tracer(enabled=False)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._host_resolver = host_resolver
        self._site_hosts = site_hosts
        self._site_resolver = site_resolver
        self.plans: list[FaultPlan] = []
        #: canonical log of every fault actually injected (see log_json)
        self.events: list[dict[str, Any]] = []
        self._windows: list[Any] = []
        self._hook_installed = False

    # -- installation -----------------------------------------------------
    def install(self, plan: FaultPlan) -> "FaultInjector":
        """Schedule a plan's faults; may be called any number of times.

        Timed host/site faults must lie in the simulated future; windowed
        network faults are evaluated against the clock, so windows that
        already started simply apply for their remainder.
        """
        for spec in plan.host_faults():
            if spec.at < self.env.now:
                raise ConfigurationError(
                    f"cannot schedule {spec.kind} in the past "
                    f"({spec.at} < {self.env.now})")
        for spec in plan.link_faults():
            if spec.at < self.env.now:
                raise ConfigurationError(
                    f"cannot schedule {spec.kind} in the past "
                    f"({spec.at} < {self.env.now})")
        self.plans.append(plan)
        for spec in plan.events:
            if isinstance(spec, HostCrash):
                self._schedule_host_crash(spec)
            elif isinstance(spec, SiteOutage):
                self._schedule_site_outage(spec)
            elif isinstance(spec, ServerCrash):
                self._schedule_server_crash(spec)
            elif isinstance(spec, LinkDown):
                self._schedule_link_down(spec)
            elif isinstance(spec, LinkFlap):
                self._schedule_link_flap(spec)
            elif isinstance(spec, LinkDegrade):
                self._schedule_link_degrade(spec)
            else:
                self._windows.append(spec)
        if self._windows and not self._hook_installed:
            self.network.fault_hook = self._on_message
            self._hook_installed = True
        return self

    # -- bookkeeping -------------------------------------------------------
    def _record(self, fault: str, **detail: Any) -> None:
        self.events.append({"t": self.env.now, "fault": fault, **detail})
        self.tracer.record(self.env.now, f"fault:{fault}", self.ACTOR,
                           **detail)

    def event_log(self) -> list[dict[str, Any]]:
        """A copy of the injected-fault event rows, in injection order."""
        return [dict(row) for row in self.events]

    def log_json(self) -> str:
        """Canonical JSON of the event log.

        Byte-identical across runs with the same root seed — the
        determinism contract chaos tests assert (docs/faults.md).
        """
        return json.dumps(self.events, sort_keys=True,
                          separators=(",", ":"))

    def counts(self) -> dict[str, int]:
        """Histogram of injected faults per fault kind."""
        out: dict[str, int] = {}
        for row in self.events:
            out[row["fault"]] = out.get(row["fault"], 0) + 1
        return out

    # -- host/site state faults ---------------------------------------------
    def _resolve(self, address: str) -> Host:
        if self._host_resolver is None:
            raise ConfigurationError(
                "injector has no host resolver; host/site faults need one "
                "(the VDCE facade wires it via apply_fault_plan)")
        return self._host_resolver(address)

    def _schedule_host_crash(self, spec: HostCrash) -> None:
        host = self._resolve(spec.host)

        def proc(env):
            yield env.timeout(spec.at - env.now)
            host.up = False
            self._record("host-down", host=host.address)
            if spec.recover_after is not None:
                yield env.timeout(spec.recover_after)
                host.up = True
                self._record("host-up", host=host.address)

        self.env.process(proc(self.env), name=f"fault:crash:{spec.host}")

    def _schedule_site_outage(self, spec: SiteOutage) -> None:
        if self._site_hosts is None:
            raise ConfigurationError(
                "injector has no site resolver; site outages need one "
                "(the VDCE facade wires it via apply_fault_plan)")
        hosts = list(self._site_hosts(spec.site))

        def proc(env):
            yield env.timeout(spec.at - env.now)
            for host in hosts:
                host.up = False
            self._record("site-down", site=spec.site, hosts=len(hosts))
            if spec.recover_after is not None:
                yield env.timeout(spec.recover_after)
                for host in hosts:
                    host.up = True
                self._record("site-up", site=spec.site, hosts=len(hosts))

        self.env.process(proc(self.env), name=f"fault:outage:{spec.site}")

    def _schedule_server_crash(self, spec: ServerCrash) -> None:
        if self._site_resolver is None:
            raise ConfigurationError(
                "injector has no site resolver; server crashes need one "
                "(the VDCE facade wires it via apply_fault_plan)")
        site = self._site_resolver(spec.site)

        def proc(env):
            yield env.timeout(spec.at - env.now)
            site.server_up = False
            self._record("server-down", site=spec.site)
            if spec.recover_after is not None:
                yield env.timeout(spec.recover_after)
                # the dedicated machine comes back; if a failover already
                # moved the server role onto a standby it stays there
                site.server_up = True
                self._record("server-up", site=spec.site,
                             role_moved=site.server_role_host is not None)

        self.env.process(proc(self.env), name=f"fault:server:{spec.site}")

    # -- topology-level link faults ------------------------------------------
    def _link_label(self, a: str, b: str) -> str:
        return "~".join(sorted((a, b)))

    def _link_gone(self, a: str, b: str) -> bool:
        """A link-fault step whose edge vanished (a ``site_leave`` took
        the endpoint away mid-plan) is a deterministic no-op, not a
        crash — the departure already severed the link harder than any
        fault could."""
        if self.network.topology.has_link(a, b):
            return False
        self._record("link-fault-skipped", link=self._link_label(a, b),
                     reason="link-removed")
        return True

    def _schedule_link_down(self, spec: LinkDown) -> None:
        topo = self.network.topology
        topo.link(spec.site_a, spec.site_b)  # validate the edge exists now

        def proc(env):
            yield env.timeout(spec.at - env.now)
            if self._link_gone(spec.site_a, spec.site_b):
                return
            topo.set_link_up(spec.site_a, spec.site_b, False)
            self._record("link-down",
                         link=self._link_label(spec.site_a, spec.site_b))
            if spec.restore_after is not None:
                yield env.timeout(spec.restore_after)
                if self._link_gone(spec.site_a, spec.site_b):
                    return
                topo.set_link_up(spec.site_a, spec.site_b, True)
                self._record("link-up",
                             link=self._link_label(spec.site_a, spec.site_b))

        self.env.process(
            proc(self.env),
            name=f"fault:linkdown:{self._link_label(spec.site_a, spec.site_b)}")

    def _schedule_link_flap(self, spec: LinkFlap) -> None:
        topo = self.network.topology
        topo.link(spec.site_a, spec.site_b)
        label = self._link_label(spec.site_a, spec.site_b)

        def proc(env):
            yield env.timeout(spec.at - env.now)
            for cycle in range(spec.cycles):
                if self._link_gone(spec.site_a, spec.site_b):
                    return
                topo.set_link_up(spec.site_a, spec.site_b, False)
                self._record("link-down", link=label, cycle=cycle + 1)
                yield env.timeout(spec.down_s)
                if self._link_gone(spec.site_a, spec.site_b):
                    return
                topo.set_link_up(spec.site_a, spec.site_b, True)
                self._record("link-up", link=label, cycle=cycle + 1)
                if cycle + 1 < spec.cycles:
                    yield env.timeout(spec.up_s)

        self.env.process(proc(self.env), name=f"fault:linkflap:{label}")

    def _schedule_link_degrade(self, spec: LinkDegrade) -> None:
        topo = self.network.topology
        topo.link(spec.site_a, spec.site_b)
        label = self._link_label(spec.site_a, spec.site_b)

        def proc(env):
            yield env.timeout(spec.at - env.now)
            if self._link_gone(spec.site_a, spec.site_b):
                return
            # capture the spec at degrade time, not install time: an
            # earlier fault or schedule step may have rewritten it
            original = topo.link(spec.site_a, spec.site_b)
            degraded = type(original)(
                latency_s=original.latency_s * spec.latency_factor,
                bandwidth_bps=original.bandwidth_bps
                * spec.bandwidth_factor)
            topo.set_link(spec.site_a, spec.site_b, degraded)
            self._record("link-degrade", link=label,
                         bandwidth_factor=spec.bandwidth_factor,
                         latency_factor=spec.latency_factor)
            yield env.timeout(spec.duration)
            if self._link_gone(spec.site_a, spec.site_b):
                return
            topo.set_link(spec.site_a, spec.site_b, original)
            self._record("link-restore", link=label)

        self.env.process(proc(self.env), name=f"fault:linkdegrade:{label}")

    # -- the Network.send hook ----------------------------------------------
    def _on_message(self, msg: Message) -> FaultAction | None:
        """Per-message fault verdict; draws RNG in deterministic order."""
        now = self.env.now
        src_site, _ = split_address(msg.src)
        dst_site, _ = split_address(msg.dst)
        extra_delay = 0.0
        multiplier = 1.0
        duplicates = 0
        touched = False
        for spec in self._windows:
            if not spec.active(now):
                continue
            if isinstance(spec, LinkPartition):
                if spec.severs(src_site, dst_site):
                    self._record("partition-drop", kind=msg.kind,
                                 src=msg.src, dst=msg.dst,
                                 link="~".join(sorted((spec.site_a,
                                                       spec.site_b))))
                    return FaultAction(drop=True)
            elif isinstance(spec, LinkDegradation):
                if not spec.severs(src_site, dst_site):
                    continue
                if spec.drop_prob and self.rng.random() < spec.drop_prob:
                    self._record("msg-drop", kind=msg.kind, src=msg.src,
                                 dst=msg.dst, cause="degradation")
                    return FaultAction(drop=True)
                multiplier *= spec.delay_factor
                touched = True
                self._record("msg-delay", kind=msg.kind, src=msg.src,
                             dst=msg.dst, factor=spec.delay_factor)
            else:  # MessageFaults
                if not spec.matches(msg):
                    continue
                if spec.drop_prob and self.rng.random() < spec.drop_prob:
                    self._record("msg-drop", kind=msg.kind, src=msg.src,
                                 dst=msg.dst, cause="message-faults")
                    return FaultAction(drop=True)
                if spec.dup_prob and self.rng.random() < spec.dup_prob:
                    duplicates += 1
                    touched = True
                    self._record("msg-dup", kind=msg.kind, src=msg.src,
                                 dst=msg.dst)
                if spec.delay_prob and self.rng.random() < spec.delay_prob:
                    extra_delay += spec.delay_s
                    touched = True
                    self._record("msg-delay", kind=msg.kind, src=msg.src,
                                 dst=msg.dst, delay_s=spec.delay_s)
        if not touched:
            return None
        return FaultAction(extra_delay_s=extra_delay,
                           delay_multiplier=multiplier,
                           duplicates=duplicates)
