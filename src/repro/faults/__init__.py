"""Deterministic fault injection for the VDCE reproduction.

Declare faults with :class:`FaultPlan` (or generate a seeded random plan
via :meth:`FaultPlan.random`), then execute them against a live
federation with :class:`FaultInjector` — usually through
``VDCE.apply_fault_plan``.  See ``docs/faults.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    SPEC_TYPES,
    FaultPlan,
    HostCrash,
    LinkDegradation,
    LinkDegrade,
    LinkDown,
    LinkFlap,
    LinkPartition,
    MessageFaults,
    ServerCrash,
    SiteOutage,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "HostCrash",
    "ServerCrash",
    "SiteOutage",
    "LinkPartition",
    "LinkDegradation",
    "LinkDown",
    "LinkFlap",
    "LinkDegrade",
    "MessageFaults",
    "SPEC_TYPES",
]
