"""Wide-area / site network topology.

The paper's VDCE spans geographically distributed sites (Figure 1: e.g.
the Syracuse and Rome sites on the NYNET ATM testbed) whose hosts form
groups on LANs.  This module models that three-level structure — WAN
links between sites, a LAN per group, loopback within a host — and
computes per-transfer latency/transfer-time, which the Site Scheduler
Algorithm's ``transfer_time(S_parent, S_j)`` term consumes directly.

Links are **mutable at runtime**: :meth:`Topology.set_link` rewrites a
link's latency/bandwidth mid-run, :meth:`Topology.set_link_up` takes a
link administratively down (and back up), and
:meth:`Topology.schedule_link` installs a time-varying per-pair
profile — a sorted sequence of ``(at, LinkSpec | None)`` steps applied
lazily against the topology's sim-time ``clock`` (``None`` = link
down for that interval).  Every mutation bumps :attr:`Topology.version`
and invalidates the per-pair path cache, so cached transfer costs can
never go stale (the INV001 contract).  When no path survives between
two sites the pair is *unreachable*: :meth:`transfer_time` raises and
:meth:`reachable` returns ``False`` — this is how WAN partitions
emerge from link faults rather than being scripted.

All sizes are bytes, times are seconds, bandwidths are bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import networkx as nx

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class LinkSpec:
    """A physical network link: one-way latency plus bandwidth."""

    latency_s: float
    bandwidth_bps: float  # bytes per second

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"negative latency: {self.latency_s}")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive: {self.bandwidth_bps}")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move *nbytes* across this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bps


#: Representative 1997-era link presets (the paper's NYNET is ATM OC-3).
ATM_OC3 = LinkSpec(latency_s=0.005, bandwidth_bps=155e6 / 8)
ETHERNET_10 = LinkSpec(latency_s=0.001, bandwidth_bps=10e6 / 8)
ETHERNET_100 = LinkSpec(latency_s=0.0005, bandwidth_bps=100e6 / 8)
T1_WAN = LinkSpec(latency_s=0.020, bandwidth_bps=1.544e6 / 8)
LOOPBACK = LinkSpec(latency_s=1e-5, bandwidth_bps=1e9)


#: Sentinel distinguishing "pair not cached" from "cached as unreachable".
_UNSET: tuple[float, float] | None = (-1.0, -1.0)


def _edge_weight(u: str, v: str, data: dict) -> float | None:
    """Dijkstra weight: per-hop latency; ``None`` hides down links."""
    if not data.get("up", True):
        return None
    link: LinkSpec = data["link"]
    return link.latency_s


class Topology:
    """Sites connected by WAN links; each site has a LAN spec.

    The WAN is an undirected weighted graph over site names.  Transfers
    between sites follow the minimum-latency path over *up* links; the
    path's transfer time is the sum of per-hop latencies plus the size
    divided by the bottleneck (minimum) bandwidth along the path.
    Transfers inside a site use the site's LAN spec; transfers inside a
    host are loopback.

    Cache discipline: ``_pair_cache`` memoises the
    ``(latency sum, bottleneck bandwidth)`` pair per *ordered*
    (src, dst) — shortest-path tie-breaks are not guaranteed symmetric
    and the cache must reproduce the uncached per-call result exactly.
    Unreachable pairs are negatively cached as ``None`` so a partition
    does not re-run Dijkstra on every send.  *Every* link mutation
    (``connect``/``set_link``/``set_link_up``/a due schedule step)
    clears the cache and bumps :attr:`version`; consumers holding
    derived cost views can cheap-check the stamp.
    """

    def __init__(self, lan: LinkSpec = ETHERNET_10,
                 loopback: LinkSpec = LOOPBACK,
                 clock: Callable[[], float] | None = None) -> None:
        self._graph = nx.Graph()
        self._lan: dict[str, LinkSpec] = {}
        self._default_lan = lan
        self._loopback = loopback
        #: sim-time source for schedule steps; wired by the environment
        self.clock = clock
        self._version = 0
        self._pair_cache: dict[tuple[str, str],
                               tuple[float, float] | None] = {}
        # flattened schedule steps: (at, insertion seq, a, b, spec|None),
        # sorted; _step_idx marks the first not-yet-applied step
        self._steps: list[tuple[float, int, str, str, LinkSpec | None]] = []
        self._step_idx = 0
        self._step_seq = 0

    @property
    def version(self) -> int:
        """Monotone stamp bumped on every link/site mutation (INV001)."""
        return self._version

    def _invalidate(self) -> None:
        self._version += 1
        self._pair_cache.clear()

    # -- construction -----------------------------------------------------
    def add_site(self, site: str, lan: LinkSpec | None = None) -> None:
        """Register a site, optionally with its own LAN characteristics."""
        if site in self._graph:
            raise ConfigurationError(f"site {site!r} already in topology")
        self._graph.add_node(site)
        self._lan[site] = lan or self._default_lan
        self._invalidate()

    def remove_site(self, site: str) -> None:
        """Remove a departed site and every link touching it.

        Pending schedule steps addressing the departed site are dropped
        too — applying them lazily later would dereference a removed
        edge from an unrelated cost query.
        """
        if site not in self._graph:
            raise ConfigurationError(f"unknown site {site!r}")
        self._graph.remove_node(site)
        del self._lan[site]
        tail = [step for step in self._steps[self._step_idx:]
                if site not in (step[2], step[3])]
        del self._steps[self._step_idx:]
        self._steps.extend(tail)
        self._invalidate()

    def connect(self, a: str, b: str, link: LinkSpec = ATM_OC3) -> None:
        """Add a WAN link between sites *a* and *b*."""
        self._check_pair(a, b)
        self._graph.add_edge(a, b, link=link, up=True)
        self._invalidate()

    def _check_pair(self, a: str, b: str) -> None:
        for s in (a, b):
            if s not in self._graph:
                raise ConfigurationError(f"unknown site {s!r}")
        if a == b:
            raise ConfigurationError("cannot connect a site to itself")

    def _edge(self, a: str, b: str) -> dict:
        self._check_pair(a, b)
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise ConfigurationError(f"no WAN link between {a!r} and {b!r}")
        return data

    # -- runtime mutation --------------------------------------------------
    def set_link(self, a: str, b: str, link: LinkSpec) -> None:
        """Rewrite the latency/bandwidth of an existing link mid-run.

        The link's up/down state is preserved.  Unlike :meth:`connect`
        this refuses to create a new edge — mutating a link that was
        never provisioned is almost always a test bug.
        """
        data = self._edge(a, b)
        data["link"] = link
        self._invalidate()

    def set_link_up(self, a: str, b: str, up: bool) -> None:
        """Administratively down (or restore) a WAN link.

        A down link keeps its spec but is invisible to path finding —
        if it was the only route, the site pair becomes unreachable and
        a partition has emerged.
        """
        data = self._edge(a, b)
        if bool(data.get("up", True)) != up:
            data["up"] = up
            self._invalidate()

    def link(self, a: str, b: str) -> LinkSpec:
        """The current spec of the direct link between *a* and *b*."""
        data = self._edge(a, b)
        spec: LinkSpec = data["link"]
        return spec

    def link_is_up(self, a: str, b: str) -> bool:
        """Whether the direct link between *a* and *b* is up."""
        return bool(self._edge(a, b).get("up", True))

    # -- time-varying schedules -------------------------------------------
    def schedule_link(self, a: str, b: str,
                      steps: list[tuple[float, LinkSpec | None]]) -> None:
        """Install a time-varying profile for the *a*–*b* link.

        Each ``(at, spec)`` step takes effect at sim time ``at``:
        a :class:`LinkSpec` rewrites the link (and brings it up),
        ``None`` takes it down.  Steps are applied **lazily** — the
        first cost query at or after ``at`` (via :attr:`clock`) applies
        every due step and invalidates the caches — so the link state
        is a pure function of sim time and the installed profiles.
        """
        self._edge(a, b)  # validate the pair up front
        for at, spec in steps:
            if at < 0:
                raise ConfigurationError(f"schedule step at {at} < 0")
            self._steps.append((at, self._step_seq, a, b, spec))
            self._step_seq += 1
        # stable (time, insertion) order keeps overlapping profiles
        # deterministic; already-applied prefix is untouched by sorting
        # only the pending tail
        pending = sorted(self._steps[self._step_idx:])
        del self._steps[self._step_idx:]
        self._steps.extend(pending)

    def _advance(self) -> None:
        """Apply every schedule step due by the current clock."""
        if self._step_idx >= len(self._steps) or self.clock is None:
            return
        now = self.clock()
        while (self._step_idx < len(self._steps)
               and self._steps[self._step_idx][0] <= now):
            _at, _seq, a, b, spec = self._steps[self._step_idx]
            self._step_idx += 1
            data = self._edge(a, b)
            if spec is None:
                data["up"] = False
            else:
                data["link"] = spec
                data["up"] = True
            self._invalidate()

    @property
    def sites(self) -> list[str]:
        return list(self._graph.nodes)

    def lan(self, site: str) -> LinkSpec:
        """The LAN characteristics of one site."""
        try:
            return self._lan[site]
        except KeyError:
            raise ConfigurationError(f"unknown site {site!r}") from None

    # -- queries ------------------------------------------------------------
    def path(self, src: str, dst: str) -> list[str]:
        """Minimum-latency site path from *src* to *dst* (inclusive).

        Only up links are considered; raises
        :class:`~repro.util.errors.ConfigurationError` when the pair is
        partitioned.
        """
        self._advance()
        for s in (src, dst):
            if s not in self._graph:
                raise ConfigurationError(f"unknown site {s!r}")
        if src == dst:
            return [src]
        try:
            return nx.shortest_path(self._graph, src, dst,
                                    weight=_edge_weight)
        except nx.NetworkXNoPath:
            raise ConfigurationError(
                f"no WAN path between {src!r} and {dst!r}") from None

    def _pair(self, src: str, dst: str) -> tuple[float, float] | None:
        """Cached ``(latency sum, bottleneck bandwidth)``; ``None`` when
        the pair is currently partitioned (negatively cached)."""
        self._advance()
        key = (src, dst)
        pair = self._pair_cache.get(key, _UNSET)
        if pair is _UNSET:
            try:
                hops = self.path(src, dst)
            except ConfigurationError:
                for s in (src, dst):
                    if s not in self._graph:
                        raise
                pair = None
            else:
                latency = 0.0
                bottleneck = float("inf")
                for u, v in zip(hops, hops[1:]):
                    link: LinkSpec = self._graph.edges[u, v]["link"]
                    latency += link.latency_s
                    bottleneck = min(bottleneck, link.bandwidth_bps)
                pair = (latency, bottleneck)
            self._pair_cache[key] = pair
        return pair

    def reachable(self, src: str, dst: str) -> bool:
        """Whether a WAN route currently exists from *src* to *dst*.

        A site that is not (or no longer) part of the topology — e.g.
        one that executed ``site_leave`` while a partition hid the
        announcement from some peers — is simply unreachable, not an
        error: stragglers' messages to it become deterministic
        partition drops.
        """
        if src == dst:
            return src in self._graph or src in self._lan
        if src not in self._graph or dst not in self._graph:
            return False
        return self._pair(src, dst) is not None

    def has_link(self, a: str, b: str) -> bool:
        """Whether both sites exist and share a direct WAN link.

        Fault injectors use this to skip (rather than crash on) link
        mutations whose endpoint departed the federation mid-plan.
        """
        return (a in self._graph and b in self._graph
                and self._graph.has_edge(a, b))

    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two sites (0-byte message)."""
        return self.transfer_time(src, dst, 0)

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Time to move *nbytes* from site *src* to site *dst*.

        This is the ``transfer_time(S_parent, S_j) * file_size`` quantity
        of the Site Scheduler Algorithm (paper Figure 4), expressed
        directly in seconds for a transfer of the given size.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst:
            spec = self.lan(src)
            return spec.latency_s + nbytes / spec.bandwidth_bps
        pair = self._pair(src, dst)
        if pair is None:
            raise ConfigurationError(
                f"no WAN path between {src!r} and {dst!r}")
        return pair[0] + nbytes / pair[1]

    def neighbors_by_latency(self, site: str) -> list[str]:
        """Every other reachable site ordered by ascending latency.

        Feeds step 2 of the Site Scheduler Algorithm: "Select k nearest
        VDCE neighbor sites".  Ties are broken by site name so the
        ordering is deterministic.
        """
        if site not in self._graph:
            raise ConfigurationError(f"unknown site {site!r}")
        others = []
        for other in self._graph.nodes:
            if other == site:
                continue
            try:
                others.append((self.latency(site, other), other))
            except ConfigurationError:
                continue  # unreachable: not a neighbour
        others.sort()
        return [name for _lat, name in others]

    def nearest_sites(self, site: str, k: int) -> list[str]:
        """The ``k`` nearest neighbour sites of *site*."""
        if k < 0:
            raise ValueError("k must be >= 0")
        return self.neighbors_by_latency(site)[:k]
