"""Wide-area / site network topology.

The paper's VDCE spans geographically distributed sites (Figure 1: e.g.
the Syracuse and Rome sites on the NYNET ATM testbed) whose hosts form
groups on LANs.  This module models that three-level structure — WAN
links between sites, a LAN per group, loopback within a host — and
computes per-transfer latency/transfer-time, which the Site Scheduler
Algorithm's ``transfer_time(S_parent, S_j)`` term consumes directly.

All sizes are bytes, times are seconds, bandwidths are bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class LinkSpec:
    """A physical network link: one-way latency plus bandwidth."""

    latency_s: float
    bandwidth_bps: float  # bytes per second

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"negative latency: {self.latency_s}")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive: {self.bandwidth_bps}")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move *nbytes* across this link."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bps


#: Representative 1997-era link presets (the paper's NYNET is ATM OC-3).
ATM_OC3 = LinkSpec(latency_s=0.005, bandwidth_bps=155e6 / 8)
ETHERNET_10 = LinkSpec(latency_s=0.001, bandwidth_bps=10e6 / 8)
ETHERNET_100 = LinkSpec(latency_s=0.0005, bandwidth_bps=100e6 / 8)
T1_WAN = LinkSpec(latency_s=0.020, bandwidth_bps=1.544e6 / 8)
LOOPBACK = LinkSpec(latency_s=1e-5, bandwidth_bps=1e9)


class Topology:
    """Sites connected by WAN links; each site has a LAN spec.

    The WAN is an undirected weighted graph over site names.  Transfers
    between sites follow the minimum-latency path; the path's transfer
    time is the sum of per-hop latencies plus the size divided by the
    bottleneck (minimum) bandwidth along the path.  Transfers inside a
    site use the site's LAN spec; transfers inside a host are loopback.
    """

    def __init__(self, lan: LinkSpec = ETHERNET_10,
                 loopback: LinkSpec = LOOPBACK) -> None:
        self._graph = nx.Graph()
        self._lan: dict[str, LinkSpec] = {}
        self._default_lan = lan
        self._loopback = loopback
        # (src, dst) -> (path latency sum, bottleneck bandwidth): every
        # send() re-derives this pair, so cache it; construction edits
        # invalidate.  Keyed per *ordered* pair — shortest_path tie-breaks
        # are not guaranteed symmetric, and the cache must reproduce the
        # uncached per-call result exactly.
        self._pair_cache: dict[tuple[str, str], tuple[float, float]] = {}

    # -- construction -----------------------------------------------------
    def add_site(self, site: str, lan: LinkSpec | None = None) -> None:
        """Register a site, optionally with its own LAN characteristics."""
        if site in self._graph:
            raise ConfigurationError(f"site {site!r} already in topology")
        self._graph.add_node(site)
        self._lan[site] = lan or self._default_lan
        self._pair_cache.clear()

    def connect(self, a: str, b: str, link: LinkSpec = ATM_OC3) -> None:
        """Add a WAN link between sites *a* and *b*."""
        for s in (a, b):
            if s not in self._graph:
                raise ConfigurationError(f"unknown site {s!r}")
        if a == b:
            raise ConfigurationError("cannot connect a site to itself")
        self._graph.add_edge(a, b, link=link)
        self._pair_cache.clear()

    @property
    def sites(self) -> list[str]:
        return list(self._graph.nodes)

    def lan(self, site: str) -> LinkSpec:
        """The LAN characteristics of one site."""
        try:
            return self._lan[site]
        except KeyError:
            raise ConfigurationError(f"unknown site {site!r}") from None

    # -- queries ------------------------------------------------------------
    def path(self, src: str, dst: str) -> list[str]:
        """Minimum-latency site path from *src* to *dst* (inclusive)."""
        for s in (src, dst):
            if s not in self._graph:
                raise ConfigurationError(f"unknown site {s!r}")
        if src == dst:
            return [src]
        try:
            return nx.shortest_path(
                self._graph, src, dst,
                weight=lambda u, v, d: d["link"].latency_s)
        except nx.NetworkXNoPath:
            raise ConfigurationError(
                f"no WAN path between {src!r} and {dst!r}") from None

    def latency(self, src: str, dst: str) -> float:
        """One-way latency between two sites (0-byte message)."""
        return self.transfer_time(src, dst, 0)

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Time to move *nbytes* from site *src* to site *dst*.

        This is the ``transfer_time(S_parent, S_j) * file_size`` quantity
        of the Site Scheduler Algorithm (paper Figure 4), expressed
        directly in seconds for a transfer of the given size.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if src == dst:
            spec = self.lan(src)
            return spec.latency_s + nbytes / spec.bandwidth_bps
        pair = self._pair_cache.get((src, dst))
        if pair is None:
            hops = self.path(src, dst)
            latency = 0.0
            bottleneck = float("inf")
            for u, v in zip(hops, hops[1:]):
                link: LinkSpec = self._graph.edges[u, v]["link"]
                latency += link.latency_s
                bottleneck = min(bottleneck, link.bandwidth_bps)
            pair = (latency, bottleneck)
            self._pair_cache[(src, dst)] = pair
        return pair[0] + nbytes / pair[1]

    def neighbors_by_latency(self, site: str) -> list[str]:
        """Every other reachable site ordered by ascending latency.

        Feeds step 2 of the Site Scheduler Algorithm: "Select k nearest
        VDCE neighbor sites".  Ties are broken by site name so the
        ordering is deterministic.
        """
        if site not in self._graph:
            raise ConfigurationError(f"unknown site {site!r}")
        others = []
        for other in self._graph.nodes:
            if other == site:
                continue
            try:
                others.append((self.latency(site, other), other))
            except ConfigurationError:
                continue  # unreachable: not a neighbour
        others.sort()
        return [name for _lat, name in others]

    def nearest_sites(self, site: str, k: int) -> list[str]:
        """The ``k`` nearest neighbour sites of *site*."""
        if k < 0:
            raise ValueError("k must be >= 0")
        return self.neighbors_by_latency(site)[:k]
