"""The simulated message network connecting VDCE daemons.

Endpoints register a mailbox under a hierarchical address
``site/host[/service]``.  :meth:`Network.send` computes the transfer time
from the :class:`~repro.net.topology.Topology` (WAN path between sites,
LAN inside a site, loopback inside a host) and delivers the message into
the destination mailbox after that delay.  Messages to hosts that are
down are silently dropped — exactly the failure model the Group Manager's
echo packets are designed to detect (paper section 2.3.1).

The network also keeps per-kind traffic counters, which back the
monitoring-traffic experiment (F6) and the setup-cost experiment (F7).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from functools import lru_cache

from repro.analysis import hooks
from repro.net.message import Message
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.simcore.engine import Environment
from repro.simcore.store import Store
from repro.simcore.trace import Tracer
from repro.util.errors import ChannelError, ConfigurationError


@lru_cache(maxsize=4096)
def split_address(addr: str) -> tuple[str, str]:
    """Split ``site/host[/service]`` into ``(site, host)``.

    Addresses with no ``/`` are site-level actors (e.g. a site manager):
    site == host == addr.  The function is pure, and every ``send``
    splits both endpoints, so results are memoized.
    """
    parts = addr.split("/")
    if not parts[0]:
        raise ConfigurationError(f"malformed address {addr!r}")
    if len(parts) == 1:
        return parts[0], parts[0]
    return parts[0], f"{parts[0]}/{parts[1]}"


@dataclass(frozen=True)
class FaultAction:
    """Verdict a fault hook returns for one message.

    ``drop`` discards the message outright; otherwise the modelled delay
    is scaled by ``delay_multiplier`` plus ``extra_delay_s``, and
    ``duplicates`` extra copies are delivered alongside the original.
    """

    drop: bool = False
    extra_delay_s: float = 0.0
    delay_multiplier: float = 1.0
    duplicates: int = 0


@dataclass
class TrafficStats:
    """Message/byte counters, overall and per message kind."""

    messages: int = 0
    bytes: float = 0.0
    dropped: int = 0
    injected_drops: int = 0
    partition_drops: int = 0
    injected_duplicates: int = 0
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))

    def account(self, msg: Message) -> None:
        """Tally one sent message into the counters."""
        self.messages += 1
        self.bytes += msg.size_bytes
        self.by_kind[msg.kind] += 1
        self.bytes_by_kind[msg.kind] += msg.size_bytes


class Network:
    """Latency/bandwidth-modelled message delivery between endpoints."""

    __slots__ = ("env", "topology", "tracer", "per_message_overhead_s",
                 "stats", "_mailboxes", "is_up", "fault_hook", "obs",
                 "batching",
                 "_m_messages", "_m_bytes", "_m_dropped", "_m_delay")

    def __init__(self, env: Environment, topology: Topology,
                 tracer: Tracer | None = None,
                 per_message_overhead_s: float = 1e-4,
                 batching: bool = True) -> None:
        self.env = env
        self.topology = topology
        self.tracer = tracer or Tracer(enabled=False)
        self.per_message_overhead_s = per_message_overhead_s
        #: coalesce same-tick fan-outs (:meth:`send_batch`) into vector
        #: heap entries; ``False`` degrades every batch to a loop of
        #: :meth:`send` — byte-identical traces either way (the chaos CI
        #: jobs assert exactly that), just slower.
        self.batching = batching
        self.stats = TrafficStats()
        self._mailboxes: dict[str, Store] = {}
        #: predicate deciding whether the *host* owning an address is up;
        #: installed by the failure-injection layer.
        self.is_up: Callable[[str], bool] = lambda host: True
        #: optional per-message fault hook returning a
        #: :class:`FaultAction` (or None for no fault); installed by
        #: :class:`repro.faults.FaultInjector`.
        self.fault_hook: Callable[[Message], FaultAction | None] | None = None
        self.set_observability(OBS_OFF)

    def set_observability(self, obs: Observability) -> None:
        """Attach an :class:`~repro.obs.Observability` handle.

        Registers this layer's instruments up front so ``send`` only
        records (no registry lookups on the hot path).  The facade calls
        this during construction; standalone Networks keep the inert
        :data:`~repro.obs.OBS_OFF` default.
        """
        self.obs = obs
        metrics = obs.metrics
        self._m_messages = metrics.counter(
            "net_messages_total", help="messages sent, by kind")
        self._m_bytes = metrics.counter(
            "net_bytes_total", help="payload bytes sent, by kind")
        self._m_dropped = metrics.counter(
            "net_dropped_total", help="messages dropped, by reason")
        self._m_delay = metrics.histogram(
            "net_delivery_delay_seconds",
            help="modelled delivery delay, by kind")

    # -- endpoints --------------------------------------------------------
    def register(self, addr: str) -> Store:
        """Create (or fetch) the mailbox for *addr*."""
        split_address(addr)  # validate
        box = self._mailboxes.get(addr)
        if box is None:
            box = Store(self.env)
            self._mailboxes[addr] = box
        return box

    def mailbox(self, addr: str) -> Store:
        """Fetch a registered endpoint's mailbox."""
        try:
            return self._mailboxes[addr]
        except KeyError:
            raise ChannelError(f"no endpoint registered at {addr!r}") from None

    @property
    def addresses(self) -> list[str]:
        return list(self._mailboxes)

    # -- delivery ---------------------------------------------------------
    def delay_for(self, src: str, dst: str, nbytes: float) -> float:
        """Modelled delivery delay for a message of *nbytes*."""
        src_site, src_host = split_address(src)
        dst_site, dst_host = split_address(dst)
        if src_host == dst_host:
            wire = 1e-5 + nbytes / 1e9  # loopback
        else:
            wire = self.topology.transfer_time(src_site, dst_site, nbytes)
        return wire + self.per_message_overhead_s

    def send(self, src: str, dst: str, kind: str, payload=None,
             size_bytes: float = 256.0) -> Message:
        """Send a message; it arrives after the modelled delay.

        Returns the sent :class:`Message`.  Raises :class:`ChannelError`
        when the destination endpoint was never registered (a programming
        error, unlike a *down* host which is a simulated fault and drops
        silently).
        """
        env = self.env
        now = env.now
        stats = self.stats
        tracer = self.tracer
        obs = self.obs
        msg = Message(src=src, dst=dst, kind=kind, payload=payload,
                      size_bytes=size_bytes, send_time=now)
        box = self.mailbox(dst)
        dst_site, dst_host = split_address(dst)
        src_site, src_host = split_address(src)
        hb = hooks.HB
        if hb is not None:
            hb.on_send(dst_site)
        # inlined TrafficStats.account: sends dominate, and the method
        # call plus Message re-reads are measurable at message rate
        stats.messages += 1
        stats.bytes += size_bytes
        stats.by_kind[kind] += 1
        stats.bytes_by_kind[kind] += size_bytes
        if tracer.enabled:
            tracer.record(now, f"net:{kind}", src, dst=dst, bytes=size_bytes)
        if obs.enabled:
            self._m_messages.inc(kind=kind)
            self._m_bytes.inc(size_bytes, kind=kind)
        if not (self.is_up(dst_host) and self.is_up(src_host)):
            stats.dropped += 1
            if tracer.enabled:
                tracer.record(now, "net:dropped", src, dst=dst, kind=kind)
            if obs.enabled:
                self._m_dropped.inc(reason="host-down")
            return msg
        if (src_host != dst_host
                and not self.topology.reachable(src_site, dst_site)):
            # No surviving WAN route: the partition eats the message
            # before any injected per-message fault gets a say (no RNG
            # draws for undeliverable traffic keeps drops deterministic).
            stats.dropped += 1
            stats.partition_drops += 1
            if tracer.enabled:
                tracer.record(now, "net:partition-drop", src, dst=dst,
                              kind=kind)
            if obs.enabled:
                self._m_dropped.inc(reason="partitioned")
            return msg
        action = self.fault_hook(msg) if self.fault_hook is not None else None
        if action is not None and action.drop:
            stats.dropped += 1
            stats.injected_drops += 1
            if tracer.enabled:
                tracer.record(now, "net:injected-drop", src, dst=dst,
                              kind=kind)
            if obs.enabled:
                self._m_dropped.inc(reason="injected")
            return msg
        if src_host == dst_host:
            wire = 1e-5 + size_bytes / 1e9  # loopback
        else:
            wire = self.topology.transfer_time(src_site, dst_site, size_bytes)
        delay = wire + self.per_message_overhead_s
        copies = 1
        if action is not None:
            delay = delay * action.delay_multiplier + action.extra_delay_s
            copies += action.duplicates
            stats.injected_duplicates += action.duplicates
        if obs.enabled:
            self._m_delay.observe(delay, kind=kind)
            # Message-delivery spans only for sends on behalf of a task
            # (the Data Manager brackets those with current_parent):
            # control-plane chatter is counted above but not spanned, so
            # the causal tree stays one application's tree.
            if obs.current_parent is not None:
                obs.spans.complete(
                    kind, "message-delivery", src, now, now + delay,
                    parent_id=obs.current_parent, dst=dst,
                    bytes=size_bytes)

        def deliver(env, box=box, msg=msg, delay=delay):
            yield env.timeout(delay)
            # A host that went down mid-flight loses the message too.
            if self.is_up(dst_host):
                box.put(msg)
            else:
                self.stats.dropped += 1
                if self.obs.enabled:
                    self._m_dropped.inc(reason="mid-flight")

        for _ in range(copies):
            env.process(deliver(env), name=f"deliver:{kind}")
        return msg

    def _deliver_entries(self, entries) -> None:
        """Arrival callback for one batched delivery run.

        *entries* is the ``(mailbox, message, dst_host)`` list one
        :meth:`send_batch` heap entry accumulated; per-message semantics
        (the mid-flight down check and its drop accounting) match the
        unbatched ``deliver`` process exactly, in list order — which is
        send order, the same order per-message heap entries would pop.
        """
        is_up = self.is_up
        for box, msg, dst_host in entries:
            if is_up(dst_host):
                box.put_nowait(msg)
            else:
                self.stats.dropped += 1
                if self.obs.enabled:
                    self._m_dropped.inc(reason="mid-flight")

    def send_batch(self, src: str, dsts: Sequence[str], kind: str,
                   payload=None, size_bytes: float = 256.0,
                   payloads: Sequence | None = None,
                   sizes: Sequence[float] | None = None) -> list[Message]:
        """Send to several destinations in one coalesced operation.

        Semantically a loop of :meth:`send` — same per-message stats,
        tracer records, obs metrics/spans, and fault-hook consultations
        (in *dsts* order, so injector RNG draws are unchanged) — but
        consecutive messages sharing a modelled delay ride **one** heap
        entry and one arrival callback instead of a delivery process
        each.  Fan-outs inside a site (echo rounds, start signals to
        co-located controllers, WAL shipping to LAN standbys) therefore
        cost O(runs) kernel work rather than O(messages).

        *payloads* / *sizes*, when given, are per-destination overrides
        aligned with *dsts* (the allocation push sends a different
        portion to every host).  With ``self.batching`` false the call
        degrades to the plain loop, which the chaos byte-identity CI
        probes compare against.
        """
        if payloads is not None and len(payloads) != len(dsts):
            raise ConfigurationError("payloads must align with dsts")
        if sizes is not None and len(sizes) != len(dsts):
            raise ConfigurationError("sizes must align with dsts")
        if not self.batching:
            return [
                self.send(src, dsts[i], kind,
                          payload if payloads is None else payloads[i],
                          size_bytes if sizes is None else sizes[i])
                for i in range(len(dsts))
            ]
        env = self.env
        now = env._now
        stats = self.stats
        tracer = self.tracer
        obs = self.obs
        fault_hook = self.fault_hook
        is_up = self.is_up
        mailboxes = self._mailboxes
        transfer_time = self.topology.transfer_time
        reachable = self.topology.reachable
        overhead = self.per_message_overhead_s
        src_site, src_host = split_address(src)
        src_up = is_up(src_host)
        hb = hooks.HB
        by_kind = stats.by_kind
        bytes_by_kind = stats.bytes_by_kind
        messages: list[Message] = []
        # the open run: consecutive messages with the same delay share it
        run_entries: list | None = None
        run_delay = -1.0
        for i in range(len(dsts)):
            dst = dsts[i]
            pl = payload if payloads is None else payloads[i]
            nbytes = size_bytes if sizes is None else sizes[i]
            msg = Message(src=src, dst=dst, kind=kind, payload=pl,
                          size_bytes=nbytes, send_time=now)
            messages.append(msg)
            box = mailboxes.get(dst)
            if box is None:
                raise ChannelError(f"no endpoint registered at {dst!r}")
            dst_site, dst_host = split_address(dst)
            if hb is not None:
                hb.on_send(dst_site)
            stats.messages += 1
            stats.bytes += nbytes
            by_kind[kind] += 1
            bytes_by_kind[kind] += nbytes
            if tracer.enabled:
                tracer.record(now, f"net:{kind}", src, dst=dst,
                              bytes=nbytes)
            if obs.enabled:
                self._m_messages.inc(kind=kind)
                self._m_bytes.inc(nbytes, kind=kind)
            if not (is_up(dst_host) and src_up):
                stats.dropped += 1
                if tracer.enabled:
                    tracer.record(now, "net:dropped", src, dst=dst,
                                  kind=kind)
                if obs.enabled:
                    self._m_dropped.inc(reason="host-down")
                continue
            if (src_host != dst_host
                    and not reachable(src_site, dst_site)):
                stats.dropped += 1
                stats.partition_drops += 1
                if tracer.enabled:
                    tracer.record(now, "net:partition-drop", src, dst=dst,
                                  kind=kind)
                if obs.enabled:
                    self._m_dropped.inc(reason="partitioned")
                continue
            action = fault_hook(msg) if fault_hook is not None else None
            if action is not None and action.drop:
                stats.dropped += 1
                stats.injected_drops += 1
                if tracer.enabled:
                    tracer.record(now, "net:injected-drop", src, dst=dst,
                                  kind=kind)
                if obs.enabled:
                    self._m_dropped.inc(reason="injected")
                continue
            if src_host == dst_host:
                wire = 1e-5 + nbytes / 1e9  # loopback
            else:
                wire = transfer_time(src_site, dst_site, nbytes)
            delay = wire + overhead
            copies = 1
            if action is not None:
                delay = delay * action.delay_multiplier + action.extra_delay_s
                copies += action.duplicates
                stats.injected_duplicates += action.duplicates
            if obs.enabled:
                self._m_delay.observe(delay, kind=kind)
                if obs.current_parent is not None:
                    obs.spans.complete(
                        kind, "message-delivery", src, now, now + delay,
                        parent_id=obs.current_parent, dst=dst,
                        bytes=nbytes)
            if run_entries is None or delay != run_delay:
                # new run: one heap entry; the list keeps growing until
                # the entry fires (strictly later in simulated time)
                run_entries = []
                run_delay = delay
                env.call_later(delay, self._deliver_entries, run_entries)
            for _ in range(copies):
                run_entries.append((box, msg, dst_host))
        return messages

    def multicast(self, src: str, dsts: Iterable[str], kind: str,
                  payload=None, size_bytes: float = 256.0) -> list[Message]:
        """Send the same payload to several destinations.

        The paper's Site Scheduler multicasts the AFG to the selected
        remote sites (Figure 4 step 3); we model multicast as unicast
        fan-out, which is what a mid-90s IP WAN would do — now coalesced
        through :meth:`send_batch`.
        """
        dsts = dsts if isinstance(dsts, (list, tuple)) else list(dsts)
        return self.send_batch(src, dsts, kind, payload, size_bytes)
