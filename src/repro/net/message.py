"""Message envelopes for the simulated VDCE network.

Every exchange between VDCE daemons — monitor reports, echo packets,
AFG multicasts, resource-allocation-table pushes, inter-task data — is a
:class:`Message`.  The ``kind`` names follow the interactions labelled in
the paper's Figures 2, 6 and 7.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_SEQ = itertools.count(1)


# Message kinds used by the Control Manager (paper Figure 6).
LOAD_REPORT = "load-report"            # Monitor -> Group Manager
WORKLOAD_UPDATE = "workload-update"    # Group Manager -> Site Manager
ECHO_REQUEST = "echo-request"          # Group Manager -> host
ECHO_REPLY = "echo-reply"              # host -> Group Manager
HOST_DOWN = "host-down"                # Group Manager -> Site Manager
AFG_MULTICAST = "afg-multicast"        # local Site Manager -> remote sites
HOST_SELECTION_REPLY = "host-selection-reply"  # remote -> local site
ALLOCATION_PUSH = "allocation-push"    # Site Manager -> Group Managers
EXECUTION_REQUEST = "execution-request"  # Group Manager -> App Controller
RESCHEDULE_REQUEST = "reschedule-request"  # App Controller -> Group Manager

# Message kinds used by the Data Manager (paper Figure 7).
CHANNEL_SETUP = "channel-setup"        # Data Manager -> peer proxy
CHANNEL_ACK = "channel-ack"            # proxy -> Application Controller
START_SIGNAL = "start-signal"          # Site Manager -> controllers
TASK_DATA = "task-data"                # proxy -> proxy (inter-task data)

# Message kinds used by the recovery subsystem (repro.recovery): the
# write-ahead log shipped to standby hosts and the server heartbeat the
# standbys watch to decide a failover.
WAL_APPEND = "wal-append"              # Site Manager -> standby replicas
SERVER_HEARTBEAT = "server-heartbeat"  # server -> standby replicas
SERVER_PROMOTED = "server-promoted"    # new server -> standby replicas

# Message kinds used by the federation membership subsystem
# (repro.federation): site-level liveness, elastic join/leave, and the
# directory catch-up transfer a rejoining or joining site performs.
SITE_HEARTBEAT = "site-heartbeat"      # membership daemon -> peer sites
SITE_JOIN = "site-join"                # joining site -> every member
SITE_LEAVE = "site-leave"              # leaving site -> every member
SYNC_REQUEST = "sync-request"          # rejoiner -> up-to-date peer
SYNC_REPLY = "sync-reply"              # peer -> rejoiner (delta/snapshot)


@dataclass(frozen=True)
class Message:
    """An addressed, sized unit of communication.

    ``size_bytes`` drives the transfer-time model; control messages are
    small and data messages carry the producing task's output size.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size_bytes: float = 256.0  # default control-message size
    send_time: float = 0.0
    seq: int = field(default_factory=lambda: next(_SEQ))

    def reply(self, kind: str, payload: Any = None,
              size_bytes: float = 256.0, send_time: float = 0.0) -> "Message":
        """Build a response addressed back to this message's sender."""
        return Message(src=self.dst, dst=self.src, kind=kind,
                       payload=payload, size_bytes=size_bytes,
                       send_time=send_time)
