"""Public test helpers: pre-populated federations without the runtime.

Downstream users writing tests against the scheduling/prediction layers
need the same thing this repository's own suite needs — a topology plus
per-site repositories filled exactly as a running VDCE would fill them
(hosts registered, weights calibrated by trial runs, executables
installed) — without paying for monitors and managers.  This module is
that fixture factory, kept in the library so user test suites can import
it (``from repro.testing import build_federation``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import ATM_OC3, Topology
from repro.prediction.calibration import calibrate_weights
from repro.repository.site_repository import SiteRepository
from repro.resources.groundtruth import ExecutionModel
from repro.resources.host import Host, HostSpec
from repro.tasklib import LibraryRegistry, standard_registry


@dataclass
class Federation:
    """A ready-to-schedule multi-site environment (no runtime daemons)."""

    topology: Topology
    registry: LibraryRegistry
    repositories: dict[str, SiteRepository]
    hosts: dict[str, Host] = field(default_factory=dict)  # address -> Host
    model: ExecutionModel = field(default_factory=ExecutionModel)

    def hosts_at(self, site: str) -> list[Host]:
        """Ground-truth host objects of one site."""
        return [h for h in self.hosts.values() if h.site == site]


#: heterogeneous host templates cycled across the federation
HOST_TEMPLATES = [
    dict(arch="sparc", os="solaris", cpu_factor=1.0, memory_mb=128),
    dict(arch="alpha", os="osf1", cpu_factor=0.6, memory_mb=256),
    dict(arch="x86", os="linux", cpu_factor=1.4, memory_mb=64),
    dict(arch="rs6000", os="aix", cpu_factor=0.9, memory_mb=192),
]


def build_federation(site_names=("syracuse", "rome"), hosts_per_site=3,
                     seed=0, registry=None,
                     constrain: dict[str, set[str]] | None = None,
                     templates=None) -> Federation:
    """Populate repositories exactly as a running VDCE would.

    *constrain* optionally maps task name -> set of host addresses that
    hold its executable (default: every task everywhere).  *templates*
    overrides the host hardware templates (cycled per site).
    """
    registry = registry or standard_registry()
    templates = templates or HOST_TEMPLATES
    topology = Topology()
    for name in site_names:
        topology.add_site(name)
    names = list(site_names)
    for a, b in zip(names, names[1:]):
        topology.connect(a, b, ATM_OC3)
    model = ExecutionModel(seed=seed)
    fed = Federation(topology=topology, registry=registry,
                     repositories={}, model=model)
    definitions = registry.all_tasks()
    for si, site in enumerate(site_names):
        repo = SiteRepository(site)
        site_hosts = []
        for hi in range(hosts_per_site):
            template = templates[(si * hosts_per_site + hi)
                                 % len(templates)]
            spec = HostSpec(name=f"h{hi}", group=f"g{hi // 2}", **template)
            host = Host(spec=spec, site=site)
            fed.hosts[host.address] = host
            site_hosts.append(host)
            repo.resource_performance.register_host(site, spec)
        calibrate_weights(repo.task_performance, definitions, site_hosts,
                          model)
        for d in definitions:
            for host in site_hosts:
                allowed = constrain.get(d.name) if constrain else None
                if allowed is not None and host.address not in allowed:
                    continue
                repo.task_constraints.register_executable(
                    d.name, host.address, f"/usr/vdce/bin/{d.name}")
        fed.repositories[site] = repo
    return fed
