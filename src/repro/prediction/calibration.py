"""Calibration trial runs.

Paper section 2.2.1: "Trial runs are required to obtain the computing
power weights of processors for each task."  Calibration executes each
task once per host against the ground-truth execution model on a
*dedicated* machine (no competing load) and seeds the task-performance
database with the implied weight.

``coverage`` < 1.0 calibrates only a subset of (task, host) pairs —
the realistic regime where the predictor must fall back to the host's
general cpu_factor for unmeasured pairs, which experiment F5 sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.repository.task_perf import TaskPerformanceDB
from repro.resources.groundtruth import ExecutionModel
from repro.resources.host import Host
from repro.tasklib.base import TaskDefinition


def register_tasks(task_performance: TaskPerformanceDB,
                   definitions: list[TaskDefinition]) -> None:
    """Register every task's static characteristics (idempotent add)."""
    for d in definitions:
        if d.name not in task_performance:
            task_performance.register_task(
                d.name,
                base_time_s=d.base_time_s,
                computation_size=d.base_time_s,  # relative compute size
                communication_size=d.output_size_bytes(d.base_size),
                memory_mb=d.memory_required_mb(d.base_size))


def calibrate_weights(task_performance: TaskPerformanceDB,
                      definitions: list[TaskDefinition],
                      hosts: list[Host],
                      model: ExecutionModel,
                      coverage: float = 1.0,
                      rng: np.random.Generator | None = None) -> int:
    """Run trial runs and seed weights; returns the number of pairs seeded.

    A trial run measures ``dedicated_duration(task, base_size, host)`` and
    stores ``measured / base_time(base_size)`` — exactly the paper's
    computing-power weight with respect to the base processor.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be within [0, 1]")
    rng = rng or np.random.default_rng(0)
    register_tasks(task_performance, definitions)
    seeded = 0
    for d in definitions:
        base = d.base_execution_time(d.base_size)
        for host in hosts:
            if coverage < 1.0 and rng.random() > coverage:
                continue
            measured = model.dedicated_duration(d, d.base_size, host)
            task_performance.set_weight(d.name, host.address,
                                        measured / base)
            seeded += 1
    return seeded
