"""Workload forecasting.

Paper section 2.2.1: "The current workload parameters are computed using
forecasting techniques based on a window of most recent workload
measurements."  The repository keeps that window
(:class:`~repro.repository.resource_perf.ResourceRecord.load_window`);
these forecasters turn it into the CPU-load estimate the prediction
function consumes.

The :class:`AdaptiveForecaster` follows the Network Weather Service idea
(Wolski — the same group as the paper's APPLeS citation): keep a family
of simple predictors, track each one's backtest error over the window,
and answer with the current best.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.errors import ConfigurationError


class Forecaster:
    """Estimate the next load value from a measurement window."""

    name = "base"

    def forecast(self, window: Sequence[float]) -> float:
        """Predicted next value; windows are oldest-first.

        An empty window forecasts 0.0 (optimistic: unknown machines look
        idle, exactly as a freshly-registered host does in the paper).
        """
        raise NotImplementedError

    def _guard(self, window: Sequence[float]) -> bool:
        return len(window) == 0


class LastValueForecaster(Forecaster):
    """Persistence model: tomorrow looks like today."""

    name = "last-value"

    def forecast(self, window: Sequence[float]) -> float:
        """The latest measurement, unchanged."""
        if self._guard(window):
            return 0.0
        return float(window[-1])


class MeanForecaster(Forecaster):
    """Window mean."""

    name = "mean"

    def forecast(self, window: Sequence[float]) -> float:
        """Arithmetic mean of the window."""
        if self._guard(window):
            return 0.0
        return float(sum(window)) / len(window)


class EWMAForecaster(Forecaster):
    """Exponentially weighted moving average."""

    name = "ewma"

    def __init__(self, alpha: float = 0.4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("EWMA alpha must be in (0, 1]")
        self.alpha = alpha
        self.name = f"ewma({alpha})"

    def forecast(self, window: Sequence[float]) -> float:
        if self._guard(window):
            return 0.0
        est = float(window[0])
        for x in window[1:]:
            est = (1 - self.alpha) * est + self.alpha * float(x)
        return est


class TrendForecaster(Forecaster):
    """Least-squares linear extrapolation one step ahead.

    Forecasts are clamped at zero (load cannot be negative).
    """

    name = "trend"

    def forecast(self, window: Sequence[float]) -> float:
        n = len(window)
        if n == 0:
            return 0.0
        if n == 1:
            return float(window[0])
        xs = range(n)
        mean_x = (n - 1) / 2.0
        mean_y = sum(window) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, window))
        slope = sxy / sxx
        return max(0.0, mean_y + slope * (n - mean_x))


class AdaptiveForecaster(Forecaster):
    """NWS-style: backtest the family on the window, answer with the best."""

    name = "adaptive"

    def __init__(self, family: Sequence[Forecaster] | None = None) -> None:
        self.family: list[Forecaster] = list(family) if family else [
            LastValueForecaster(), MeanForecaster(), EWMAForecaster(0.4),
            TrendForecaster(),
        ]
        if not self.family:
            raise ConfigurationError("adaptive family may not be empty")

    def backtest_errors(self, window: Sequence[float]) -> dict[str, float]:
        """Mean absolute one-step-ahead error per family member."""
        errors: dict[str, float] = {}
        for fc in self.family:
            errs = [abs(fc.forecast(window[:i]) - window[i])
                    for i in range(1, len(window))]
            errors[fc.name] = (sum(errs) / len(errs)) if errs else 0.0
        return errors

    def forecast(self, window: Sequence[float]) -> float:
        if len(window) < 3:
            return MeanForecaster().forecast(window)
        errors = self.backtest_errors(window)
        best = min(self.family, key=lambda fc: errors[fc.name])
        return best.forecast(window)


FORECASTERS: dict[str, type[Forecaster]] = {
    "last-value": LastValueForecaster,
    "mean": MeanForecaster,
    "ewma": EWMAForecaster,
    "trend": TrendForecaster,
    "adaptive": AdaptiveForecaster,
}


def make_forecaster(name: str) -> Forecaster:
    try:
        return FORECASTERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown forecaster {name!r}; expected one of "
            f"{sorted(FORECASTERS)}") from None
