"""Performance prediction: forecasting, Predict(task, R), calibration."""

from repro.prediction.calibration import calibrate_weights, register_tasks
from repro.prediction.forecasting import (
    FORECASTERS,
    AdaptiveForecaster,
    EWMAForecaster,
    Forecaster,
    LastValueForecaster,
    MeanForecaster,
    TrendForecaster,
    make_forecaster,
)
from repro.prediction.predict import (
    MEMORY_PENALTY_SLOPE,
    PerformancePredictor,
    Prediction,
)

__all__ = [
    "AdaptiveForecaster",
    "EWMAForecaster",
    "FORECASTERS",
    "Forecaster",
    "LastValueForecaster",
    "MEMORY_PENALTY_SLOPE",
    "MeanForecaster",
    "PerformancePredictor",
    "Prediction",
    "TrendForecaster",
    "calibrate_weights",
    "make_forecaster",
    "register_tasks",
]
