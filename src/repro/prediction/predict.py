"""The performance prediction function ``Predict(task_i, R_j)``.

Paper section 2.2.1: "in VDCE we provide separate function evaluations,
Predict(task_i, R_j), to predict the performance of each task on each
resource. ... The input parameters of the prediction functions include:
Measured_Time(task_i, R_base) ...; Weight(task_i, R_j) ...;
Mem_Req(task_i) ...; Memory_Avail(R_j) ...; and CPU_load(R_j)."

The composition mirrors the simulator's ground-truth time model so a
*perfect* repository view predicts exactly:

    Predict = MeasuredTime(task, R_base)          # scaled to input size
              * Weight(task, R_j)                 # task-specific heterogeneity
              * (1 + CPU_load_forecast(R_j))      # time-sharing stretch
              * memory_penalty(Mem_Req, Avail)    # paging cliff

Each term can be disabled for the A1 ablation benchmark; the prediction
degrades accordingly, which is the paper's implicit claim ("the core of
the given built-in scheduling algorithms is the performance prediction
phase").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prediction.forecasting import Forecaster, MeanForecaster
from repro.repository.resource_perf import ResourceRecord
from repro.repository.task_perf import TaskPerformanceDB
from repro.tasklib.base import TaskDefinition
from repro.util.errors import NoFeasibleHostError

#: Paging penalty slope, matching Host.slowdown's ground truth.
MEMORY_PENALTY_SLOPE = 4.0

#: (task name, input size, processors, host address, record version,
#: task-performance version) — the full invalidation surface of one entry.
CacheKey = tuple[str, float, int, str, int, int]

#: Memoization cap: the cache is cleared wholesale when it grows past
#: this, bounding memory during long runs with churning record versions.
CACHE_MAX_ENTRIES = 4096


@dataclass(frozen=True)
class Prediction:
    """One evaluated Predict(task, R): the estimate plus its factors."""

    task_name: str
    host: str
    estimate_s: float
    base_time_s: float
    weight: float
    load_forecast: float
    memory_penalty: float
    feasible: bool = True


class PerformancePredictor:
    """Evaluates Predict(task, R) against the repository view.

    Evaluations are memoized per (task, input size, processors, record
    snapshot): the key includes the record's ``version`` stamp and the
    task-performance DB's weight ``version``, so a monitoring update,
    status change, or weight refinement automatically invalidates the
    affected entries — rescheduling after repository updates always sees
    fresh loads.  Call :meth:`invalidate` after mutating records outside
    the :class:`~repro.repository.resource_perf.ResourcePerformanceDB`
    API (direct field writes bypass the version stamps).
    """

    def __init__(self, task_performance: TaskPerformanceDB,
                 forecaster: Forecaster | None = None,
                 use_weight: bool = True,
                 use_load: bool = True,
                 use_memory: bool = True) -> None:
        self.task_performance = task_performance
        self.forecaster = forecaster or MeanForecaster()
        self.use_weight = use_weight
        self.use_load = use_load
        self.use_memory = use_memory
        self._cache: dict[CacheKey, Prediction] = {}

    def invalidate(self, host: str | None = None,
                   task: str | None = None) -> None:
        """Drop memoized evaluations, optionally targeted.

        With no arguments: drop everything (out-of-band record changes
        that bypassed the version stamps).  With *host* and/or *task*:
        drop only the entries for that host address / task definition —
        membership churn (a host unregistering) or a task redefinition
        no longer flushes the whole memo table, so the surviving entries
        keep serving the next scheduling round warm.
        """
        cache = self._cache
        if host is None and task is None:
            cache.clear()
            return
        dead = [key for key in cache
                if (host is None or key[3] == host)
                and (task is None or key[0] == task)]
        for key in dead:
            del cache[key]

    # -- components -------------------------------------------------------
    def weight_for(self, definition: TaskDefinition,
                   record: ResourceRecord) -> float:
        """Weight(task, R): measured when available, else the host's
        general cpu_factor (the repository's static attribute)."""
        if not self.use_weight:
            return 1.0
        return self.task_performance.weight(
            definition.name, record.address, default=record.cpu_factor)

    def load_forecast_for(self, record: ResourceRecord) -> float:
        """CPU_load(R): forecast from the record's measurement window."""
        if not self.use_load:
            return 0.0
        return max(0.0, self.forecaster.forecast(record.load_window))

    def memory_penalty_for(self, definition: TaskDefinition,
                           input_size: float,
                           record: ResourceRecord) -> float:
        """Memory term: paging penalty when Mem_Req exceeds availability."""
        if not self.use_memory:
            return 1.0
        required = definition.memory_required_mb(input_size)
        overflow = required - record.available_memory_mb
        if overflow <= 0:
            return 1.0
        total = max(record.total_memory_mb, 1e-9)
        return 1.0 + MEMORY_PENALTY_SLOPE * overflow / total

    # -- the prediction function ------------------------------------------
    def _cache_key(self, definition: TaskDefinition, input_size: float,
                   record: ResourceRecord, processors: int) -> CacheKey:
        return (definition.name, input_size, processors, record.address,
                record.version, self.task_performance.version)

    def predict(self, definition: TaskDefinition, input_size: float,
                record: ResourceRecord, processors: int = 1) -> Prediction:
        """Evaluate Predict(task, R_j) for one host (memoized)."""
        key = self._cache_key(definition, input_size, record, processors)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base = definition.base_execution_time(input_size,
                                              processors=processors)
        weight = self.weight_for(definition, record)
        load = self.load_forecast_for(record)
        mem = self.memory_penalty_for(definition, input_size, record)
        estimate = base * weight * (1.0 + load) * mem
        prediction = Prediction(
            task_name=definition.name, host=record.address,
            estimate_s=estimate, base_time_s=base, weight=weight,
            load_forecast=load, memory_penalty=mem,
            feasible=record.status == "up")
        if len(self._cache) >= CACHE_MAX_ENTRIES:
            self._cache.clear()
        self._cache[key] = prediction
        return prediction

    def _estimate(self, definition: TaskDefinition, input_size: float,
                  record: ResourceRecord, processors: int) -> float:
        """The scalar estimate alone — no Prediction allocation.

        Serves :meth:`best_host`'s streaming scan: hosts that cannot win
        never get a Prediction object built for them.  Reuses a memoized
        Prediction when one exists but does not populate the cache.
        """
        cached = self._cache.get(
            self._cache_key(definition, input_size, record, processors))
        if cached is not None:
            return cached.estimate_s
        base = definition.base_execution_time(input_size,
                                              processors=processors)
        return (base * self.weight_for(definition, record)
                * (1.0 + self.load_forecast_for(record))
                * self.memory_penalty_for(definition, input_size, record))

    def estimate(self, definition: TaskDefinition, input_size: float,
                 record: ResourceRecord, processors: int = 1) -> float:
        """Public scalar Predict(task, R): estimate without diagnostics.

        The incremental host-selection views score thousands of
        candidates per delta batch; this is the allocation-free entry
        point they use.
        """
        return self._estimate(definition, input_size, record, processors)

    def best_host(self, definition: TaskDefinition, input_size: float,
                  records: list[ResourceRecord],
                  processors: int = 1,
                  diagnostics: list[Prediction] | None = None) -> Prediction:
        """The minimum-estimate feasible host among *records*.

        Deterministic tie-break on host address.  Raises
        :class:`NoFeasibleHostError` when every candidate is down or the
        list is empty — the caller (Host Selection Algorithm) has already
        applied constraint filtering.

        The scan streams the minimum: only the winner's Prediction is
        materialised.  Pass a *diagnostics* list to additionally receive
        the full evaluation for every up host (the pre-streaming
        behaviour, for callers that want to inspect the losers).
        """
        best_rec: ResourceRecord | None = None
        best_est = float("inf")
        for rec in records:
            if rec.status != "up":
                continue
            if diagnostics is not None:
                p = self.predict(definition, input_size, rec, processors)
                diagnostics.append(p)
                est = p.estimate_s
            else:
                est = self._estimate(definition, input_size, rec, processors)
            if est < best_est or (est == best_est and best_rec is not None
                                  and rec.address < best_rec.address):
                best_est = est
                best_rec = rec
        if best_rec is None:
            raise NoFeasibleHostError(
                f"no feasible host for task {definition.name!r} "
                f"among {len(records)} records")
        return self.predict(definition, input_size, best_rec, processors)
