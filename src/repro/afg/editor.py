"""The Application Editor.

Paper section 2.1: a web-based graphical interface through which "the
user can select/add new tasks, and/or click/drag icons" (task mode),
"specify connections between tasks" (link mode), and submit the graph for
execution (run mode).  This is the programmatic equivalent: the same
modal workflow and the same output contract (a validated
:class:`~repro.afg.graph.ApplicationFlowGraph`), with the pixels replaced
by an object model.

The editor is reached through a :class:`EditorSession`, which performs
the paper's login step ("After user authentication, the Application
Editor ... will be loaded into the user's local web browser").
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.afg.graph import ApplicationFlowGraph, Link, TaskNode
from repro.afg.properties import TaskProperties
from repro.repository.user_accounts import UserAccount, UserAccountsDB
from repro.tasklib.registry import LibraryRegistry
from repro.util.errors import EditorModeError, GraphError

TASK_MODE = "task"
LINK_MODE = "link"
RUN_MODE = "run"
MODES = (TASK_MODE, LINK_MODE, RUN_MODE)


class ApplicationEditor:
    """Modal AFG construction against a task-library registry."""

    #: maximum retained undo snapshots
    HISTORY_DEPTH = 50

    def __init__(self, registry: LibraryRegistry,
                 application_name: str = "application") -> None:
        self.registry = registry
        self.graph = ApplicationFlowGraph(name=application_name)
        self.mode = TASK_MODE
        self._next_icon = 1
        self._undo_stack: list[dict] = []
        self._redo_stack: list[dict] = []

    # -- undo / redo (snapshot-based) ----------------------------------------
    def _checkpoint(self) -> None:
        """Record the pre-mutation state; clears the redo history."""
        self._undo_stack.append(self.graph.to_dict())
        if len(self._undo_stack) > self.HISTORY_DEPTH:
            del self._undo_stack[0]
        self._redo_stack.clear()

    @property
    def can_undo(self) -> bool:
        return bool(self._undo_stack)

    @property
    def can_redo(self) -> bool:
        return bool(self._redo_stack)

    def undo(self) -> None:
        """Revert the most recent graph mutation."""
        if not self._undo_stack:
            raise EditorModeError("nothing to undo")
        self._redo_stack.append(self.graph.to_dict())
        self.graph = ApplicationFlowGraph.from_dict(
            self._undo_stack.pop(), self.registry)

    def redo(self) -> None:
        """Re-apply the most recently undone mutation."""
        if not self._redo_stack:
            raise EditorModeError("nothing to redo")
        self._undo_stack.append(self.graph.to_dict())
        self.graph = ApplicationFlowGraph.from_dict(
            self._redo_stack.pop(), self.registry)

    # -- modes --------------------------------------------------------------
    def set_mode(self, mode: str) -> None:
        """Switch between the editor's task / link / run modes."""
        if mode not in MODES:
            raise EditorModeError(f"unknown editor mode {mode!r}")
        self.mode = mode

    def _require_mode(self, mode: str, operation: str) -> None:
        if self.mode != mode:
            raise EditorModeError(
                f"{operation} requires {mode} mode (editor is in "
                f"{self.mode} mode)")

    # -- menus ------------------------------------------------------------
    def menu(self) -> dict[str, list[str]]:
        """The menu-driven task libraries, grouped by functionality."""
        return self.registry.menu()

    # -- task mode -----------------------------------------------------------
    def add_task(self, task_name: str, node_id: str | None = None,
                 position: tuple[float, float] | None = None) -> TaskNode:
        """Place a task icon in the active editor area."""
        self._require_mode(TASK_MODE, "add_task")
        self._checkpoint()
        definition = self.registry.resolve(task_name)
        if node_id is None:
            node_id = f"{task_name}-{self._next_icon}"
            self._next_icon += 1
        if position is None:
            position = (float(100 * len(self.graph.nodes)), 100.0)
        return self.graph.add_node(node_id, definition, position=position)

    def move_icon(self, node_id: str, position: tuple[float, float]) -> None:
        """Drag an icon to a new position."""
        self._require_mode(TASK_MODE, "move_icon")
        self._checkpoint()
        self.graph.node(node_id).position = tuple(position)

    def remove_task(self, node_id: str) -> None:
        """Delete an icon and all of its links (task mode only)."""
        self._require_mode(TASK_MODE, "remove_task")
        self._checkpoint()
        self.graph.remove_node(node_id)

    # -- link mode ------------------------------------------------------------
    def connect(self, src: str, src_port: str, dst: str,
                dst_port: str) -> Link:
        """Draw a dataflow link between two ports (link mode only)."""
        self._require_mode(LINK_MODE, "connect")
        self._checkpoint()
        return self.graph.add_link(src, src_port, dst, dst_port)

    def disconnect(self, link: Link) -> None:
        """Remove a previously drawn link (link mode only)."""
        self._require_mode(LINK_MODE, "disconnect")
        self._checkpoint()
        self.graph.remove_link(link)

    # -- property panel (any mode: it's a popup) -------------------------------
    def set_properties(self, node_id: str,
                       properties: TaskProperties) -> None:
        """The double-click popup panel of Figure 3."""
        node = self.graph.node(node_id)
        if properties.computation_mode == "parallel" and \
                not node.definition.parallel_capable:
            raise GraphError(
                f"task {node.task_name!r} does not support parallel mode")
        self._checkpoint()
        node.properties = properties

    def get_properties(self, node_id: str) -> TaskProperties:
        """Read a node's property panel."""
        return self.graph.node(node_id).properties

    # -- run mode -------------------------------------------------------------
    def submit(self) -> ApplicationFlowGraph:
        """Validate and hand over the AFG for scheduling."""
        self._require_mode(RUN_MODE, "submit")
        self.graph.validate(require_connected_inputs=True)
        return self.graph

    # -- persistence ("store the application flow graph for future use") ------
    def save(self, path: str | Path) -> None:
        """Store the (possibly draft) graph as JSON for future use."""
        Path(path).write_text(json.dumps(self.graph.to_dict(), indent=2))

    def load(self, path: str | Path) -> ApplicationFlowGraph:
        """Replace the working graph with a previously saved one."""
        data = json.loads(Path(path).read_text())
        self.graph = ApplicationFlowGraph.from_dict(data, self.registry)
        self._undo_stack.clear()
        self._redo_stack.clear()
        return self.graph


class EditorSession:
    """Authentication wrapper: the paper's URL-connection + login step."""

    def __init__(self, accounts: UserAccountsDB,
                 registry: LibraryRegistry) -> None:
        self.accounts = accounts
        self.registry = registry
        self.user: UserAccount | None = None

    def login(self, user_name: str, password: str) -> UserAccount:
        """Authenticate; raises AuthenticationError on failure."""
        self.user = self.accounts.authenticate(user_name, password)
        return self.user

    def open_editor(self, application_name: str = "application"
                    ) -> ApplicationEditor:
        """Load the Application Editor (post-authentication only)."""
        if self.user is None:
            raise EditorModeError("login required before opening the editor")
        return ApplicationEditor(self.registry,
                                 application_name=application_name)
