"""Application Flow Graph: the editor's dataflow program representation."""

from repro.afg.builder import GraphBuilder
from repro.afg.editor import (
    LINK_MODE,
    MODES,
    RUN_MODE,
    TASK_MODE,
    ApplicationEditor,
    EditorSession,
)
from repro.afg.graph import ApplicationFlowGraph, Link, TaskNode
from repro.afg.render import node_depths, render_graph, render_summary
from repro.afg.properties import (
    COMPUTATION_MODES,
    SERVICES,
    TaskProperties,
)

__all__ = [
    "ApplicationEditor",
    "ApplicationFlowGraph",
    "COMPUTATION_MODES",
    "EditorSession",
    "GraphBuilder",
    "LINK_MODE",
    "Link",
    "MODES",
    "RUN_MODE",
    "SERVICES",
    "TASK_MODE",
    "TaskNode",
    "node_depths",
    "render_graph",
    "render_summary",
    "TaskProperties",
]
