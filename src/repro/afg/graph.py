"""The Application Flow Graph (AFG).

Paper section 2.1: "The Application flow graph is a directed acyclic
graph, G = (T, L), where T is the set of tasks in the application and L
is a set of directed links among tasks.  A directed link (i, j) between
two tasks Ti and Tj of the application indicates that Ti must complete
its execution before Tj begins to run."

Nodes are :class:`TaskNode` instances referencing library tasks by name;
links connect a producer's output *port* to a consumer's input *port*
(the colored port markers on the editor icons).  The graph enforces DAG
structure and port validity at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.afg.properties import TaskProperties
from repro.tasklib.base import TaskDefinition
from repro.tasklib.registry import LibraryRegistry
from repro.util.errors import CycleError, GraphError, PortError


@dataclass
class TaskNode:
    """One task icon placed in the editor's active area."""

    node_id: str
    task_name: str
    definition: TaskDefinition
    properties: TaskProperties = field(default_factory=TaskProperties)
    position: tuple[float, float] = (0.0, 0.0)

    @property
    def input_ports(self) -> tuple[str, ...]:
        return self.definition.signature.inputs

    @property
    def output_ports(self) -> tuple[str, ...]:
        return self.definition.signature.outputs

    def base_cost(self) -> float:
        """Base-processor computation cost at this node's input size.

        This is the per-node computation cost used for level (priority)
        computation by the scheduler.
        """
        return self.definition.base_execution_time(
            self.properties.input_size,
            processors=(self.properties.processors
                        if self.properties.computation_mode == "parallel"
                        else 1))

    def output_bytes(self) -> float:
        """Communication size shipped along each outgoing link."""
        return self.definition.output_size_bytes(self.properties.input_size)

    def memory_mb(self) -> float:
        """Resident memory this node needs at its input size."""
        return self.definition.memory_required_mb(self.properties.input_size)


@dataclass(frozen=True)
class Link:
    """A directed dataflow+precedence edge between two ports."""

    src: str        # producer node id
    src_port: str
    dst: str        # consumer node id
    dst_port: str

    def __str__(self) -> str:
        return f"{self.src}.{self.src_port} -> {self.dst}.{self.dst_port}"


class ApplicationFlowGraph:
    """A validated DAG of library tasks: the editor's output artifact."""

    def __init__(self, name: str = "application") -> None:
        if not name:
            raise GraphError("application name may not be empty")
        self.name = name
        self.nodes: dict[str, TaskNode] = {}
        self.links: list[Link] = []
        self._succ: dict[str, list[Link]] = {}
        self._pred: dict[str, list[Link]] = {}

    def __len__(self) -> int:
        return len(self.nodes)

    # -- construction -------------------------------------------------------
    def add_node(self, node_id: str, definition: TaskDefinition,
                 properties: TaskProperties | None = None,
                 position: tuple[float, float] = (0.0, 0.0)) -> TaskNode:
        """Add a task node; ids are caller-chosen and unique."""
        if node_id in self.nodes:
            raise GraphError(f"node id {node_id!r} already in graph")
        if not node_id:
            raise GraphError("node id may not be empty")
        node = TaskNode(node_id=node_id, task_name=definition.name,
                        definition=definition,
                        properties=properties or TaskProperties(),
                        position=position)
        self.nodes[node_id] = node
        self._succ[node_id] = []
        self._pred[node_id] = []
        return node

    def add_link(self, src: str, src_port: str, dst: str,
                 dst_port: str) -> Link:
        """Connect ``src.src_port -> dst.dst_port``; validates everything."""
        for nid in (src, dst):
            if nid not in self.nodes:
                raise GraphError(f"unknown node {nid!r}")
        if src == dst:
            raise CycleError(f"self-loop on node {src!r}")
        src_node, dst_node = self.nodes[src], self.nodes[dst]
        if src_port not in src_node.output_ports:
            raise PortError(
                f"node {src!r} ({src_node.task_name}) has no output port "
                f"{src_port!r}; ports: {src_node.output_ports}")
        if dst_port not in dst_node.input_ports:
            raise PortError(
                f"node {dst!r} ({dst_node.task_name}) has no input port "
                f"{dst_port!r}; ports: {dst_node.input_ports}")
        for link in self._pred[dst]:
            if link.dst_port == dst_port:
                raise PortError(
                    f"input port {dst!r}.{dst_port!r} is already fed by "
                    f"{link.src!r}.{link.src_port!r}")
        if self._would_create_cycle(src, dst):
            raise CycleError(
                f"link {src!r} -> {dst!r} would create a cycle")
        link = Link(src=src, src_port=src_port, dst=dst, dst_port=dst_port)
        self.links.append(link)
        self._succ[src].append(link)
        self._pred[dst].append(link)
        return link

    def remove_link(self, link: Link) -> None:
        """Remove one link; raises when it is not in the graph."""
        try:
            self.links.remove(link)
        except ValueError:
            raise GraphError(f"link {link} not in graph") from None
        self._succ[link.src].remove(link)
        self._pred[link.dst].remove(link)

    def remove_node(self, node_id: str) -> None:
        """Remove a node and every link touching it."""
        if node_id not in self.nodes:
            raise GraphError(f"unknown node {node_id!r}")
        for link in list(self._succ[node_id]) + list(self._pred[node_id]):
            self.remove_link(link)
        del self.nodes[node_id]
        del self._succ[node_id]
        del self._pred[node_id]

    def _would_create_cycle(self, src: str, dst: str) -> bool:
        """True when dst already reaches src."""
        stack, seen = [dst], set()
        while stack:
            cur = stack.pop()
            if cur == src:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(link.dst for link in self._succ[cur])
        return False

    # -- structure queries -----------------------------------------------------
    def node(self, node_id: str) -> TaskNode:
        """Fetch a node by id; raises GraphError when unknown."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id!r}") from None

    def successors(self, node_id: str) -> list[str]:
        """Child node ids (one entry per outgoing link)."""
        self.node(node_id)
        return [link.dst for link in self._succ[node_id]]

    def predecessors(self, node_id: str) -> list[str]:
        """Parent node ids (one entry per incoming link)."""
        self.node(node_id)
        return [link.src for link in self._pred[node_id]]

    def in_links(self, node_id: str) -> list[Link]:
        """Incoming links of a node."""
        self.node(node_id)
        return list(self._pred[node_id])

    def out_links(self, node_id: str) -> list[Link]:
        """Outgoing links of a node."""
        self.node(node_id)
        return list(self._succ[node_id])

    def entry_nodes(self) -> list[str]:
        """Nodes with no parents (the scheduler's initial ready set)."""
        return [nid for nid in self.nodes if not self._pred[nid]]

    def exit_nodes(self) -> list[str]:
        """Nodes with no children (level computation anchors here)."""
        return [nid for nid in self.nodes if not self._succ[nid]]

    def topological_order(self) -> list[str]:
        """Kahn's algorithm; deterministic (insertion-order tie-break)."""
        indeg = {nid: len(self._pred[nid]) for nid in self.nodes}
        queue = [nid for nid in self.nodes if indeg[nid] == 0]
        order: list[str] = []
        while queue:
            nid = queue.pop(0)
            order.append(nid)
            for link in self._succ[nid]:
                indeg[link.dst] -= 1
                if indeg[link.dst] == 0:
                    queue.append(link.dst)
        if len(order) != len(self.nodes):
            raise CycleError("graph contains a cycle")  # pragma: no cover
        return order

    def validate(self, require_connected_inputs: bool = True) -> None:
        """Full validation pass, raising on the first problem.

        ``require_connected_inputs`` demands every input port be fed — a
        graph can be *saved* half-finished but not *submitted* (run mode).
        """
        if not self.nodes:
            raise GraphError("graph has no nodes")
        self.topological_order()  # raises CycleError if cyclic
        if require_connected_inputs:
            for nid, node in self.nodes.items():
                fed = {link.dst_port for link in self._pred[nid]}
                missing = set(node.input_ports) - fed
                if missing:
                    raise PortError(
                        f"node {nid!r} ({node.task_name}) has unconnected "
                        f"input ports: {sorted(missing)}")

    def critical_path_cost(self) -> float:
        """Sum of base costs along the most expensive path (lower bound
        on any schedule's makespan, ignoring communication)."""
        best: dict[str, float] = {}
        for nid in reversed(self.topological_order()):
            node_cost = self.nodes[nid].base_cost()
            child_best = max(
                (best[link.dst] for link in self._succ[nid]), default=0.0)
            best[nid] = node_cost + child_best
        return max(best.values(), default=0.0)

    def total_cost(self) -> float:
        """Sum of all base costs (serial execution lower bound)."""
        return sum(node.base_cost() for node in self.nodes.values())

    # -- serialisation ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "nodes": [
                {
                    "node_id": n.node_id,
                    "task_name": n.task_name,
                    "properties": n.properties.to_dict(),
                    "position": list(n.position),
                }
                for n in self.nodes.values()
            ],
            "links": [
                {"src": link.src, "src_port": link.src_port,
                 "dst": link.dst, "dst_port": link.dst_port}
                for link in self.links
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any],
                  registry: LibraryRegistry) -> "ApplicationFlowGraph":
        graph = cls(name=data["name"])
        for nd in data["nodes"]:
            definition = registry.resolve(nd["task_name"])
            graph.add_node(
                nd["node_id"], definition,
                properties=TaskProperties.from_dict(nd["properties"]),
                position=tuple(nd.get("position", (0.0, 0.0))))
        for ld in data["links"]:
            graph.add_link(ld["src"], ld["src_port"], ld["dst"],
                           ld["dst_port"])
        return graph
