"""Text rendering of application flow graphs.

The paper's editor draws clickable icons; headless environments get a
layered ASCII view instead: nodes grouped by longest-path depth (the
visual rows a dataflow editor would use), edges listed per node, and the
property-panel summary inline.  Used by the CLI and handy in tests.
"""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph


def node_depths(graph: ApplicationFlowGraph) -> dict[str, int]:
    """Longest-path depth from any entry node (entry = 0)."""
    depths: dict[str, int] = {}
    for nid in graph.topological_order():
        preds = graph.predecessors(nid)
        depths[nid] = 1 + max((depths[p] for p in preds), default=-1)
    return depths


def _props_summary(node) -> str:
    p = node.properties
    parts = []
    if p.computation_mode == "parallel":
        parts.append(f"parallel x{p.processors}")
    if p.machine_type:
        parts.append(p.machine_type)
    if p.preferred_site:
        parts.append(f"@{p.preferred_site}")
    if p.input_size != 100.0:
        parts.append(f"size={p.input_size:g}")
    return f" [{', '.join(parts)}]" if parts else ""


def render_graph(graph: ApplicationFlowGraph,
                 show_ports: bool = True) -> str:
    """Layered text view of *graph*."""
    if not graph.nodes:
        return f"{graph.name}: (empty)"
    depths = node_depths(graph)
    by_layer: dict[int, list[str]] = {}
    for nid, d in depths.items():
        by_layer.setdefault(d, []).append(nid)
    lines = [f"{graph.name} — {len(graph)} tasks, "
             f"{len(graph.links)} links"]
    for layer in sorted(by_layer):
        lines.append(f"  layer {layer}:")
        for nid in sorted(by_layer[layer]):
            node = graph.node(nid)
            lines.append(f"    [{nid}] {node.task_name}"
                         f"{_props_summary(node)}")
            for link in graph.out_links(nid):
                if show_ports:
                    lines.append(f"        {link.src_port} --> "
                                 f"{link.dst}.{link.dst_port}")
                else:
                    lines.append(f"        --> {link.dst}")
    return "\n".join(lines)


def render_summary(graph: ApplicationFlowGraph) -> str:
    """One-line-per-metric summary (critical path, width, cost)."""
    depths = node_depths(graph)
    width = max(
        sum(1 for d in depths.values() if d == layer)
        for layer in set(depths.values()))
    return "\n".join([
        f"application    : {graph.name}",
        f"tasks / links  : {len(graph)} / {len(graph.links)}",
        f"depth / width  : {max(depths.values()) + 1} / {width}",
        f"entry / exit   : {len(graph.entry_nodes())} / "
        f"{len(graph.exit_nodes())}",
        f"total cost     : {graph.total_cost():.3f} s (base processor)",
        f"critical path  : {graph.critical_path_cost():.3f} s",
    ])
