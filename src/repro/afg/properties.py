"""Per-task properties: the editor's double-click popup panel.

Paper section 2.1 / Figure 3: "A double click on any task icon generates
a popup panel that allows the user to specify (optional) preferences such
as computational mode (sequential or parallel), machine type, and the
number of processors to be used in a parallel implementation" — e.g. the
LU Decomposition task run in parallel on two Solaris nodes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.resources.host import ARCHITECTURES
from repro.util.errors import ConfigurationError

COMPUTATION_MODES = ("sequential", "parallel")

#: User-requestable runtime services (paper section 2.3.2).
SERVICES = ("io", "console", "visualization")


@dataclass
class TaskProperties:
    """Optional preferences attached to one AFG node."""

    computation_mode: str = "sequential"
    machine_type: str | None = None       # architecture preference
    processors: int = 1                   # parallel-mode node count
    preferred_site: str | None = None
    input_size: float = 100.0             # workload size for the perf model
    params: dict[str, Any] = field(default_factory=dict)
    requested_services: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.computation_mode not in COMPUTATION_MODES:
            raise ConfigurationError(
                f"computation mode must be one of {COMPUTATION_MODES}, "
                f"got {self.computation_mode!r}")
        if self.machine_type is not None and \
                self.machine_type not in ARCHITECTURES:
            raise ConfigurationError(
                f"unknown machine type {self.machine_type!r}")
        if self.processors < 1:
            raise ConfigurationError("processors must be >= 1")
        if self.computation_mode == "sequential" and self.processors != 1:
            raise ConfigurationError(
                "sequential mode requires exactly one processor")
        if self.input_size <= 0:
            raise ConfigurationError("input_size must be positive")
        for svc in self.requested_services:
            if svc not in SERVICES:
                raise ConfigurationError(
                    f"unknown service {svc!r}; expected one of {SERVICES}")

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["requested_services"] = list(self.requested_services)
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TaskProperties":
        d = dict(d)
        d["requested_services"] = tuple(d.get("requested_services", ()))
        return cls(**d)
