"""A fluent, non-modal AFG builder for programmatic construction.

The editor reproduces the paper's modal GUI workflow; tests, workload
generators, and library users who just want a graph use this builder
instead.  Single-port connections can omit port names: when the producer
has exactly one output and the consumer exactly one *unfilled* input, the
ports are inferred.
"""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph, TaskNode
from repro.afg.properties import TaskProperties
from repro.tasklib.registry import LibraryRegistry
from repro.util.errors import PortError


class GraphBuilder:
    """Chained construction of an :class:`ApplicationFlowGraph`."""

    def __init__(self, registry: LibraryRegistry,
                 name: str = "application") -> None:
        self.registry = registry
        self.graph = ApplicationFlowGraph(name=name)
        self._auto = 1

    def task(self, task_name: str, node_id: str | None = None,
             properties: TaskProperties | None = None,
             **prop_kwargs) -> str:
        """Add a node; returns its id.

        ``prop_kwargs`` build a :class:`TaskProperties` when *properties*
        is not given (e.g. ``input_size=200, params={"n": 200}``).
        """
        definition = self.registry.resolve(task_name)
        if node_id is None:
            node_id = f"{task_name}-{self._auto}"
            self._auto += 1
        if properties is None and prop_kwargs:
            properties = TaskProperties(**prop_kwargs)
        self.graph.add_node(node_id, definition, properties=properties)
        return node_id

    def link(self, src: str, dst: str, src_port: str | None = None,
             dst_port: str | None = None) -> "GraphBuilder":
        """Connect two nodes, inferring ports when unambiguous."""
        src_node = self.graph.node(src)
        dst_node = self.graph.node(dst)
        if src_port is None:
            outs = src_node.output_ports
            if len(outs) != 1:
                raise PortError(
                    f"node {src!r} has outputs {outs}; src_port required")
            src_port = outs[0]
        if dst_port is None:
            fed = {link.dst_port for link in self.graph.in_links(dst)}
            free = [p for p in dst_node.input_ports if p not in fed]
            if not free:
                raise PortError(f"node {dst!r} has no unfilled input ports")
            # Deterministic choice: first unfilled port in signature order.
            dst_port = free[0]
        self.graph.add_link(src, src_port, dst, dst_port)
        return self

    def chain(self, *node_ids: str) -> "GraphBuilder":
        """Link consecutive nodes in a pipeline."""
        for a, b in zip(node_ids, node_ids[1:]):
            self.link(a, b)
        return self

    def set_properties(self, node_id: str, **prop_kwargs) -> "GraphBuilder":
        """Replace a node's property panel from keyword arguments."""
        self.graph.node(node_id).properties = TaskProperties(**prop_kwargs)
        return self

    def node(self, node_id: str) -> TaskNode:
        """Access a node on the graph under construction."""
        return self.graph.node(node_id)

    def build(self, validate: bool = True) -> ApplicationFlowGraph:
        """Finish construction; validates by default."""
        if validate:
            self.graph.validate()
        return self.graph
