"""Scoring one schedule: predicted/simulated makespan, utilization,
imbalance, optimality gap.

Every registered scheduler optimises (explicitly or implicitly) the
predicted schedule length over the repository view; the bake-off scores
that objective *and* plays the allocation out against the execution
model's ground truth — the paper's claim is precisely that the
prediction-driven schedule survives contact with reality better than
naive placement.  The optimality gap is measured in the predicted
domain, against the branch-and-bound reference minimising the same
objective, so a gap of 0 means "as good as exhaustive search" and is
achievable by a heuristic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.afg.graph import ApplicationFlowGraph
from repro.prediction.predict import PerformancePredictor
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.makespan import Timeline, evaluate_schedule
from repro.testing import Federation


@dataclass(frozen=True)
class ScheduleScore:
    """One (scheduler, workload) cell of the bake-off matrix."""

    scheduler: str
    workload: str
    tasks: int
    predicted_makespan_s: float
    simulated_makespan_s: float
    total_transfer_s: float
    utilization: float          # busy host-seconds / (makespan * hosts)
    imbalance: float            # max host busy / mean host busy
    remote_fraction: float      # tasks placed off the submitting site
    optimality_gap: float | None  # predicted/optimal - 1 (None: no ref)

    def as_row(self) -> dict[str, object]:
        """Plain-dict view for tables and JSON."""
        return asdict(self)


def repository_predicted_durations(graph: ApplicationFlowGraph,
                                   table: ResourceAllocationTable,
                                   fed: Federation):
    """Duration function evaluating ``Predict`` on each assigned host.

    The *common* predicted objective: a baseline's allocation table
    carries only its own rough estimates, so scoring re-prices every
    assignment with the full prediction machinery of the assigned
    site's repository.  This is exactly the duration model the
    branch-and-bound reference minimises, which is what makes the
    optimality gap non-negative for every scheduler drawing from the
    same candidate space.
    """
    predictors = {site: PerformancePredictor(repo.task_performance)
                  for site, repo in sorted(fed.repositories.items())}

    def duration(node_id: str) -> float:
        entry = table.get(node_id)
        node = graph.node(node_id)
        repo = fed.repositories[entry.site]
        predictor = predictors[entry.site]
        return max(
            predictor.predict(
                node.definition, node.properties.input_size,
                repo.resource_performance.get(host),
                processors=entry.processors).estimate_s
            for host in entry.hosts)

    return duration


def ground_truth_durations(graph: ApplicationFlowGraph,
                           table: ResourceAllocationTable,
                           fed: Federation):
    """Duration function replaying the allocation on the execution model.

    Ground truth at the hosts' *current true* loads — what the scheduler
    tried to minimise but could only estimate through the repository.
    """

    def duration(node_id: str) -> float:
        entry = table.get(node_id)
        node = graph.node(node_id)
        host = fed.hosts[entry.host]
        return fed.model.duration(node.definition,
                                  node.properties.input_size, host,
                                  processors=entry.processors)

    return duration


def host_busy_seconds(table: ResourceAllocationTable,
                      timeline: Timeline) -> dict[str, float]:
    """Per-host busy time under *timeline* (parallel tasks occupy every
    participant for the full task duration)."""
    busy: dict[str, float] = {}
    for nid, entry in table.entries.items():
        duration = timeline.finish[nid] - timeline.start[nid]
        for host in entry.hosts:
            busy[host] = busy.get(host, 0.0) + duration
    return busy


def score_schedule(scheduler: str, workload: str,
                   graph: ApplicationFlowGraph,
                   table: ResourceAllocationTable,
                   fed: Federation, local_site: str,
                   optimal_makespan_s: float | None) -> ScheduleScore:
    """Evaluate one allocation table on every bake-off metric."""
    predicted_tl = evaluate_schedule(
        graph, table, fed.topology,
        duration_fn=repository_predicted_durations(graph, table, fed))
    simulated_tl = evaluate_schedule(
        graph, table, fed.topology,
        duration_fn=ground_truth_durations(graph, table, fed))
    busy = host_busy_seconds(table, simulated_tl)
    n_hosts = len(fed.hosts)
    makespan = simulated_tl.makespan
    total_busy = sum(busy.values())
    utilization = (total_busy / (makespan * n_hosts)
                   if makespan > 0 and n_hosts else 0.0)
    mean_busy = total_busy / n_hosts if n_hosts else 0.0
    imbalance = (max(busy.values()) / mean_busy
                 if busy and mean_busy > 0 else 0.0)
    gap: float | None = None
    if optimal_makespan_s is not None and optimal_makespan_s > 0:
        gap = predicted_tl.makespan / optimal_makespan_s - 1.0
    return ScheduleScore(
        scheduler=scheduler, workload=workload, tasks=len(graph),
        predicted_makespan_s=predicted_tl.makespan,
        simulated_makespan_s=makespan,
        total_transfer_s=simulated_tl.total_transfer(),
        utilization=utilization, imbalance=imbalance,
        remote_fraction=table.remote_fraction(local_site),
        optimality_gap=gap)
