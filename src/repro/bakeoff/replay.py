"""Scoring registered schedulers under sustained multi-tenant replay.

The classic bake-off (:mod:`repro.bakeoff.runner`) scores one AFG at a
time on an idle federation; this module scores schedulers under
*traffic*: the same deterministic arrival stream (an open-loop
generator from :mod:`repro.traffic`) is replayed against each
scheduler, every dispatch placed by the real scheduler through a
:class:`~repro.traffic.drf.DRFGatedScheduler` (the
``SchedulerContext.tenancy`` pre-filter), and each contestant is scored
on what sustained load actually exposes: tenant wait times, delivered
utilization, fairness, and predicted work.

Determinism: one :class:`ReplayBakeoffConfig` fixes the arrival bytes
(same generator stream per scheduler — spawned per scheduler name so
contestants never perturb each other), the federation, and the JSON
(:meth:`ReplayBakeoffResult.to_json`).
"""

from __future__ import annotations

import json
from collections.abc import Callable
from dataclasses import asdict, dataclass, field

from repro.experiments.measures import format_table
from repro.obs import OBS_OFF, Observability
from repro.scheduling.registry import SchedulerContext, create_scheduler
from repro.simcore.engine import Environment
from repro.tasklib import standard_registry
from repro.testing import build_federation
from repro.traffic.drf import (
    DRFAllocator,
    DRFGatedScheduler,
    TenantOverShareError,
    TenantShareFilter,
)
from repro.traffic.generators import OpenLoopGenerator, WorkloadShape
from repro.traffic.replay import ReplayEngine
from repro.traffic.templates import TEMPLATE_NAMES, template_by_name
from repro.traffic.tenancy import make_tenants, provision_tenants
from repro.traffic.trace import JobRequest
from repro.util.rng import RngRegistry

#: Default contestants: the optimal reference is excluded — a
#: branch-and-bound search per dispatched job is not a traffic regime.
DEFAULT_REPLAY_SCHEDULERS = ("site", "heft", "min-load", "round-robin")


@dataclass(frozen=True)
class ReplayBakeoffConfig:
    """Everything that determines a replay bake-off (and its JSON)."""

    schedulers: tuple[str, ...] = DEFAULT_REPLAY_SCHEDULERS
    seed: int = 7
    arrivals: int = 200
    users: int = 200
    tenants: int = 5
    rate_per_s: float = 2.0
    sites: tuple[str, ...] = ("syracuse", "rome")
    hosts_per_site: int = 3
    procs_per_site: int = 16
    memory_per_proc_mb: float = 512.0
    nproc_cap: int = 8


class ScheduledReplayBackend:
    """Site pools whose placement comes from a real registered scheduler.

    Each dispatch builds the job's AFG template, runs it through the
    DRF-gated scheduler, and occupies ``nproc`` processors at the site
    the scheduler put the job's entry task on (falling back to the
    most-free site when that site cannot seat the width).  Service time
    is the trace duration — identical across contestants, so wait and
    fairness differences are attributable to placement alone.
    """

    def __init__(self, env: Environment, scheduler_name: str,
                 ctx: SchedulerContext, procs_per_site: int) -> None:
        self.env = env
        self.inner = create_scheduler(scheduler_name, ctx)
        gate = ctx.tenancy
        assert isinstance(gate, TenantShareFilter)
        self.gate = gate
        self.registry = standard_registry()
        self.free: dict[str, int] = {
            site: procs_per_site for site in sorted(ctx.repositories)}
        self.procs_per_site = procs_per_site
        self.busy_proc_s: dict[str, float] = {site: 0.0
                                              for site in self.free}
        self._site_names = sorted(self.free)
        self.predicted_work_s = 0.0
        self.gate_refusals = 0

    def fits(self, req: JobRequest) -> bool:
        return any(self.free[site] >= req.nproc
                   for site in self._site_names)

    def ever_fits(self, req: JobRequest) -> bool:
        return req.nproc <= self.procs_per_site and bool(req.template)

    def _fallback_site(self, nproc: int) -> str:
        best, best_free = "", -1
        for site in self._site_names:
            free = self.free[site]
            if free >= nproc and free > best_free:
                best, best_free = site, free
        return best

    def start(self, req: JobRequest,
              on_complete: Callable[[], None]) -> None:
        template = template_by_name(req.template)
        graph = template.build(self.registry)
        # The engine has already charged this job's demand; un-charge it
        # around the gate check so ``admits`` prices the job as the
        # not-yet-granted request it logically is, then re-charge (the
        # engine owns the release at completion).
        demand = ReplayEngine.demand_of(req)
        allocator = self.gate.allocator
        allocator.release(req.tenant, demand)
        gated = DRFGatedScheduler(self.inner, self.gate, req.tenant,
                                  req.nproc, memory_mb=demand[1])
        try:
            table = gated.schedule(graph)
            entry = next(iter(table.entries.values()))
            site = entry.site
            self.predicted_work_s += table.predicted_total_work_s()
        except TenantOverShareError:  # engine pre-checks; belt-and-braces
            self.gate_refusals += 1
            site = ""
        finally:
            allocator.allocate(req.tenant, demand)
        if not site or self.free[site] < req.nproc:
            site = self._fallback_site(req.nproc)
        if not site:
            raise RuntimeError(
                f"no site can seat {req.nproc} processors for {req.job}")
        self.free[site] -= req.nproc
        self.env.call_later(req.duration_s, self._finish,
                            (site, req, on_complete))

    def _finish(self, handoff: tuple[str, JobRequest,
                                     Callable[[], None]]) -> None:
        site, req, on_complete = handoff
        self.free[site] += req.nproc
        self.busy_proc_s[site] += req.nproc * req.duration_s
        on_complete()


@dataclass
class ReplayBakeoffResult:
    """One row per scheduler, scored under identical replay load."""

    config: ReplayBakeoffConfig
    rows: list[dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        shown = []
        for row in self.rows:
            shown.append({key: (f"{value:.4f}"
                                if isinstance(value, float) else value)
                          for key, value in row.items()})
        title = (f"replay bake-off: {self.config.arrivals} arrivals, "
                 f"{self.config.tenants} tenants, seed {self.config.seed}")
        return format_table(title, shown)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, rounded floats, no wall-clock)."""
        payload = {
            "kind": "replay-bakeoff",
            "version": 1,
            "config": asdict(self.config),
            "rows": [
                {key: (round(value, 9) if isinstance(value, float)
                       else value)
                 for key, value in row.items()}
                for row in self.rows
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def run_replay_bakeoff(config: ReplayBakeoffConfig,
                       obs: Observability = OBS_OFF
                       ) -> ReplayBakeoffResult:
    """Replay the same arrival stream against every scheduler."""
    result = ReplayBakeoffResult(config=config)
    total_procs = len(config.sites) * config.procs_per_site
    for name in config.schedulers:
        rng = RngRegistry(config.seed)
        fed = build_federation(site_names=config.sites,
                               hosts_per_site=config.hosts_per_site,
                               seed=config.seed)
        tenants = make_tenants(config.tenants)
        provision_tenants(fed.repositories, tenants, users=config.users)
        allocator = DRFAllocator(
            capacity_procs=total_procs,
            capacity_memory_mb=total_procs * config.memory_per_proc_mb,
            tenants=tenants)
        gate = TenantShareFilter(allocator,
                                 mem_per_proc_mb=config.memory_per_proc_mb)
        env = Environment()
        ctx = SchedulerContext(
            repositories=fed.repositories, topology=fed.topology,
            local_site=config.sites[0],
            rng=rng.spawn(f"replay-bakeoff:{name}"), obs=obs,
            tenancy=gate)
        backend = ScheduledReplayBackend(env, name, ctx,
                                         config.procs_per_site)
        arrivals = OpenLoopGenerator(
            rng.spawn(name).stream("traffic-open-loop"),
            count=config.arrivals, rate_per_s=config.rate_per_s,
            users=config.users, tenants=config.tenants,
            templates=TEMPLATE_NAMES,
            shape=WorkloadShape(nproc_cap=config.nproc_cap))
        engine = ReplayEngine(env, arrivals, tenants, allocator, backend,
                              obs=obs)
        outcome = engine.run()
        dispatched = sum(s.dispatched for s in outcome.tenants.values())
        completed = sum(s.completed for s in outcome.tenants.values())
        busy = sum(backend.busy_proc_s.values())
        horizon = outcome.horizon_s or 1.0
        waits = [s.wait_sum_s for s in outcome.tenants.values()]
        service = [s.busy_proc_s for s in outcome.tenants.values()]
        square = sum(v * v for v in service)
        jain = ((sum(service) ** 2) / (len(service) * square)
                if square > 0 else 1.0)
        result.rows.append({
            "scheduler": name,
            "dispatched": dispatched,
            "completed": completed,
            "utilization": busy / (total_procs * horizon),
            "mean_wait_s": (sum(waits) / dispatched) if dispatched else 0.0,
            "jain_index": jain,
            "drf_violations": outcome.drf_violations,
            "gate_refusals": backend.gate_refusals,
            "predicted_work_s": backend.predicted_work_s,
            "horizon_s": horizon,
        })
    return result
