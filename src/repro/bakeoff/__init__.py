"""``repro.bakeoff`` — the scheduler bake-off harness.

ROADMAP item 2's deliverable: one entry point
(:func:`~repro.bakeoff.runner.run_bakeoff`, surfaced as the ``repro
bakeoff`` CLI subcommand) that runs N registry-listed schedulers over M
workloads, scores every cell (predicted + simulated makespan,
utilization, imbalance, optimality gap against the branch-and-bound
reference), and emits a text table plus deterministic JSON consumed by
CI (:mod:`repro.bakeoff.compare`).
"""

from repro.bakeoff.compare import (
    DEFAULT_GAP_TOLERANCE,
    check_json_against_baseline,
    compare_to_baseline,
)
from repro.bakeoff.replay import (
    DEFAULT_REPLAY_SCHEDULERS,
    ReplayBakeoffConfig,
    ReplayBakeoffResult,
    ScheduledReplayBackend,
    run_replay_bakeoff,
)
from repro.bakeoff.runner import (
    DEFAULT_WORKLOADS,
    BakeoffConfig,
    BakeoffResult,
    WorkloadBuilder,
    resolve_schedulers,
    resolve_workloads,
    run_bakeoff,
)
from repro.bakeoff.scoring import (
    ScheduleScore,
    ground_truth_durations,
    host_busy_seconds,
    repository_predicted_durations,
    score_schedule,
)

__all__ = [
    "BakeoffConfig",
    "BakeoffResult",
    "DEFAULT_GAP_TOLERANCE",
    "DEFAULT_REPLAY_SCHEDULERS",
    "DEFAULT_WORKLOADS",
    "ReplayBakeoffConfig",
    "ReplayBakeoffResult",
    "ScheduleScore",
    "ScheduledReplayBackend",
    "WorkloadBuilder",
    "run_replay_bakeoff",
    "check_json_against_baseline",
    "compare_to_baseline",
    "ground_truth_durations",
    "host_busy_seconds",
    "repository_predicted_durations",
    "resolve_schedulers",
    "resolve_workloads",
    "run_bakeoff",
    "score_schedule",
]
