"""Baseline regression check over bake-off JSON.

CI commits a known-good ``BENCH_bakeoff.json`` and fails the build when
any heuristic's optimality gap regresses by more than the tolerance
(absolute, in gap units: a scheduler at gap 0.05 with tolerance 0.10
may drift to 0.15 before failing).  New (scheduler, workload) cells are
allowed — they simply have no baseline yet — but cells present in the
baseline must not disappear.
"""

from __future__ import annotations

import json
from typing import Any

#: Maximum allowed optimality-gap increase vs the baseline (ISSUE 6:
#: "failing if any heuristic's optimality gap regresses >10%").
DEFAULT_GAP_TOLERANCE = 0.10


def _rows_by_cell(payload: dict[str, Any]) -> dict[tuple[str, str],
                                                   dict[str, Any]]:
    return {(row["scheduler"], row["workload"]): row
            for row in payload.get("rows", [])}


def compare_to_baseline(current: dict[str, Any], baseline: dict[str, Any],
                        tolerance: float = DEFAULT_GAP_TOLERANCE
                        ) -> list[str]:
    """Regression messages (empty = pass).

    Random placement is exempt from the gap gate — its gap is seed noise
    by construction — but its cells must still exist.
    """
    failures: list[str] = []
    current_rows = _rows_by_cell(current)
    for cell, base_row in sorted(_rows_by_cell(baseline).items()):
        scheduler, workload = cell
        row = current_rows.get(cell)
        if row is None:
            failures.append(
                f"({scheduler}, {workload}): present in baseline but "
                f"missing from this run")
            continue
        base_gap = base_row.get("optimality_gap")
        gap = row.get("optimality_gap")
        if base_gap is None:
            continue
        if gap is None:
            failures.append(
                f"({scheduler}, {workload}): baseline has an optimality "
                f"gap but this run computed none")
            continue
        if scheduler == "random":
            continue
        if gap > base_gap + tolerance:
            failures.append(
                f"({scheduler}, {workload}): optimality gap regressed "
                f"{base_gap:.4f} -> {gap:.4f} "
                f"(tolerance +{tolerance:.2f})")
    return failures


def check_json_against_baseline(current_json: str, baseline_path: str,
                                tolerance: float = DEFAULT_GAP_TOLERANCE
                                ) -> list[str]:
    """As :func:`compare_to_baseline`, reading the baseline from disk."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    return compare_to_baseline(json.loads(current_json), baseline,
                               tolerance=tolerance)
