"""The bake-off runner: N registered schedulers over M workloads.

One :func:`run_bakeoff` call builds a seeded federation (repositories
populated exactly as a running VDCE would populate them, deterministic
background loads drawn from a named rng stream), schedules every
workload with every requested scheduler, computes the branch-and-bound
optimal reference on AFGs small enough to search exhaustively, and
scores each cell (:mod:`repro.bakeoff.scoring`).

Everything is deterministic for a fixed :class:`BakeoffConfig`: the
federation, the load draws, each randomized scheduler's named rng
stream (spawned per (scheduler, workload), so reordering or dropping
schedulers never changes another's draws), and the canonical JSON
(:meth:`BakeoffResult.to_json`) — CI compares that byte stream against
a committed baseline.

Observability: each (scheduler, workload) evaluation runs inside a
``schedule-round`` span on a synthetic round clock (round *i* occupies
``[i, i+1)`` — the bake-off has no simulation time) and bumps the
per-scheduler ``bakeoff_rounds_total`` counter.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Mapping
from dataclasses import asdict, dataclass, field

from repro.afg.graph import ApplicationFlowGraph
from repro.bakeoff.scoring import ScheduleScore, score_schedule
from repro.experiments.measures import format_table
from repro.obs import OBS_OFF, Observability
from repro.scheduling.optimal import OptimalScheduler, SearchStats
from repro.scheduling.registry import (
    SchedulerContext,
    available_schedulers,
    create_scheduler,
)
from repro.tasklib import LibraryRegistry, standard_registry
from repro.testing import Federation, build_federation
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry
from repro.workloads.applications import (
    fork_join_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    random_layered_graph,
)

WorkloadBuilder = Callable[[LibraryRegistry], ApplicationFlowGraph]

#: The default bake-off workloads: small, structurally diverse AFGs —
#: all within the optimal reference's reach, so every cell gets a gap.
DEFAULT_WORKLOADS: dict[str, WorkloadBuilder] = {
    "solver-small": lambda reg: linear_solver_graph(reg, n=60),
    "pipeline-small": lambda reg: fourier_pipeline_graph(reg, n=2048,
                                                         stages=2),
    "forkjoin-small": lambda reg: fork_join_graph(reg, width=2, size=1024),
    "layered-a": lambda reg: random_layered_graph(reg, layers=2, width=2,
                                                  size=1024, seed=1),
    "layered-b": lambda reg: random_layered_graph(reg, layers=2, width=2,
                                                  size=2048, seed=2),
}


@dataclass(frozen=True)
class BakeoffConfig:
    """Everything that determines a bake-off run (and its JSON bytes)."""

    schedulers: tuple[str, ...]
    workloads: tuple[str, ...]
    seed: int = 0
    sites: tuple[str, ...] = ("syracuse", "rome")
    hosts_per_site: int = 3
    k_remote_sites: int = 2
    load_samples: int = 3          # monitoring updates per host
    load_drift: float = 0.15       # post-report true-load staleness
    optimal_task_limit: int = 9    # skip the reference above this
    optimal_node_budget: int = 2_000_000


@dataclass
class BakeoffResult:
    """Scores + optimal references from one run."""

    config: BakeoffConfig
    scores: list[ScheduleScore]
    optimal: dict[str, SearchStats] = field(default_factory=dict)

    def score_for(self, scheduler: str, workload: str) -> ScheduleScore:
        for s in self.scores:
            if s.scheduler == scheduler and s.workload == workload:
                return s
        raise KeyError(f"no score for ({scheduler!r}, {workload!r})")

    def render(self) -> str:
        """Aligned text table, one block per workload."""
        blocks = []
        for workload in self.config.workloads:
            rows = []
            for s in self.scores:
                if s.workload != workload:
                    continue
                row = s.as_row()
                row.pop("workload")
                row.pop("tasks")
                rows.append(row)
            ref = self.optimal.get(workload)
            title = (f"{workload} ({ref.tasks} tasks; optimal "
                     f"{ref.makespan_s:.3f}s predicted, "
                     f"{ref.nodes_explored} nodes explored)"
                     if ref is not None else
                     f"{workload} (no optimal reference: too large)")
            blocks.append(format_table(title, rows))
        return "\n\n".join(blocks)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, rounded floats, no wall-clock —
        byte-identical across same-config runs (the CI contract)."""
        payload = {
            "kind": "bakeoff",
            "version": 1,
            "config": asdict(self.config),
            "optimal": {
                workload: {
                    "tasks": stats.tasks,
                    "candidates_total": stats.candidates_total,
                    "nodes_explored": stats.nodes_explored,
                    "nodes_pruned": stats.nodes_pruned,
                    "makespan_s": _round(stats.makespan_s),
                    "proven_optimal": stats.proven_optimal,
                }
                for workload, stats in sorted(self.optimal.items())
            },
            "rows": [
                {k: (_round(v) if isinstance(v, float) else v)
                 for k, v in score.as_row().items()}
                for score in self.scores
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _round(value: float, digits: int = 9) -> float:
    return round(float(value), digits)


def resolve_schedulers(spec: str) -> tuple[str, ...]:
    """Parse a CLI ``--schedulers`` value: ``all`` or a comma list."""
    if spec == "all":
        return tuple(available_schedulers())
    names = tuple(n.strip() for n in spec.split(",") if n.strip())
    if not names:
        raise ConfigurationError("no schedulers requested")
    return names


def resolve_workloads(spec: str) -> tuple[str, ...]:
    """Parse a CLI ``--workloads`` value: ``default`` or a comma list."""
    if spec == "default":
        return tuple(DEFAULT_WORKLOADS)
    names = tuple(n.strip() for n in spec.split(",") if n.strip())
    if not names:
        raise ConfigurationError("no workloads requested")
    for name in names:
        if name not in DEFAULT_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {name!r}; available: "
                f"{', '.join(DEFAULT_WORKLOADS)}")
    return names


def _inject_loads(fed: Federation, config: BakeoffConfig,
                  rng: RngRegistry) -> None:
    """Seeded background loads, mirrored into ground truth + repository.

    Draws come from the named ``bakeoff-loads`` stream in sorted host
    order, so the load landscape is a pure function of the seed.  Each
    host gets ``load_samples`` monitoring updates (the forecaster reads
    the measurement window, not a single point); the true load then
    drifts by up to ``load_drift`` *after* the last report, modelling
    the monitoring pipeline's staleness — the simulated makespan plays
    out against the drifted truth while every scheduler only saw the
    reported window.
    """
    loads = rng.stream("bakeoff-loads")
    for address in sorted(fed.hosts):
        host = fed.hosts[address]
        host.true_load = float(loads.uniform(0.0, 1.2))
        repo = fed.repositories[host.site]
        for i in range(config.load_samples):
            repo.resource_performance.update_dynamic(
                address, cpu_load=host.cpu_load,
                available_memory_mb=host.memory_available_mb,
                time=float(i))
        drift = float(loads.uniform(-config.load_drift, config.load_drift))
        host.true_load = max(0.0, host.true_load + drift)


def run_bakeoff(config: BakeoffConfig,
                registry: LibraryRegistry | None = None,
                workload_builders: Mapping[str, WorkloadBuilder]
                | None = None,
                obs: Observability | None = None,
                incremental: bool = True) -> BakeoffResult:
    """Run every requested scheduler over every requested workload.

    *incremental* toggles delta-aware host selection in every scheduler
    context; results are identical either way (the CI bakeoff job pins
    the JSON bytes), only the hot-path cost differs.  It is deliberately
    not a :class:`BakeoffConfig` field so flipping it cannot perturb the
    serialized baseline.
    """
    registry = registry or standard_registry()
    builders = dict(workload_builders or DEFAULT_WORKLOADS)
    obs = obs if obs is not None else OBS_OFF
    rng = RngRegistry(config.seed)
    fed = build_federation(site_names=config.sites,
                           hosts_per_site=config.hosts_per_site,
                           seed=config.seed, registry=registry)
    _inject_loads(fed, config, rng)
    local_site = config.sites[0]
    result = BakeoffResult(config=config, scores=[])
    round_clock = 0.0
    for workload in config.workloads:
        try:
            builder = builders[workload]
        except KeyError:
            raise ConfigurationError(
                f"unknown workload {workload!r}; available: "
                f"{', '.join(sorted(builders))}") from None
        graph = builder(registry)
        # -- the ground-truth reference (small AFGs only) ----------------
        optimal_table = None
        optimal_makespan: float | None = None
        if len(graph) <= config.optimal_task_limit:
            reference = OptimalScheduler(
                fed.repositories, fed.topology,
                node_budget=config.optimal_node_budget, obs=obs)
            optimal_table, stats = reference.search(graph)
            result.optimal[workload] = stats
            optimal_makespan = stats.makespan_s
        # -- every contestant --------------------------------------------
        for name in config.schedulers:
            ctx = SchedulerContext(
                repositories=fed.repositories, topology=fed.topology,
                local_site=local_site,
                k_remote_sites=config.k_remote_sites,
                rng=rng.spawn(f"bakeoff:{name}:{workload}"), obs=obs,
                incremental=incremental)
            span_id = None
            if obs.enabled:
                span_id = obs.spans.begin(
                    f"bakeoff:{name}:{workload}", "schedule-round",
                    "bakeoff", round_clock, scheduler=name,
                    workload=workload)
            if name == "optimal" and optimal_table is not None:
                table = optimal_table  # the reference *is* its own run
            else:
                table = create_scheduler(name, ctx).schedule(graph)
            result.scores.append(score_schedule(
                name, workload, graph, table, fed, local_site,
                optimal_makespan))
            if obs.enabled and span_id is not None:
                obs.spans.end(span_id, round_clock + 1.0,
                              tasks=len(graph))
                obs.metrics.counter(
                    "bakeoff_rounds_total",
                    help="bake-off schedule rounds evaluated").inc(
                        scheduler=name)
            round_clock += 1.0
    return result
