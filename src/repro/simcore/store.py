"""FIFO stores: the mailbox primitive used by simulated daemons.

A :class:`Store` is an unbounded (or capacity-bounded) FIFO queue whose
``get`` returns an event a process can wait on — the basic building block
for monitor→group-manager reports, site-manager request queues, and the
Data Manager's channel endpoints.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.simcore.engine import Environment, Event
from repro.util.errors import SimulationError


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""


class StorePut(Event):
    """Pending insertion into a capacity-bounded :class:`Store`."""

    def __init__(self, env: Environment, item: Any) -> None:
        super().__init__(env)
        self.item = item


class Store:
    """An ordered FIFO queue of items with waitable get/put.

    ``capacity`` of ``None`` means unbounded (puts always succeed
    immediately); otherwise puts block while the store is full.
    """

    def __init__(self, env: Environment, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()
        self._putters: deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Insert *item*; returns an event that triggers once stored."""
        ev = StorePut(self.env, item)
        hb = self.env._hb
        if hb is not None:
            hb.store_put(ev)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def put_nowait(self, item: Any) -> None:
        """Insert *item* without building a :class:`StorePut` event.

        The mailbox fast path for unbounded stores: a put into an
        unbounded store always succeeds immediately, so the pending-put
        event ``put`` allocates (and the no-op trigger it schedules) is
        pure overhead when the caller does not wait on it.  Hands the
        item straight to the oldest waiting getter when one exists —
        the same outcome ``_dispatch`` would produce, minus the
        intermediate buffer hop.  Falls back to :meth:`put` on bounded
        stores (where blocking semantics matter).
        """
        if self.capacity is not None:
            self.put(item)
            return
        if self._getters and not self.items:
            # Direct handoff: the putter's context triggers the getter's
            # event, so the happens-before edge rides the trigger clock.
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)
            hb = self.env._hb
            if hb is not None:
                hb.store_append(self)

    def get(self) -> StoreGet:
        """Return an event that triggers with the oldest item."""
        ev = StoreGet(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Any | None:
        """Non-blocking get: the oldest item or ``None`` when empty."""
        if self.items:
            item = self.items.popleft()
            hb = self.env._hb
            if hb is not None:
                hb.store_taken(self)
            self._dispatch()
            return item
        return None

    def _dispatch(self) -> None:
        hb = self.env._hb
        progressed = True
        while progressed:
            progressed = False
            # Move waiting puts into the buffer while there is room.
            while self._putters and (
                self.capacity is None or len(self.items) < self.capacity
            ):
                put = self._putters.popleft()
                self.items.append(put.item)
                if hb is not None:
                    hb.store_buffered(self, put)
                put.succeed()
                progressed = True
            # Satisfy waiting gets from the buffer.
            while self._getters and self.items:
                get = self._getters.popleft()
                item = self.items.popleft()
                if hb is not None:
                    hb.store_handoff(self, get)
                get.succeed(item)
                progressed = True
