"""Structured event tracing.

Every significant happening in the simulated VDCE (load report, echo
packet, schedule decision, channel setup, task start/finish, failure) is
recorded as a :class:`TraceRecord`.  The visualization services (paper
section 2.3.2) and the benchmark harness are both consumers of the trace.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped happening."""

    time: float
    category: str
    actor: str
    detail: dict[str, Any] = field(default_factory=dict)

    def matches(self, category: str | None = None,
                actor: str | None = None) -> bool:
        """True when the record matches the given filters."""
        if category is not None and self.category != category:
            return False
        if actor is not None and self.actor != actor:
            return False
        return True


class Tracer:
    """Append-only trace with filtered queries and live subscribers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def record(self, time: float, category: str, actor: str,
               **detail: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time=time, category=category, actor=actor,
                          detail=detail)
        self.records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live callback invoked on every new record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent).

        Without this, consumers sharing one tracer across runs (e.g. a
        view re-attached per run) accumulate subscribers forever — every
        record fans out to every stale callback of every earlier run.
        """
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @property
    def subscriber_count(self) -> int:
        """Number of live subscribers (leak probe for reused tracers)."""
        return len(self._subscribers)

    def query(self, category: str | None = None,
              actor: str | None = None,
              since: float = float("-inf"),
              until: float = float("inf")) -> Iterator[TraceRecord]:
        """Iterate records filtered by category/actor/time window."""
        for rec in self.records:
            if since <= rec.time <= until and rec.matches(category, actor):
                yield rec

    def count(self, category: str | None = None,
              actor: str | None = None) -> int:
        """Number of records matching the filters."""
        return sum(1 for _ in self.query(category, actor))

    def categories(self) -> dict[str, int]:
        """Histogram of record counts per category."""
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.category] = out.get(rec.category, 0) + 1
        return out

    def clear(self, subscribers: bool = False) -> None:
        """Drop every record; with ``subscribers=True`` also drop those.

        ``clear(subscribers=True)`` is the full reset for a tracer shared
        across runs: records and the subscriber list both go, so a new
        run starts with no stale fan-out targets.
        """
        self.records.clear()
        if subscribers:
            self._subscribers.clear()
