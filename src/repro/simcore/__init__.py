"""Discrete-event simulation substrate (clock, events, processes, stores)."""

from repro.simcore.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.simcore.store import Store, StoreGet, StorePut
from repro.simcore.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
