"""A deterministic discrete-event simulation kernel.

This is the substrate substituting for the paper's physical NYNET/campus
testbed: monitors, group managers, schedulers, data-manager proxies and
task executions all run as cooperating generator-based processes over a
simulated clock.  The kernel is a compact subset of the SimPy programming
model (events, processes, timeouts, interrupts) implemented from scratch
so the reproduction has no external runtime dependencies.

Determinism: events scheduled for the same simulated time are executed in
schedule order (a monotone sequence number breaks ties), so a fixed seed
yields an identical trace on every run.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from typing import Any

from repro.util.errors import SimulationError

#: Sentinel priority bands: urgent events (process resumption) run before
#: normal events scheduled for the same instant.
URGENT = 0
NORMAL = 1


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, is *triggered* (scheduled with a value or an
    exception), and finally *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._ok: bool | None = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value accessed before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value accessed before trigger")
        if not self._ok:
            raise SimulationError("event failed; no value") from self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* (now)."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* (now)."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exception = exception
        self.env._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay=delay, priority=NORMAL)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The Application Controller uses this to terminate an over-loaded task
    execution before issuing a rescheduling request (paper section 2.3.1).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A generator-based simulated process.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event is processed, receiving its value (or the exception
    if the event failed).  The process itself is an event that triggers
    when the generator returns, so processes can wait on one another.
    """

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any],
                 name: str | None = None) -> None:
        if not isinstance(gen, Generator):
            raise SimulationError(
                "Process requires a generator (did you call the function?)")
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: resume the generator as soon as the env runs.
        boot = Event(env)
        boot._ok = True
        boot.callbacks.append(self._resume)
        env._enqueue(boot, delay=0.0, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        hit = Event(self.env)
        hit._ok = False
        hit._exception = Interrupt(cause)
        hit.callbacks.append(self._resume)
        self.env._enqueue(hit, delay=0.0, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                target = self.gen.send(event._value)
            else:
                target = self.gen.throw(event._exception)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._enqueue(self, delay=0.0, priority=NORMAL)
            return
        except Interrupt:
            # Uncaught interrupt terminates the process "successfully
            # cancelled": the interruptor asked for termination.
            self._ok = True
            self._value = None
            self.env._enqueue(self, delay=0.0, priority=NORMAL)
            return
        except Exception as exc:
            self._ok = False
            self._exception = exc
            # Record the crash so silent daemon deaths are diagnosable:
            # a failed process with no waiter would otherwise vanish.
            self.env.failed_processes.append((self.env.now, self.name, exc))
            self.env._enqueue(self, delay=0.0, priority=NORMAL)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event")
        if target.callbacks is None:
            # Already processed: resume immediately (next tick, urgent).
            relay = Event(self.env)
            relay._ok = target._ok
            relay._value = target._value
            relay._exception = target._exception
            relay.callbacks.append(self._resume)
            self.env._enqueue(relay, delay=0.0, priority=URGENT)
            self._target = relay
        else:
            target.callbacks.append(self._resume)
            self._target = target


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Value is the list of child values in the order given.  Fails with the
    first child failure.
    """

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._exception or SimulationError("child event failed"))
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is ``(index, value)``."""

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for i, ev in enumerate(self._events):
            cb = self._make_cb(i)
            if ev.callbacks is None:
                cb(ev)
            else:
                ev.callbacks.append(cb)

    def _make_cb(self, index: int):
        def _cb(ev: Event) -> None:
            if self.triggered:
                return
            if ev._ok:
                self.succeed((index, ev._value))
            else:
                self.fail(ev._exception or SimulationError("child event failed"))
        return _cb


class Environment:
    """The simulation environment: clock + event queue + process factory."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        #: (time, process name, exception) for every process that died on
        #: an unhandled exception — inspect after a run to catch silent
        #: daemon crashes.
        self.failed_processes: list[tuple[float, str, Exception]] = []

    @property
    def now(self) -> float:
        """Current simulated time (seconds by library convention)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event (trigger with succeed/fail)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        """Launch a generator as a simulated process."""
        return Process(self, gen, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """An event firing when every child has fired."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """An event firing with the first child that fires."""
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue time went backwards")
        self._now = when
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, *until* time passes, or event fires.

        Returns the event's value when *until* is an :class:`Event`.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)")
                self.step()
            if stop._ok:
                return stop._value
            raise stop._exception  # type: ignore[misc]
        horizon = float("inf") if until is None else float(until)
        if horizon != float("inf") and horizon < self._now:
            raise SimulationError(f"run(until={horizon}) is in the past "
                                  f"(now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None
