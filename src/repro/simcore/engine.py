"""A deterministic discrete-event simulation kernel.

This is the substrate substituting for the paper's physical NYNET/campus
testbed: monitors, group managers, schedulers, data-manager proxies and
task executions all run as cooperating generator-based processes over a
simulated clock.  The kernel is a compact subset of the SimPy programming
model (events, processes, timeouts, interrupts) implemented from scratch
so the reproduction has no external runtime dependencies.

Determinism: events scheduled for the same simulated time are executed in
schedule order (a monotone sequence number breaks ties), so a fixed seed
yields an identical trace on every run.

Every class here carries ``__slots__`` and the hot paths (timeout
construction, process resume, the run loop) avoid property dispatch and
intermediate allocations; see docs/performance.md for the measured
effect.  Queue entries are ``(time, priority, seq, item)`` tuples and the
unique ``seq`` guarantees the item itself is never compared, so the queue
can hold both events and the lighter :class:`_Resume` records.

The ``callbacks`` attribute is polymorphic to keep the dominant
"one process waits on one event" pattern allocation-free:

* ``_NO_WAITERS`` — fresh event, nothing attached (no list built yet);
* a bound ``Process._resume`` method — exactly one process waits
  (stored directly, no list, no append, and the run loop dispatches it
  with a bare call);
* a ``list`` — the general case (multiple waiters / plain callbacks);
* ``None`` — the event has been processed.

All transitions go through :func:`_attach` or the run loop; nothing
outside this module touches ``callbacks``.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from heapq import heappop, heappush
from itertools import count
from typing import Any

from repro.util.errors import SimulationError

#: Sentinel priority bands: urgent events (process resumption) run before
#: normal events scheduled for the same instant.
URGENT = 0
NORMAL = 1


class _NoWaiters:
    """Singleton marking an event nobody has attached to yet.

    Distinct from ``None`` (which means *processed*) and from an empty
    list (which would cost an allocation per event).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<no waiters>"


_NO_WAITERS = _NoWaiters()


def _attach(event: "Event", callback: Callable[["Event"], None]) -> None:
    """Attach *callback* to a not-yet-processed event, upgrading the
    ``callbacks`` representation as needed (see module docstring)."""
    cbs = event.callbacks
    if type(cbs) is list:
        cbs.append(callback)
    elif cbs is _NO_WAITERS:
        event.callbacks = [callback]
    else:  # a single waiter's bound resume: expand to the general form
        event.callbacks = [cbs, callback]


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, is *triggered* (scheduled with a value or an
    exception), and finally *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Any = _NO_WAITERS
        self._value: Any = None
        self._exception: BaseException | None = None
        self._ok: bool | None = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value accessed before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value accessed before trigger")
        if not self._ok:
            raise SimulationError("event failed; no value") from self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* (now)."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        hb = env._hb
        if hb is not None:
            hb.on_trigger(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* (now)."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exception = exception
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        hb = env._hb
        if hb is not None:
            hb.on_trigger(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if type(callbacks) is list:
            for cb in callbacks:
                cb(self)
        elif callbacks is not _NO_WAITERS and callbacks is not None:
            callbacks(self)  # a single waiter's bound resume


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Prefer :meth:`Environment.timeout`, which builds the same object
    through a fast path that skips this constructor.  The delay is not
    retained on the instance — the heap entry carries the absolute fire
    time, and storing it would cost the hottest allocation site a write
    nothing ever reads back.
    """

    __slots__ = ()

    #: Class-level state shadowing the parent's slots: a timeout is born
    #: triggered and can never fail, so no instance ever stores either
    #: field (``succeed``/``fail`` reject re-triggering before writing).
    _ok = True
    _exception = None

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = _NO_WAITERS
        self._value = value
        heappush(env._queue, (env._now + delay, NORMAL, next(env._seq), self))


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The Application Controller uses this to terminate an over-loaded task
    execution before issuing a rescheduling request (paper section 2.3.1).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Resume:
    """Queue entry resuming a process from an already-processed event.

    Replaces the relay-``Event`` allocation the kernel used to make for
    this case: it carries no callback list and no state of its own, just
    the process to resume and the (processed) event whose outcome to
    deliver.  ``process`` is set to ``None`` to cancel the pending resume
    (the interrupt path), mirroring callback removal on a real event.
    """

    __slots__ = ("process", "event")

    #: class-level marker: lets the run loop tell a resume record from an
    #: event (whose ``callbacks`` is a list while queued) without a type
    #: check, and reads as "already processed" everywhere else.
    callbacks = None

    def __init__(self, process: "Process", event: "Event") -> None:
        self.process = process
        self.event = event

    def _run_callbacks(self) -> None:
        process = self.process
        if process is not None:
            process._resume(self.event)


class _Callback:
    """Queue entry invoking a plain function at its scheduled time.

    The batched-delivery primitive behind :meth:`Environment.call_later`:
    one heap entry carries one function and one argument (typically a
    list the caller keeps appending to until the entry fires), so a
    same-tick fan-out of N messages costs one push + one callback loop
    instead of N process bootstraps.  Like :class:`_Resume` it rides the
    run loop's ``callbacks is None`` path and never compares against
    other queue items (the seq number is always the tie-break).
    """

    __slots__ = ("fn", "arg")

    #: class-level marker, same trick as :class:`_Resume`: the run loop
    #: dispatches ``callbacks is None`` items via ``_run_callbacks``.
    callbacks = None

    def __init__(self, fn: Callable[[Any], None], arg: Any) -> None:
        self.fn = fn
        self.arg = arg

    def _run_callbacks(self) -> None:
        self.fn(self.arg)


class _InitEvent:
    """The shared bootstrap outcome delivered to every new process."""

    __slots__ = ()
    _ok = True
    _value = None
    _exception = None


_INIT = _InitEvent()


class Process(Event):
    """A generator-based simulated process.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event is processed, receiving its value (or the exception
    if the event failed).  The process itself is an event that triggers
    when the generator returns, so processes can wait on one another.
    """

    __slots__ = ("gen", "name", "_target", "_send", "_throw", "_resume_cb")

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any],
                 name: str | None = None) -> None:
        if not isinstance(gen, Generator):
            raise SimulationError(
                "Process requires a generator (did you call the function?)")
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Event | _Resume | None = None
        # Per-resume allocations cached once: the generator's send/throw
        # and this process's own resume callback (a fresh bound method
        # per yield would be the kernel's largest remaining allocation).
        self._send = gen.send
        self._throw = gen.throw
        self._resume_cb = self._resume
        # Bootstrap: resume the generator as soon as the env runs.
        heappush(env._queue, (env._now, URGENT, next(env._seq),
                              _Resume(self, _INIT)))
        hb = env._hb
        if hb is not None:
            hb.on_spawn(self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._ok is not None:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._target
        if target is not None:
            if type(target) is _Resume:
                target.process = None
            else:
                cbs = target.callbacks
                if cbs is self._resume_cb:
                    target.callbacks = _NO_WAITERS
                elif type(cbs) is list:
                    try:
                        cbs.remove(self._resume_cb)
                    except ValueError:
                        pass
        self._target = None
        env = self.env
        hit = Event(env)
        hit._ok = False
        hit._exception = Interrupt(cause)
        hit.callbacks = self._resume_cb
        heappush(env._queue, (env._now, URGENT, next(env._seq), hit))
        hb = env._hb
        if hb is not None:
            hb.on_trigger(hit)

    def _resume(self, event: Event, _mark=_NO_WAITERS) -> None:
        # ``env._active_process`` is set here and cleared lazily when the
        # run loop exits (run()/step()): between callbacks nothing
        # executes that could observe it, and skipping the per-resume
        # clear saves a store on the kernel's hottest path.
        self.env._active_process = self
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._exception)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self._finalize()
            return
        except Interrupt:
            # Uncaught interrupt terminates the process "successfully
            # cancelled": the interruptor asked for termination.
            self._ok = True
            self._value = None
            self._finalize()
            return
        except Exception as exc:
            self._ok = False
            self._exception = exc
            # Record the crash so silent daemon deaths are diagnosable:
            # a failed process with no waiter would otherwise vanish.
            env = self.env
            env.failed_processes.append((env._now, self.name, exc))
            self._finalize()
            return

        try:
            callbacks = target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event") from None
        if callbacks is _mark:
            # Sole waiter — the dominant pattern: store the cached bound
            # resume directly, no list, no append.
            target.callbacks = self._resume_cb
            self._target = target
        elif callbacks is None:
            # Already processed: resume directly (next tick, urgent)
            # through the queue — no relay Event allocation.
            resume = _Resume(self, target)
            env = self.env
            heappush(env._queue, (env._now, URGENT, next(env._seq),
                                  resume))
            self._target = resume
        elif type(callbacks) is list:
            callbacks.append(self._resume_cb)
            self._target = target
        else:  # one process already waits: expand to the general form
            target.callbacks = [callbacks, self._resume_cb]
            self._target = target

    def _finalize(self) -> None:
        """Schedule the terminated process's own event and drop the cached
        bound methods (``_resume_cb`` forms a reference cycle with the
        process; clearing it restores prompt refcount collection)."""
        env = self.env
        self._target = None
        self._send = self._throw = self._resume_cb = None  # type: ignore[assignment]
        heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        hb = env._hb
        if hb is not None:
            hb.on_trigger(self)


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Value is the list of child values in the order given.  Fails with the
    first child failure.
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._on_child(ev)
            else:
                _attach(ev, self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._ok is not None:
            return
        if not ev._ok:
            self.fail(ev._exception or SimulationError("child event failed"))
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is ``(index, value)``."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: list[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for i, ev in enumerate(self._events):
            cb = self._make_cb(i)
            if ev.callbacks is None:
                cb(ev)
            else:
                _attach(ev, cb)

    def _make_cb(self, index: int):
        def _cb(ev: Event) -> None:
            if self._ok is not None:
                return
            if ev._ok:
                self.succeed((index, ev._value))
            else:
                self.fail(ev._exception or SimulationError("child event failed"))
        return _cb


def _compile_timeout():
    """Build :meth:`Environment.timeout` with its hot globals bound as
    closure cells (``LOAD_DEREF`` beats ``LOAD_GLOBAL`` on the kernel's
    single hottest allocation site)."""
    _cls = Timeout
    _new = Timeout.__new__
    _push = heappush
    _mark = _NO_WAITERS
    _next = next

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after *delay* simulated seconds.

        This is the kernel's hottest allocation site (every simulated
        wait passes through it), so the object is built directly instead
        of through ``Timeout.__init__``'s chained constructors (``_ok``
        and ``_exception`` are class-level on :class:`Timeout`).
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        ev = _new(_cls)
        ev.env = self
        ev.callbacks = _mark
        ev._value = value
        # 1 == NORMAL priority
        _push(self._queue, (self._now + delay, 1, _next(self._seq), ev))
        return ev

    return timeout


class Environment:
    """The simulation environment: clock + event queue + process factory."""

    __slots__ = ("_now", "_queue", "_seq", "_active_process",
                 "failed_processes", "_hb")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event | _Resume]] = []
        self._seq = count(1)
        self._active_process: Process | None = None
        #: Happens-before recorder (``repro.analysis``), attached only
        #: while a sanitizer session is active.  ``None`` keeps every
        #: kernel hook at a single attribute load + identity check.
        self._hb: Any = None
        #: (time, process name, exception) for every process that died on
        #: an unhandled exception — inspect after a run to catch silent
        #: daemon crashes.
        self.failed_processes: list[tuple[float, str, Exception]] = []

    @property
    def now(self) -> float:
        """Current simulated time (seconds by library convention)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active_process

    # -- event factories -------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event (trigger with succeed/fail)."""
        return Event(self)

    timeout = _compile_timeout()

    def process(self, gen: Generator[Event, Any, Any],
                name: str | None = None) -> Process:
        """Launch a generator as a simulated process."""
        return Process(self, gen, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """An event firing when every child has fired."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """An event firing with the first child that fires."""
        return AnyOf(self, events)

    def call_later(self, delay: float, fn: Callable[[Any], None],
                   arg: Any = None) -> None:
        """Invoke ``fn(arg)`` after *delay* simulated seconds.

        A lighter alternative to spawning a process for fire-and-forget
        work: one heap entry, no generator, no :class:`Event` state.  The
        network's batched delivery path passes a shared list as *arg*
        and keeps appending to it until the entry fires — that is what
        turns an N-way same-tick fan-out into a single queue entry.

        The callback runs at NORMAL priority in seq order, exactly where
        an event triggered at the same instant would run; it must not
        assume an active process (``env.active_process`` is ``None``).
        """
        if delay < 0:
            raise SimulationError(f"negative call_later delay: {delay}")
        entry = _Callback(fn, arg)
        heappush(self._queue, (self._now + delay, NORMAL, next(self._seq),
                               entry))
        hb = self._hb
        if hb is not None:
            hb.on_schedule(entry)

    # -- scheduling -------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        heappush(self._queue,
                 (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        hb = self._hb
        if hb is not None:
            hb.step(self)
            return
        when, _prio, _seq, event = heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue time went backwards")
        self._now = when
        event._run_callbacks()
        self._active_process = None

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, *until* time passes, or event fires.

        Returns the event's value when *until* is an :class:`Event`.

        The loop dispatches queue entries inline rather than through
        :meth:`Event._run_callbacks` (events in the queue always hold a
        live callback list; a ``None`` marks the lighter resume records),
        so per-event cost is one pop, one time store, and the callbacks
        themselves.
        """
        hb = self._hb
        if hb is not None:
            # Sanitizer attached: delegate to the recorder's instrumented
            # loop (same dispatch semantics, plus clock propagation).
            return hb.run_loop(self, until)
        queue = self._queue
        pop = heappop
        mark = _NO_WAITERS
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:  # i.e. not yet processed
                if not queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered (deadlock?)")
                entry = pop(queue)
                item = entry[3]
                self._now = entry[0]
                cbs = item.callbacks
                if cbs is None:
                    item._run_callbacks()
                else:
                    item.callbacks = None
                    try:
                        cbs(item)  # sole waiter's bound resume (dominant)
                    except TypeError:
                        if type(cbs) is list:
                            for cb in cbs:
                                cb(item)
                        elif cbs is mark:
                            pass  # fired with nobody attached
                        else:
                            raise
            self._active_process = None
            if stop._ok:
                return stop._value
            raise stop._exception  # type: ignore[misc]
        if until is None:
            # Drain: no horizon comparison, and the empty queue surfaces
            # as IndexError from the pop instead of a per-event check.
            try:
                while True:
                    entry = pop(queue)
                    item = entry[3]
                    self._now = entry[0]
                    cbs = item.callbacks
                    if cbs is None:
                        item._run_callbacks()
                    else:
                        item.callbacks = None
                        try:
                            cbs(item)  # sole waiter's bound resume
                        except TypeError:
                            if type(cbs) is list:
                                for cb in cbs:
                                    cb(item)
                            elif cbs is mark:
                                pass  # fired with nobody attached
                            else:
                                raise
            except IndexError:
                if queue:  # a real IndexError from user code, not ours
                    raise
            self._active_process = None
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"run(until={horizon}) is in the past "
                                  f"(now={self._now})")
        while queue:
            entry = pop(queue)
            when = entry[0]
            if when > horizon:
                heappush(queue, entry)
                break
            item = entry[3]
            self._now = when
            cbs = item.callbacks
            if cbs is None:
                item._run_callbacks()
            else:
                item.callbacks = None
                try:
                    cbs(item)  # sole waiter's bound resume (dominant)
                except TypeError:
                    if type(cbs) is list:
                        for cb in cbs:
                            cb(item)
                    elif cbs is mark:
                        pass  # fired with nobody attached
                    else:
                        raise
        self._active_process = None
        if horizon != float("inf"):
            self._now = horizon
        return None
