"""Self-healing control plane: WAL replication + site-server failover.

Layers (bottom-up):

- :mod:`repro.recovery.wal` — the deterministic write-ahead log and the
  execution-state replay fold;
- :mod:`repro.recovery.replication` — the active server's log shipper
  and the standby-host replica daemon;
- :mod:`repro.recovery.failover` — server heartbeats and the
  rank-staggered lowest-address-wins failure detector;
- :mod:`repro.recovery.coordinator` — promotion orchestration and
  execution-state reconstruction.

Entry point for applications is ``VDCE.enable_failover`` on the facade.
"""

from repro.recovery.coordinator import RecoveryCoordinator, SiteFailoverState
from repro.recovery.failover import HeartbeatTracker, ServerHeartbeatDaemon
from repro.recovery.replication import ReplicationShipper, StandbyReplica
from repro.recovery.wal import (
    EXECUTION_KINDS,
    MEMBERSHIP_KINDS,
    REPOSITORY_KINDS,
    WAL_KINDS,
    WalRecord,
    WriteAheadLog,
    replay_executions,
)

__all__ = [
    "EXECUTION_KINDS",
    "MEMBERSHIP_KINDS",
    "REPOSITORY_KINDS",
    "WAL_KINDS",
    "HeartbeatTracker",
    "RecoveryCoordinator",
    "ReplicationShipper",
    "ServerHeartbeatDaemon",
    "SiteFailoverState",
    "StandbyReplica",
    "WalRecord",
    "WriteAheadLog",
    "replay_executions",
]
