"""Server heartbeats and the deterministic standby failure detector.

The :class:`ServerHeartbeatDaemon` runs at the active server and beats
periodically to every standby.  When the server machine is down, its
``site/server`` source address drops all outbound traffic, so the beat
goes silent — the same silence-is-failure model the Group Manager's
echo pipeline uses for ordinary hosts.

Detection rides on the per-host :class:`~repro.runtime.control.monitor.
MonitorDaemon`: its crash-watch loop ticks the standby's
:class:`HeartbeatTracker` once per sampling period (the issue's
"extending MonitorDaemon's crash-watch to cover the server host
itself").  The promotion rule is deterministic by construction —
**lowest-address live standby wins**: the tracker of rank *r* (the
standby's index in the sorted standby-address list) only fires after
``suspect_after_s + r * promote_grace_s`` of heartbeat silence, so the
lowest live address always promotes first and a dead standby simply
never ticks (its monitor observes ``host.up == False``).  No elections,
no races, sim-time exact.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net import SERVER_HEARTBEAT
from repro.net.network import Network
from repro.resources.site import Site
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError

#: service suffix of the heartbeat source endpoint on the server machine
HEARTBEAT_SERVICE = "heartbeat"


class ServerHeartbeatDaemon:
    """Periodic I-am-alive beat from the active server to its standbys."""

    def __init__(self, env: Environment, network: Network, site: Site,
                 standby_addrs: list[str], period_s: float = 2.0,
                 tracer: Tracer | None = None) -> None:
        if period_s <= 0:
            raise ConfigurationError("heartbeat period must be positive")
        self.env = env
        self.network = network
        self.site = site
        self.standby_addrs = sorted(standby_addrs)
        self.period_s = period_s
        self.tracer = tracer or Tracer(enabled=False)
        self.address = f"{site.name}/server/{HEARTBEAT_SERVICE}"
        self.beats_sent = 0
        self._proc = env.process(self._beat_loop(),
                                 name=f"hb:{self.address}")

    def _beat_loop(self):
        seq = 0
        while True:
            yield self.env.timeout(self.period_s)
            seq += 1
            # a down server's sends are dropped by the network layer;
            # keeping the loop alive models the machine, not the role
            self.network.send_batch(
                self.address, self.standby_addrs, SERVER_HEARTBEAT,
                payload={"site": self.site.name, "seq": seq}, size_bytes=32)
            self.beats_sent += 1

    def stop(self) -> None:
        """Terminate the beat process (teardown or role hand-off)."""
        if self._proc.is_alive:
            self._proc.interrupt("stop")


class HeartbeatTracker:
    """One standby's view of server liveness, ticked by its monitor.

    ``tick(now)`` is called from the host's MonitorDaemon crash-watch
    loop each sampling period.  The tracker suspects the server after
    ``suspect_after_s`` of silence and fires ``on_promote(replica,
    suspected_at)`` once the silence also exceeds this standby's
    rank-staggered grace — implementing lowest-address-wins without any
    message exchange between standbys.
    """

    def __init__(self, replica: Any, rank: int, suspect_after_s: float,
                 promote_grace_s: float,
                 on_promote: Callable[[Any, float], None]) -> None:
        if suspect_after_s <= 0 or promote_grace_s < 0:
            raise ConfigurationError(
                "suspect_after_s must be positive and promote_grace_s "
                ">= 0")
        self.replica = replica
        self.rank = rank
        self.suspect_after_s = suspect_after_s
        self.promote_grace_s = promote_grace_s
        self.on_promote = on_promote
        self.suspected_at: float | None = None

    @property
    def promote_after_s(self) -> float:
        """Total silence this rank waits for before promoting."""
        return self.suspect_after_s + self.rank * self.promote_grace_s

    def tick(self, now: float) -> None:
        """One detector evaluation (called by the monitor crash-watch)."""
        replica = self.replica
        if not replica.active or not replica.host.up:
            # a dead standby observes nothing; clearing suspicion keeps
            # a stale pre-crash suspicion from firing right at recovery
            self.suspected_at = None
            return
        silence = now - replica.last_heartbeat
        if silence < self.suspect_after_s:
            self.suspected_at = None
            return
        if self.suspected_at is None:
            self.suspected_at = now
        if silence >= self.promote_after_s:
            self.on_promote(replica, self.suspected_at)
