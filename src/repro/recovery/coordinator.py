"""Failover orchestration: enable replication, execute promotions.

One :class:`RecoveryCoordinator` per federation (owned by the VDCE
facade).  :meth:`enable_site` turns a site's control plane
self-healing: it snapshots the server's repository onto standby hosts,
attaches the WAL shipper to the live Site Manager, starts the server
heartbeat, and registers rank-staggered
:class:`~repro.recovery.failover.HeartbeatTracker` detectors with the
standby hosts' monitors.

:meth:`promote` is the failover itself, run synchronously at the
simulated instant the winning detector fires:

1. **fence** — stop the old Site Manager's inbox and heartbeat (the old
   machine never reclaims the role, even if it recovers);
2. **move the role** — ``site.server_role_host`` points at the standby,
   so the stable ``site/server/...`` addresses now route liveness to it
   (clients and daemons keep their addressing);
3. **rebuild** — a fresh Site Manager over the replica repository,
   with execution state reconstructed from the shipped WAL
   (:func:`~repro.recovery.wal.replay_executions`): pending acks,
   start signals and completions are restored, acks of dead hosts
   waived, allocation portions re-pushed (the Application Controllers
   deduplicate, so re-pushes are idempotent and tasks run exactly
   once), and the client's completion future re-attached;
4. **re-arm** — surviving standbys absorb any records they missed
   (snapshot state transfer), get a new shipper/heartbeat from the
   promoted server, and re-rank so a second failover works the same
   way.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net import ALLOCATION_PUSH, SERVER_PROMOTED
from repro.net.network import Network
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.recovery.failover import HeartbeatTracker, ServerHeartbeatDaemon
from repro.recovery.replication import ReplicationShipper, StandbyReplica
from repro.recovery.wal import replay_executions
from repro.resources.site import Site
from repro.runtime.control.site_manager import ExecutionState, SiteManager
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError


@dataclass
class SiteFailoverState:
    """Everything the coordinator tracks for one protected site."""

    site: Site
    sm: SiteManager
    shipper: ReplicationShipper
    heartbeat: ServerHeartbeatDaemon
    replicas: list[StandbyReplica]
    monitors: dict[str, Any]
    heartbeat_period_s: float
    miss_limit: int
    promote_grace_s: float
    promotions: int = 0
    history: list[str] = field(default_factory=list)


class RecoveryCoordinator:
    """Per-federation failover brain (wired by ``VDCE.enable_failover``)."""

    def __init__(self, env: Environment, network: Network,
                 topology: Topology, tracer: Tracer | None = None,
                 obs: Observability | None = None) -> None:
        self.env = env
        self.network = network
        self.topology = topology
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.sites: dict[str, SiteFailoverState] = {}
        self.failovers = 0
        #: facade hook: called as (site_name, old_sm, new_sm) after a
        #: promotion so the facade can swap its site-manager map and
        #: reconcile in-flight runs
        self.on_promoted: Callable[[str, SiteManager, SiteManager],
                                   None] | None = None
        #: facade hook installed into the rebuilt Site Manager's
        #: host-down path (mirrors the wrap ``VDCE.start`` applies)
        self.on_host_down: Callable[[str], None] | None = None

    # -- enabling ----------------------------------------------------------
    def enable_site(self, site: Site, sm: SiteManager,
                    standby_hosts: list[str],
                    monitors: dict[str, Any],
                    heartbeat_period_s: float = 2.0,
                    miss_limit: int = 3,
                    promote_grace_s: float = 2.0) -> list[StandbyReplica]:
        """Protect one site with the given standby hosts.

        *standby_hosts* are bare host names at *site*; *monitors* maps
        host addresses to their MonitorDaemon (the facade's registry) so
        each standby's crash-watch loop can tick its failure detector.
        """
        if site.name in self.sites:
            raise ConfigurationError(
                f"failover already enabled for site {site.name!r}")
        if not standby_hosts:
            raise ConfigurationError(
                f"no standby hosts given for site {site.name!r}")
        if miss_limit < 1:
            raise ConfigurationError("miss_limit must be >= 1")
        replicas = []
        for host_name in sorted(standby_hosts):
            host = site.host(host_name)  # raises on unknown host
            replicas.append(StandbyReplica(
                self.env, self.network, host, site,
                repository=copy.deepcopy(sm.repository),
                tracer=self.tracer, obs=self.obs))
        standby_addrs = [r.address for r in replicas]
        shipper = ReplicationShipper(self.env, self.network, sm.address,
                                     standby_addrs, tracer=self.tracer)
        sm.replication = shipper
        heartbeat = ServerHeartbeatDaemon(
            self.env, self.network, site, standby_addrs,
            period_s=heartbeat_period_s, tracer=self.tracer)
        state = SiteFailoverState(
            site=site, sm=sm, shipper=shipper, heartbeat=heartbeat,
            replicas=replicas, monitors=monitors,
            heartbeat_period_s=heartbeat_period_s, miss_limit=miss_limit,
            promote_grace_s=promote_grace_s)
        self._attach_trackers(state)
        self.sites[site.name] = state
        self.tracer.record(self.env.now, "rec:enabled", sm.address,
                           site=site.name, standbys=sorted(standby_addrs))
        return replicas

    def _attach_trackers(self, state: SiteFailoverState) -> None:
        """(Re-)rank the live standbys: lowest address gets rank 0."""
        suspect_after = state.miss_limit * state.heartbeat_period_s
        for rank, replica in enumerate(
                sorted(state.replicas, key=lambda r: r.address)):
            tracker = HeartbeatTracker(
                replica, rank=rank, suspect_after_s=suspect_after,
                promote_grace_s=state.promote_grace_s,
                on_promote=lambda rep, suspected, s=state.site.name:
                    self.promote(s, rep, suspected))
            replica.tracker = tracker
            monitor = state.monitors.get(replica.host.address)
            if monitor is not None:
                monitor.watch_server(tracker)

    # -- the failover -------------------------------------------------------
    def promote(self, site_name: str, replica: StandbyReplica,
                suspected_at: float) -> SiteManager | None:
        """Promote *replica* to site server; returns the new manager.

        Returns None when the promotion is refused: the replica is
        stale (a peer already won) or the current role-holder is in
        fact alive (fencing — a detector firing on lost heartbeats
        must not create a second server).
        """
        state = self.sites.get(site_name)
        if state is None or replica not in state.replicas \
                or not replica.active:
            return None
        site = state.site
        if site.server_is_up():
            return None  # fencing: role-holder alive, detector misfired
        old_sm = state.sm
        # 1. fence the failed role-holder
        state.heartbeat.stop()
        old_sm.stop()
        monitor = state.monitors.get(replica.host.address)
        if monitor is not None:
            monitor.watch_server(None)
        replica.stop()  # this standby daemon becomes the server
        # 2. move the server role onto the standby host
        site.server_role_host = replica.host.name
        # 3. rebuild the Site Manager over the replica repository; the
        # stable role address means nothing else re-learns an address
        new_sm = SiteManager(
            self.env, self.network, site, replica.repository,
            self.topology, selection_timeout_s=old_sm.selection_timeout_s,
            tracer=self.tracer, obs=self.obs)
        for gm in old_sm.group_managers.values():
            new_sm.register_group_manager(gm)
        new_sm.on_reschedule_request = old_sm.on_reschedule_request
        if self.on_host_down is not None:
            original = new_sm._on_host_down
            hook = self.on_host_down

            def wrapped(msg, _original=original, _hook=hook):
                _original(msg)
                _hook(msg.payload["host"])

            new_sm._on_host_down = wrapped  # type: ignore[method-assign]
        # 4. re-arm the survivors: state transfer, new shipper + beat
        survivors = [r for r in state.replicas
                     if r is not replica and r.active]
        records = replica.ordered_records()
        for peer in survivors:
            peer.absorb(records)
            self.network.send(new_sm.address, peer.address,
                              SERVER_PROMOTED,
                              payload={"site": site_name,
                                       "host": replica.host.address},
                              size_bytes=48)
        new_sm.replication = ReplicationShipper(
            self.env, self.network, new_sm.address,
            [r.address for r in survivors],
            start_lsn=replica.last_lsn(), tracer=self.tracer)
        heartbeat = ServerHeartbeatDaemon(
            self.env, self.network, site, [r.address for r in survivors],
            period_s=state.heartbeat_period_s, tracer=self.tracer)
        # 5. reconstruct execution state from the shipped log
        rebuilt = self._reconstruct(new_sm, old_sm, replica, site)
        state.sm = new_sm
        state.shipper = new_sm.replication
        state.heartbeat = heartbeat
        state.replicas = survivors
        self._attach_trackers(state)
        state.promotions += 1
        state.history.append(replica.host.address)
        self.failovers += 1
        self.tracer.record(self.env.now, "rec:promoted", new_sm.address,
                           site=site_name, host=replica.host.address,
                           executions=len(rebuilt),
                           wal_records=len(records))
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "failovers_total",
                help="server failovers (standby promotions)").inc(
                    site=site_name)
            span = obs.spans.begin(
                f"failover:{site_name}", "failover", new_sm.address,
                suspected_at, host=replica.host.address)
            obs.spans.end(span, self.env.now, executions=len(rebuilt))
        if self.on_promoted is not None:
            self.on_promoted(site_name, old_sm, new_sm)
        return new_sm

    def _reconstruct(self, new_sm: SiteManager, old_sm: SiteManager,
                     replica: StandbyReplica,
                     site: Site) -> list[ExecutionState]:
        """Rebuild unfinished executions from the replica's WAL copy."""
        recovered = replay_executions(replica.ordered_records())
        resource_perf = new_sm.repository.resource_performance
        rebuilt: list[ExecutionState] = []
        for execution_id in sorted(recovered):
            info = recovered[execution_id]
            if info["finished"]:
                continue
            begin = info["begin"]
            state = ExecutionState(
                execution_id=execution_id,
                application=begin["application"],
                expected_acks=set(begin["expected_acks"]),
                received_acks=set(info["acks"]),
                controllers=set(begin["controllers"]),
                started=info["started"],
                start_signal_time=info["start_time"],
                completed_tasks=dict(info["completed"]),
                finished=self.env.event(),
                total_tasks=begin["total_tasks"])
            old_state = old_sm._executions.get(execution_id)
            if old_state is not None and old_state.finished is not None \
                    and not old_state.finished.triggered:
                # the submitting client re-attaches its completion future
                state.finished = old_state.finished
            new_sm._executions[execution_id] = state
            self._relog(new_sm, begin, state)
            # waive acks of hosts the replica already knows are down
            # (their Group Manager will not re-report an old failure)
            if not state.started:
                for host in sorted(state.expected_acks
                                   - state.received_acks):
                    if host in resource_perf and \
                            resource_perf.get(host).status == "down":
                        state.expected_acks.discard(host)
                        state.controllers.discard(f"{host}/appctl")
            # re-push every portion; the Application Controllers dedup
            # by (execution, node), so completed or running tasks are
            # not re-executed and lost pushes are healed
            for push_site in sorted(begin["by_site"]):
                portions = begin["by_site"][push_site]
                if push_site == site.name:
                    new_sm._push_to_groups(portions, state.application,
                                           execution_id)
                else:
                    self.network.send(
                        new_sm.address,
                        f"{push_site}/server/{SiteManager.SERVICE}",
                        ALLOCATION_PUSH,
                        payload={"application": state.application,
                                 "execution_id": execution_id,
                                 "portions": portions,
                                 "coordinator": new_sm.address},
                        size_bytes=256 + 128 * sum(
                            map(len, portions.values())))
            if state.started:
                new_sm.resend_start(state)
            else:
                new_sm._maybe_start(state)
            if len(state.completed_tasks) >= state.total_tasks and \
                    state.finished is not None and \
                    not state.finished.triggered:
                # every completion was already in the log; only the
                # client notification was lost with the old server
                state.finished.succeed(dict(state.completed_tasks))
            rebuilt.append(state)
        return rebuilt

    @staticmethod
    def _relog(new_sm: SiteManager, begin: dict[str, Any],
               state: ExecutionState) -> None:
        """Write the rebuilt execution onto the new server's WAL.

        The survivors follow the new shipper, so a *second* failover
        replays this execution exactly like the first one did.
        """
        shipper = new_sm.replication
        if shipper is None:
            return
        shipper.log("exec-begin", begin)
        for host in sorted(state.received_acks):
            shipper.log("ack", {"execution_id": state.execution_id,
                                "host": host})
        if state.started:
            shipper.log("start", {"execution_id": state.execution_id})
        for node_id in sorted(state.completed_tasks):
            shipper.log("task-completed", state.completed_tasks[node_id])

    # -- teardown -----------------------------------------------------------
    def stop(self) -> None:
        """Terminate heartbeats and standby daemons (simulation teardown)."""
        for state in self.sites.values():
            state.heartbeat.stop()
            for replica in state.replicas:
                replica.stop()
