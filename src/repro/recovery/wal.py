"""The deterministic write-ahead log behind site-server replication.

Every mutating :class:`~repro.repository.site_repository.SiteRepository`
or :class:`~repro.runtime.control.site_manager.ExecutionState` operation
at the active server appends one :class:`WalRecord` here *before* the
effect is considered durable; the shipper in
:mod:`repro.recovery.replication` forwards each record over the
simulated network to the site's standby hosts.  On promotion a standby
replays its copy of the log to reconstruct the server's execution state
(see ``docs/recovery.md`` for the record catalogue).

Determinism: records are appended in simulation order with a per-log
monotone LSN, and :meth:`WriteAheadLog.summary_json` renders a canonical
JSON digest (LSN, time, kind, and the stable key fields) that is
byte-identical across same-seed runs — payloads themselves may hold
non-JSON values (numpy arrays in completion reports) and are kept
in-memory for replay only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import ConfigurationError

#: the record catalogue; repository records mutate the replica's
#: databases eagerly, execution records are replayed at promotion
#: ("task-completed" does both: its task-performance effect is applied
#: eagerly and its execution-state effect is replayed)
REPOSITORY_KINDS = ("workload-update", "host-down", "host-up")
EXECUTION_KINDS = ("exec-begin", "ack", "start", "task-completed",
                   "exec-finished")
#: federation membership transitions (repro.federation): observational —
#: standbys buffer them for post-mortem but apply no eager effect; a
#: promoted server rebuilds its membership view from live heartbeats.
MEMBERSHIP_KINDS = ("site-join", "site-leave", "site-quarantine",
                    "site-rejoin")
WAL_KINDS = REPOSITORY_KINDS + EXECUTION_KINDS + MEMBERSHIP_KINDS

#: payload fields quoted in the canonical summary (when present)
_SUMMARY_FIELDS = ("execution_id", "host", "node_id")


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation: LSN-ordered, timestamped, typed."""

    lsn: int
    t: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, Any]:
        """The JSON-safe digest row used by :meth:`WriteAheadLog.summary_json`."""
        row: dict[str, Any] = {"lsn": self.lsn, "t": self.t,
                               "kind": self.kind}
        for name in _SUMMARY_FIELDS:
            if name in self.payload:
                row[name] = self.payload[name]
        return row


class WriteAheadLog:
    """An append-only, LSN-ordered record sequence."""

    def __init__(self, start_lsn: int = 0) -> None:
        if start_lsn < 0:
            raise ConfigurationError(
                f"start_lsn must be >= 0, got {start_lsn}")
        self._next_lsn = start_lsn + 1
        self.records: list[WalRecord] = []

    def append(self, kind: str, payload: dict[str, Any],
               t: float) -> WalRecord:
        """Append one mutation; returns the stamped record."""
        if kind not in WAL_KINDS:
            raise ConfigurationError(
                f"unknown WAL record kind {kind!r}; expected one of "
                f"{sorted(WAL_KINDS)}")
        record = WalRecord(lsn=self._next_lsn, t=t, kind=kind,
                           payload=payload)
        self._next_lsn += 1
        self.records.append(record)
        return record

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record (start_lsn when empty)."""
        return self._next_lsn - 1

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def summary_rows(self) -> list[dict[str, Any]]:
        """Digest rows (LSN/time/kind + stable keys), in LSN order."""
        return [record.summary() for record in self.records]

    def summary_json(self) -> str:
        """Canonical JSON digest; byte-identical for a fixed seed."""
        return json.dumps(self.summary_rows(), sort_keys=True,
                          separators=(",", ":"))


def replay_executions(records: list[WalRecord]) -> dict[str, dict[str, Any]]:
    """Fold execution-kind records into per-execution reconstruction state.

    Returns ``execution_id -> {"begin": exec-begin payload, "acks": set,
    "started": bool, "start_time": float | None, "completed": {node_id:
    report}, "finished": bool}``, the exact shape the promotion
    coordinator rebuilds ``ExecutionState`` objects from.  Records whose
    execution was never announced by an ``exec-begin`` (a replication
    gap: the standby was down when the record shipped) are skipped —
    the promoted server cannot resurrect what it never heard of.
    """
    executions: dict[str, dict[str, Any]] = {}
    for record in sorted(records, key=lambda r: r.lsn):
        if record.kind not in EXECUTION_KINDS:
            continue
        payload = record.payload
        execution_id = payload.get("execution_id")
        if execution_id is None:
            continue
        if record.kind == "exec-begin":
            executions[execution_id] = {
                "begin": payload, "acks": set(), "started": False,
                "start_time": None, "completed": {}, "finished": False,
            }
            continue
        info = executions.get(execution_id)
        if info is None:
            continue  # replication gap: no exec-begin seen
        if record.kind == "ack":
            info["acks"].add(payload["host"])
        elif record.kind == "start":
            info["started"] = True
            info["start_time"] = record.t
        elif record.kind == "task-completed":
            info["completed"][payload["node_id"]] = payload
        elif record.kind == "exec-finished":
            info["finished"] = True
    return executions
