"""Log shipping: the active server's side and the standby's side.

The :class:`ReplicationShipper` hangs off a live
:class:`~repro.runtime.control.site_manager.SiteManager` (as its
``replication`` attribute): every mutating operation calls
:meth:`ReplicationShipper.log`, which appends to the local
:class:`~repro.recovery.wal.WriteAheadLog` and ships the record to every
standby as a ``wal-append`` message over the ordinary simulated network.
A dead server ships nothing — its ``site/server`` source address drops
all traffic — which is exactly the failure semantics the standbys must
tolerate.

The :class:`StandbyReplica` daemon runs on a standby *host* (so it dies
with the host, like any other daemon).  It applies repository-kind
records eagerly to its own :class:`SiteRepository` copy (seeded from a
snapshot when failover was enabled), buffers execution-kind records for
replay at promotion, and tracks the server heartbeat for the failure
detector in :mod:`repro.recovery.failover`.
"""

from __future__ import annotations

from typing import Any

from repro.analysis import hooks
from repro.net import SERVER_HEARTBEAT, SERVER_PROMOTED, WAL_APPEND
from repro.net.network import Network
from repro.obs import OBS_OFF, Observability
from repro.recovery.wal import WalRecord, WriteAheadLog
from repro.repository.site_repository import SiteRepository
from repro.resources.host import Host
from repro.resources.site import Site
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer


class ReplicationShipper:
    """Active-server side: append locally, ship to every standby."""

    def __init__(self, env: Environment, network: Network,
                 src_address: str, standby_addrs: list[str],
                 start_lsn: int = 0,
                 tracer: Tracer | None = None) -> None:
        self.env = env
        self.network = network
        self.src_address = src_address
        self.standby_addrs = sorted(standby_addrs)
        self.wal = WriteAheadLog(start_lsn=start_lsn)
        self.tracer = tracer or Tracer(enabled=False)

    def log(self, kind: str, payload: dict[str, Any]) -> WalRecord:
        """Record one mutation and ship it to the standbys."""
        if hooks.HB is not None:
            hooks.HB.write(self.src_address.split("/", 1)[0], "wal", kind)
        record = self.wal.append(kind, payload, t=self.env.now)
        if self.standby_addrs:
            self.network.send_batch(
                self.src_address, self.standby_addrs, WAL_APPEND,
                payload={"lsn": record.lsn, "t": record.t,
                         "kind": record.kind, "data": record.payload},
                size_bytes=192)
        return record


class StandbyReplica:
    """Standby-host side: replica repository + buffered execution log."""

    SERVICE = "standby"

    def __init__(self, env: Environment, network: Network, host: Host,
                 site: Site, repository: SiteRepository,
                 tracer: Tracer | None = None,
                 obs: Observability | None = None) -> None:
        self.env = env
        self.network = network
        self.host = host
        self.site = site
        #: this standby's own repository copy (snapshot at enable time,
        #: then rolled forward by shipped repository-kind records)
        self.repository = repository
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else OBS_OFF
        self.address = f"{host.address}/{self.SERVICE}"
        self.mailbox = network.register(self.address)
        #: shipped records by LSN (a dict, not a list: duplicates from
        #: message faults overwrite idempotently, gaps stay visible)
        self.records: dict[int, WalRecord] = {}
        #: (execution_id, node_id) pairs whose task-performance effect
        #: was already applied — replays and duplicates are skipped
        self._perf_applied: set[tuple[str, str]] = set()
        #: simulated time the last server heartbeat arrived
        self.last_heartbeat = env.now
        #: set False once this replica (or a peer) was promoted
        self.active = True
        #: failure-detector state, attached by the coordinator
        self.tracker: Any = None
        self._inbox_proc = env.process(self._inbox_loop(),
                                       name=f"standby:{self.address}")

    # -- inbox ------------------------------------------------------------
    def _inbox_loop(self):
        while True:
            msg = yield self.mailbox.get()
            if msg.kind == WAL_APPEND:
                self._on_wal_append(msg.payload)
            elif msg.kind == SERVER_HEARTBEAT:
                self.last_heartbeat = self.env.now
            elif msg.kind == SERVER_PROMOTED:
                # a peer won the promotion; reset suspicion and follow
                # the new server's heartbeats
                self.last_heartbeat = self.env.now

    def _on_wal_append(self, payload: dict[str, Any]) -> None:
        record = WalRecord(lsn=payload["lsn"], t=payload["t"],
                           kind=payload["kind"], payload=payload["data"])
        known = record.lsn in self.records
        self.records[record.lsn] = record
        if not known:
            self.apply_record(record)

    # -- eager application --------------------------------------------------
    def apply_record(self, record: WalRecord) -> None:
        """Roll the replica repository forward by one record.

        Execution-kind records only buffer (they are replayed at
        promotion); repository-kind records and the task-performance
        half of ``task-completed`` mutate the replica's databases so a
        promoted server schedules from fresh data.
        """
        if hooks.HB is not None:
            hooks.HB.write(self.site.name, f"replica:{self.host.address}",
                           record.kind)
        payload = record.payload
        rp = self.repository.resource_performance
        if record.kind == "workload-update":
            if payload["host"] in rp:
                rp.update_dynamic(
                    payload["host"], cpu_load=payload["cpu_load"],
                    available_memory_mb=payload["available_memory_mb"],
                    time=payload["time"])
        elif record.kind == "host-down":
            if payload["host"] in rp:
                rp.mark_down(payload["host"], payload["time"])
        elif record.kind == "host-up":
            if payload["host"] in rp:
                rp.mark_up(payload["host"], payload["time"])
        elif record.kind == "task-completed":
            key = (payload["execution_id"], payload["node_id"])
            tp = self.repository.task_performance
            if key not in self._perf_applied and payload["task_name"] in tp:
                self._perf_applied.add(key)
                tp.record_execution(
                    payload["task_name"], payload["host"],
                    input_size=payload["input_size"],
                    elapsed_s=payload["elapsed_s"], time=record.t,
                    dedicated_elapsed_s=payload.get("dedicated_elapsed_s"),
                    base_time_at_size_s=payload.get("base_time_at_size_s"))

    # -- promotion-time views ------------------------------------------------
    def ordered_records(self) -> list[WalRecord]:
        """Every shipped record this replica holds, in LSN order."""
        return [self.records[lsn] for lsn in sorted(self.records)]

    def last_lsn(self) -> int:
        """Highest LSN seen (0 when nothing arrived)."""
        return max(self.records) if self.records else 0

    def absorb(self, records: list[WalRecord]) -> int:
        """Install records this replica missed (promotion state transfer).

        The promoting standby hands its surviving peers the records they
        lack so a *second* failover starts from a consistent log; each
        missing record is applied exactly as if it had been shipped.
        Returns how many records were new.
        """
        added = 0
        for record in sorted(records, key=lambda r: r.lsn):
            if record.lsn in self.records:
                continue
            self.records[record.lsn] = record
            self.apply_record(record)
            added += 1
        return added

    def stop(self) -> None:
        """Terminate the replica's inbox process (teardown/promotion)."""
        self.active = False
        if self._inbox_proc.is_alive:
            self._inbox_proc.interrupt("stop")
