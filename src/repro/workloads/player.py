"""Open-loop workload player: sustained multi-application load.

The paper's prototype ran one application at a time; a real VDCE
deployment would face a *stream* of submissions ("a site can be a local
site for some of the applications and a remote site for some of the
others").  The player submits applications with exponential inter-arrival
times from a generator of AFGs, tracks every run to completion, and
summarises throughput, latency, and rescheduling behaviour — the inputs
to the saturation experiment (A6).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.afg.graph import ApplicationFlowGraph
from repro.core.run import ApplicationRun
from repro.core.vdce import VDCE
from repro.util.errors import ConfigurationError
from repro.util.stats import mean, percentile


@dataclass
class PlayerReport:
    """Aggregate outcome of one workload-player session."""

    submitted: int = 0
    completed: int = 0
    timed_out: int = 0
    horizon_s: float = 0.0
    makespans: list[float] = field(default_factory=list)
    runs: list[ApplicationRun] = field(default_factory=list)

    @property
    def throughput_per_min(self) -> float:
        if self.horizon_s <= 0:
            return 0.0
        return 60.0 * self.completed / self.horizon_s

    @property
    def mean_makespan_s(self) -> float:
        return mean(self.makespans) if self.makespans else 0.0

    @property
    def p95_makespan_s(self) -> float:
        return percentile(self.makespans, 95) if self.makespans else 0.0

    def summary(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "timed_out": self.timed_out,
            "throughput_per_min": self.throughput_per_min,
            "mean_makespan_s": self.mean_makespan_s,
            "p95_makespan_s": self.p95_makespan_s,
            "reschedules": sum(r.reschedules for r in self.runs),
        }


class WorkloadPlayer:
    """Submit a stream of applications against a started VDCE."""

    def __init__(self, vdce: VDCE,
                 graph_factory: Callable[[int], ApplicationFlowGraph],
                 mean_interarrival_s: float,
                 local_sites: list[str] | None = None,
                 k_remote_sites: int = 1,
                 queue_aware: bool = False,
                 rng: np.random.Generator | None = None) -> None:
        if mean_interarrival_s <= 0:
            raise ConfigurationError(
                "mean inter-arrival time must be positive")
        self.vdce = vdce
        self.graph_factory = graph_factory
        self.mean_interarrival_s = mean_interarrival_s
        self.local_sites = local_sites or sorted(vdce.site_managers)
        if not self.local_sites:
            raise ConfigurationError("no submission sites available")
        self.k_remote_sites = k_remote_sites
        self.queue_aware = queue_aware
        self.rng = rng or np.random.default_rng(0)

    def _arrivals(self, count: int) -> Iterator[float]:
        for _ in range(count):
            yield float(self.rng.exponential(self.mean_interarrival_s))

    def play(self, count: int, drain_s: float = 3600.0,
             step_s: float = 5.0) -> PlayerReport:
        """Submit *count* applications; run until all finish (or drain).

        Arrivals are open-loop: the next submission does not wait for the
        previous application.  Sites round-robin across ``local_sites``.
        """
        report = PlayerReport()
        processes = []
        start = self.vdce.now
        for i, gap in enumerate(self._arrivals(count)):
            self.vdce.run(until=self.vdce.now + gap)
            graph = self.graph_factory(i)
            site = self.local_sites[i % len(self.local_sites)]
            process, run = self.vdce.submit(
                graph, site, k_remote_sites=self.k_remote_sites,
                queue_aware=self.queue_aware)
            processes.append((process, run))
            report.submitted += 1
        deadline = self.vdce.now + drain_s
        while self.vdce.now < deadline and \
                not all(p.triggered for p, _ in processes):
            self.vdce.run(until=min(self.vdce.now + step_s, deadline))
        obs = self.vdce.obs
        for process, run in processes:
            report.runs.append(run)
            if process.triggered and run.status == "completed":
                report.completed += 1
                report.makespans.append(run.makespan)
                if obs.enabled:
                    obs.metrics.counter(
                        "player_completed_total",
                        help="player applications completed").inc()
                    obs.metrics.histogram(
                        "player_makespan_seconds",
                        help="completed-application makespans").observe(
                            run.makespan)
            else:
                report.timed_out += 1
                if obs.enabled:
                    obs.metrics.counter(
                        "player_timed_out_total",
                        help="player applications not finished by the "
                             "drain deadline").inc()
        report.horizon_s = self.vdce.now - start
        if obs.enabled:
            obs.metrics.counter(
                "player_submitted_total",
                help="player applications submitted").inc(
                    float(report.submitted))
        return report
