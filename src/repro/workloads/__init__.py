"""Workload and environment generators for examples, tests, benchmarks."""

from repro.workloads.applications import (
    APPLICATION_FAMILIES,
    c3i_scenario_graph,
    fork_join_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
    random_layered_graph,
)
from repro.workloads.player import PlayerReport, WorkloadPlayer
from repro.workloads.environments import (
    WORKSTATIONS,
    nynet_testbed,
    quiet_testbed,
    wide_area_testbed,
)

__all__ = [
    "APPLICATION_FAMILIES",
    "PlayerReport",
    "WorkloadPlayer",
    "WORKSTATIONS",
    "c3i_scenario_graph",
    "fork_join_graph",
    "fourier_pipeline_graph",
    "linear_solver_graph",
    "nynet_testbed",
    "quiet_testbed",
    "random_layered_graph",
    "wide_area_testbed",
]
