"""Canonical VDCE applications.

:func:`linear_solver_graph` is the paper's Figure 3 case study, built
node-for-node (LU decomposition -> two matrix inversions -> matrix
multiplication -> solve), optionally with the figure's property panel
settings (parallel LU on two nodes).  The other generators produce the
DAG families the scheduling benchmarks sweep: pipelines, fork-joins,
diamonds, and random layered graphs.
"""

from __future__ import annotations

import numpy as np

from repro.afg.builder import GraphBuilder
from repro.afg.graph import ApplicationFlowGraph
from repro.afg.properties import TaskProperties
from repro.tasklib.registry import LibraryRegistry


def linear_solver_graph(registry: LibraryRegistry, n: int = 100,
                        seed: int = 7, parallel_lu: bool = False,
                        lu_processors: int = 2,
                        verify: bool = True) -> ApplicationFlowGraph:
    """The Figure 3 Linear Equation Solver: solve ``A x = b`` via LU.

    Dataflow: generate A and b; factor A = L U; invert L and U
    independently (the two parallel "Matrix Inversion" icons of the
    figure); form ``A^-1 = U^-1 L^-1``; multiply by b.  With *verify* a
    residual-norm task is appended as the exit node.
    """
    b = GraphBuilder(registry, name="linear-equation-solver")
    b.task("matrix-generate", "gen-A", input_size=n,
           params={"n": n, "seed": seed, "kind": "diag-dominant"})
    b.task("vector-generate", "gen-b", input_size=n,
           params={"n": n, "seed": seed + 1})
    b.task("lu-decomposition", "lu", input_size=n)
    b.task("matrix-inverse", "invert-L", input_size=n)
    b.task("matrix-inverse", "invert-U", input_size=n)
    b.task("matrix-multiply", "combine", input_size=n)
    b.task("matrix-vector-multiply", "solve", input_size=n)
    b.link("gen-A", "lu")
    b.link("lu", "invert-L", src_port="lower")
    b.link("lu", "invert-U", src_port="upper")
    b.link("invert-U", "combine", dst_port="a")
    b.link("invert-L", "combine", dst_port="b")
    b.link("combine", "solve", dst_port="matrix")
    b.link("gen-b", "solve", dst_port="vector")
    if verify:
        b.task("residual-norm", "verify", input_size=n)
        b.link("gen-A", "verify", dst_port="matrix")
        b.link("solve", "verify", dst_port="solution")
        b.link("gen-b", "verify", dst_port="rhs")
    if parallel_lu:
        # Figure 3's popup panel: parallel LU on two (Solaris) nodes.
        b.graph.node("lu").properties = TaskProperties(
            computation_mode="parallel", processors=lu_processors,
            input_size=float(n))
    return b.build()


def fourier_pipeline_graph(registry: LibraryRegistry, n: int = 4096,
                           stages: int = 3) -> ApplicationFlowGraph:
    """Signal-processing chain: generate -> FFT -> filters -> peaks."""
    b = GraphBuilder(registry, name="fourier-pipeline")
    b.task("signal-generate", "sig", input_size=n,
           params={"n": n, "tones": [(50.0, 1.0), (180.0, 0.6)],
                   "sample_rate": 1000.0})
    b.task("fft-1d", "fft", input_size=n)
    b.link("sig", "fft")
    prev = "fft"
    for i in range(stages):
        nid = f"filter-{i}"
        b.task("lowpass-filter", nid, input_size=n,
               params={"cutoff_hz": 400.0 - 100.0 * i,
                       "sample_rate": 1000.0})
        b.link(prev, nid)
        prev = nid
    b.task("power-spectrum", "power", input_size=n)
    b.task("peak-detect", "peaks", input_size=n,
           params={"count": 2, "sample_rate": 1000.0})
    b.link(prev, "power")
    b.link("power", "peaks")
    return b.build()


def c3i_scenario_graph(registry: LibraryRegistry, targets: int = 40,
                       steps: int = 20) -> ApplicationFlowGraph:
    """Two-sensor surveillance scenario: scan -> track -> fuse -> plan."""
    b = GraphBuilder(registry, name="c3i-scenario")
    for s in ("east", "west"):
        b.task("radar-scan", f"scan-{s}", input_size=targets,
               params={"targets": targets, "steps": steps,
                       "seed": 11 if s == "east" else 12})
        b.task("track-filter", f"track-{s}", input_size=targets)
        b.link(f"scan-{s}", f"track-{s}")
    b.task("data-fusion", "fusion", input_size=targets)
    b.link("track-east", "fusion", dst_port="tracks_a")
    b.link("track-west", "fusion", dst_port="tracks_b")
    b.task("threat-assessment", "threats", input_size=targets)
    b.task("engagement-plan", "plan", input_size=targets,
           params={"batteries": 4, "top_k": 8})
    b.link("fusion", "threats")
    b.link("threats", "plan")
    return b.build()


def fork_join_graph(registry: LibraryRegistry, width: int = 4,
                    size: int = 1024) -> ApplicationFlowGraph:
    """One source fanning out to *width* filters, joined by convolution."""
    b = GraphBuilder(registry, name=f"fork-join-{width}")
    b.task("signal-generate", "src", input_size=size, params={"n": size})
    b.task("fft-1d", "fft", input_size=size)
    b.link("src", "fft")
    branch_tails = []
    for i in range(width):
        f = f"branch-{i}"
        b.task("lowpass-filter", f, input_size=size,
               params={"cutoff_hz": 50.0 * (i + 1)})
        b.link("fft", f)
        tail = f"ifft-{i}"
        b.task("ifft-1d", tail, input_size=size)
        b.link(f, tail)
        branch_tails.append(tail)
    # pairwise convolution join tree
    level = branch_tails
    j = 0
    while len(level) > 1:
        nxt = []
        for a, c in zip(level[::2], level[1::2]):
            nid = f"join-{j}"
            j += 1
            b.task("convolve", nid, input_size=size)
            b.link(a, nid, dst_port="a")
            b.link(c, nid, dst_port="b")
            nxt.append(nid)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return b.build()


def random_layered_graph(registry: LibraryRegistry, layers: int = 4,
                         width: int = 3, size: int = 2048,
                         seed: int = 0) -> ApplicationFlowGraph:
    """Random layered spectral DAG (each node feeds >= 1 next-layer node)."""
    rng = np.random.default_rng(seed)
    b = GraphBuilder(registry, name=f"layered-{layers}x{width}-{seed}")
    b.task("signal-generate", "src", input_size=size, params={"n": size})
    b.task("fft-1d", "fft", input_size=size)
    b.link("src", "fft")
    prev_layer = ["fft"]
    for li in range(layers):
        layer = []
        for wi in range(width):
            nid = f"n{li}-{wi}"
            b.task("lowpass-filter", nid, input_size=size,
                   params={"cutoff_hz": float(rng.integers(50, 500))})
            feeder = prev_layer[int(rng.integers(len(prev_layer)))]
            b.link(feeder, nid)
            layer.append(nid)
        prev_layer = layer
    # single sink keeps the DAG connected end-to-end
    b.task("power-spectrum", "sink", input_size=size)
    b.link(prev_layer[0], "sink")
    return b.build()


APPLICATION_FAMILIES = {
    "linear-solver": linear_solver_graph,
    "fourier-pipeline": fourier_pipeline_graph,
    "c3i-scenario": c3i_scenario_graph,
    "fork-join": fork_join_graph,
    "random-layered": random_layered_graph,
}
