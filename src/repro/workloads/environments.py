"""Environment generators: ready-made VDCE testbeds.

:func:`nynet_testbed` models the paper's deployment — the NYNET ATM
testbed connecting Syracuse University and Rome Laboratory — with
heterogeneous mid-90s workstations per site.  :func:`wide_area_testbed`
scales to N sites for the F1/F4 sweeps.
"""

from __future__ import annotations

import zlib

from repro.core.vdce import VDCE
from repro.net.topology import ATM_OC3, ETHERNET_10, T1_WAN, LinkSpec
from repro.resources.host import HostSpec
from repro.scheduling.rescheduling import ReschedulePolicy

#: mid-90s workstation templates, heterogeneous on purpose
WORKSTATIONS = [
    dict(arch="sparc", os="solaris", cpu_factor=1.0, memory_mb=128),
    dict(arch="sparc", os="sunos", cpu_factor=1.3, memory_mb=64),
    dict(arch="alpha", os="osf1", cpu_factor=0.6, memory_mb=256),
    dict(arch="x86", os="linux", cpu_factor=1.5, memory_mb=64),
    dict(arch="rs6000", os="aix", cpu_factor=0.9, memory_mb=192),
    dict(arch="mips", os="irix", cpu_factor=1.1, memory_mb=128),
]


def _populate_site(vdce: VDCE, site: str, n_hosts: int, offset: int,
                   group_size: int = 4) -> None:
    for i in range(n_hosts):
        template = WORKSTATIONS[(offset + i) % len(WORKSTATIONS)]
        vdce.add_host(site, HostSpec(name=f"h{i}",
                                     group=f"g{i // group_size}",
                                     **template))


def nynet_testbed(seed: int = 0, hosts_per_site: int = 4,
                  with_loads: bool = True, trace: bool = True,
                  load_mean_range: tuple[float, float] = (0.1, 0.8),
                  **vdce_kwargs) -> VDCE:
    """The paper's two-site NYNET deployment: Syracuse <-ATM-> Rome."""
    vdce = VDCE(seed=seed, trace=trace, **vdce_kwargs)
    vdce.add_site("syracuse", lan=ETHERNET_10)
    vdce.add_site("rome", lan=ETHERNET_10)
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    _populate_site(vdce, "syracuse", hosts_per_site, offset=0)
    _populate_site(vdce, "rome", hosts_per_site, offset=3)
    if with_loads:
        lo, hi = load_mean_range
        for i, host in enumerate(vdce.world.all_hosts()):
            mean = lo + (hi - lo) * (i / max(len(vdce.world.all_hosts()) - 1,
                                             1))
            vdce.attach_background_load(host.address, "random-walk",
                                        mean=mean)
    return vdce


def wide_area_testbed(n_sites: int = 4, hosts_per_site: int = 4,
                      seed: int = 0, with_loads: bool = True,
                      trace: bool = True, ring: bool = False,
                      wan_link: LinkSpec | None = None,
                      **vdce_kwargs) -> VDCE:
    """N sites on a WAN chain (or ring), heterogeneous hosts per site."""
    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    vdce = VDCE(seed=seed, trace=trace, **vdce_kwargs)
    link = wan_link or T1_WAN
    names = [f"site{i}" for i in range(n_sites)]
    for name in names:
        vdce.add_site(name, lan=ETHERNET_10)
    for a, b in zip(names, names[1:]):
        vdce.connect_sites(a, b, link)
    if ring and n_sites > 2:
        vdce.connect_sites(names[-1], names[0], link)
    for i, name in enumerate(names):
        _populate_site(vdce, name, hosts_per_site, offset=2 * i)
    if with_loads:
        for host in vdce.world.all_hosts():
            # builtin hash() is salted per process; crc32 keeps the mean
            # profile identical across runs (same idiom as repro.util.rng)
            bucket = zlib.crc32(host.address.encode("utf-8")) % 5
            vdce.attach_background_load(host.address, "random-walk",
                                        mean=0.2 + 0.6 * bucket / 5.0)
    return vdce


def quiet_testbed(seed: int = 0, hosts_per_site: int = 3,
                  trace: bool = True, **vdce_kwargs) -> VDCE:
    """Two idle heterogeneous sites: deterministic fast tests."""
    vdce_kwargs.setdefault("reschedule_policy",
                           ReschedulePolicy(load_threshold=1e9))
    return nynet_testbed(seed=seed, hosts_per_site=hosts_per_site,
                         with_loads=False, trace=trace, **vdce_kwargs)
