"""Weighted dominant-resource fairness over the federation.

The Mesos-style DRF discipline (the SNIPPETS reference): each tenant's
*dominant share* is the maximum, over resources, of its allocated
fraction of federation capacity, divided by its weight; progressive
filling always grants the next job to the eligible tenant with the
lowest weighted dominant share.  Two resources are tracked —
processors and memory — matching the demand vector a
:class:`~repro.traffic.templates.JobTemplate` charges per job
(``nproc`` processors, ``nproc * mem_per_proc_mb`` MB).

:class:`DRFAllocator` is the bookkeeping core;
:class:`TenantShareFilter` adapts it to the
:class:`~repro.scheduling.registry.TenantGate` protocol so a
:class:`~repro.scheduling.registry.SchedulerContext` can carry the DRF
pre-filter, and :class:`DRFGatedScheduler` wraps any registered
scheduler with that gate — schedulers stay tenant-blind, fairness is
enforced around them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.afg.graph import ApplicationFlowGraph
from repro.repository.user_accounts import TenantRecord
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.registry import Scheduler
from repro.util.errors import SchedulingError

#: The DRF resource axes, in vector order.
RESOURCES = ("procs", "memory_mb")


class TenantOverShareError(SchedulingError):
    """A gated schedule was refused: the tenant is outside its share."""


class DRFAllocator:
    """Weighted DRF bookkeeping over (processors, memory).

    Capacity is federation-wide; allocations are charged per tenant and
    released on job completion.  ``pick`` implements progressive
    filling: among the offered tenants, the one with the lowest
    ``(dominant_share / weight, name)`` key — the name tie-break keeps
    every decision deterministic.
    """

    def __init__(self, capacity_procs: float, capacity_memory_mb: float,
                 tenants: Mapping[str, TenantRecord]) -> None:
        if capacity_procs <= 0 or capacity_memory_mb <= 0:
            raise ValueError("DRF capacity must be positive")
        self.capacity = (float(capacity_procs), float(capacity_memory_mb))
        self.tenants = dict(tenants)
        self._alloc: dict[str, list[float]] = {
            name: [0.0, 0.0] for name in self.tenants}
        self._used = [0.0, 0.0]

    # -- bookkeeping ------------------------------------------------------
    def demand_of(self, nproc: int, mem_per_proc_mb: float
                  ) -> tuple[float, float]:
        """The (procs, memory_mb) vector one job charges."""
        return (float(nproc), float(nproc) * mem_per_proc_mb)

    def allocated(self, tenant: str) -> tuple[float, float]:
        vec = self._alloc[tenant]
        return (vec[0], vec[1])

    def free(self) -> tuple[float, float]:
        return (self.capacity[0] - self._used[0],
                self.capacity[1] - self._used[1])

    def dominant_share(self, tenant: str) -> float:
        """Weighted dominant share: max_r alloc_r / cap_r, over weight."""
        vec = self._alloc[tenant]
        share = max(vec[0] / self.capacity[0], vec[1] / self.capacity[1])
        return share / self.tenants[tenant].weight

    def shares(self) -> dict[str, float]:
        """Every tenant's weighted dominant share, by name."""
        return {name: self.dominant_share(name)
                for name in sorted(self.tenants)}

    # -- admission predicates ---------------------------------------------
    def within_quota(self, tenant: str, demand: tuple[float, float]) -> bool:
        """Would granting *demand* keep *tenant* inside its quota?"""
        record = self.tenants[tenant]
        vec = self._alloc[tenant]
        if record.quota_procs and vec[0] + demand[0] > record.quota_procs:
            return False
        if record.quota_memory_mb and \
                vec[1] + demand[1] > record.quota_memory_mb:
            return False
        return True

    def fits_capacity(self, demand: tuple[float, float]) -> bool:
        free = self.free()
        return demand[0] <= free[0] + 1e-9 and demand[1] <= free[1] + 1e-9

    def can_allocate(self, tenant: str, demand: tuple[float, float]) -> bool:
        return self.fits_capacity(demand) and self.within_quota(tenant,
                                                                demand)

    def feasible(self, tenant: str, demand: tuple[float, float]) -> bool:
        """Could *demand* ever be granted (empty federation, full quota)?"""
        record = self.tenants[tenant]
        if demand[0] > self.capacity[0] or demand[1] > self.capacity[1]:
            return False
        if record.quota_procs and demand[0] > record.quota_procs:
            return False
        if record.quota_memory_mb and demand[1] > record.quota_memory_mb:
            return False
        return True

    # -- progressive filling ----------------------------------------------
    def pick(self, eligible: Iterable[str]) -> str | None:
        """The eligible tenant next in DRF order (lowest weighted share)."""
        best: str | None = None
        best_key: tuple[float, str] | None = None
        for name in eligible:
            key = (self.dominant_share(name), name)
            if best_key is None or key < best_key:
                best, best_key = name, key
        return best

    def allocate(self, tenant: str, demand: tuple[float, float]) -> None:
        vec = self._alloc[tenant]
        vec[0] += demand[0]
        vec[1] += demand[1]
        self._used[0] += demand[0]
        self._used[1] += demand[1]

    def release(self, tenant: str, demand: tuple[float, float]) -> None:
        vec = self._alloc[tenant]
        vec[0] -= demand[0]
        vec[1] -= demand[1]
        self._used[0] -= demand[0]
        self._used[1] -= demand[1]
        if vec[0] < -1e-9 or vec[1] < -1e-9:
            raise ValueError(f"tenant {tenant!r} released more than "
                             "it allocated")


class TenantShareFilter:
    """The :class:`~repro.scheduling.registry.TenantGate` for a replay.

    ``admits`` answers the quota + capacity question for one demand;
    ``precedence`` exposes the progressive-filling sort key.  Attach it
    to ``SchedulerContext.tenancy`` and dispatch layers (the replay
    engine, :class:`DRFGatedScheduler`) enforce DRF around whatever
    scheduler the context builds.
    """

    def __init__(self, allocator: DRFAllocator,
                 mem_per_proc_mb: float = 0.0) -> None:
        self.allocator = allocator
        self.mem_per_proc_mb = mem_per_proc_mb

    def admits(self, tenant: str, procs: int, memory_mb: float) -> bool:
        demand = (float(procs), float(memory_mb) if memory_mb
                  else float(procs) * self.mem_per_proc_mb)
        return self.allocator.can_allocate(tenant, demand)

    def precedence(self, tenant: str) -> tuple[float, str]:
        return (self.allocator.dominant_share(tenant), tenant)


class DRFGatedScheduler:
    """Wrap any registered scheduler with a tenant share gate.

    ``schedule`` consults the gate for the graph's processor/memory
    demand before delegating; a refusal raises
    :class:`TenantOverShareError`, which dispatch layers treat as "keep
    the job queued" — never a drop.
    """

    def __init__(self, inner: Scheduler, gate: TenantShareFilter,
                 tenant: str, nproc: int, memory_mb: float = 0.0) -> None:
        self.inner = inner
        self.gate = gate
        self.tenant = tenant
        self.nproc = nproc
        self.memory_mb = memory_mb
        self.name = f"drf({inner.name})"

    def schedule(self, graph: ApplicationFlowGraph
                 ) -> ResourceAllocationTable:
        if not self.gate.admits(self.tenant, self.nproc, self.memory_mb):
            raise TenantOverShareError(
                f"tenant {self.tenant!r} is outside its DRF share for "
                f"{self.nproc} procs")
        return self.inner.schedule(graph)


def fairness_stats(shares: Mapping[str, float]) -> dict[str, float]:
    """Jain index + spread of a share vector (1.0 == perfectly fair)."""
    values = [shares[name] for name in sorted(shares)]
    n = len(values)
    total = sum(values)
    if n == 0 or total <= 0:
        return {"jain_index": 1.0, "max_share": 0.0, "min_share": 0.0}
    square_sum = sum(v * v for v in values)
    return {
        "jain_index": (total * total) / (n * square_sum),
        "max_share": max(values),
        "min_share": min(values),
    }
