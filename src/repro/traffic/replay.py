"""The replay engine: lazy arrival streaming + DRF dispatch over the DES.

:class:`ReplayEngine` drives any arrival iterator (a loaded trace, the
synthetic Alibaba trace, an open- or closed-loop generator) through the
simulation kernel **lazily**: exactly one un-fired arrival is scheduled
at a time — each ``call_later`` callback admits the current job and
primes the next, so a 100k-job replay costs one heap entry of arrival
state, never a materialised event set.

Dispatch is progressive filling (:mod:`repro.traffic.drf`): whenever
capacity frees up or a job is admitted, the pump repeatedly grants the
head job of the eligible tenant with the lowest weighted dominant
share, charging the DRF allocator and the backend until nothing
eligible remains.  Every decision is audited — a dispatch that was not
share-minimal among eligible tenants counts as a ``drf_violation``
(asserted zero by ``repro replay --check``).

The default :class:`CapacityBackend` models each site as a processor
pool (jobs occupy ``nproc`` processors for their trace duration via one
``call_later`` completion entry) — that is what sustains 100k+
arrivals in seconds.  The scheduled backend
(:mod:`repro.bakeoff.replay`) and the VDCE backend
(:class:`~repro.traffic.vdce_replay.VdceReplayBackend`) plug real
placement and real execution underneath the same pump.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import asdict, dataclass, field
from typing import Protocol

from repro.experiments.measures import format_table
from repro.obs import OBS_OFF, Observability
from repro.repository.user_accounts import TenantRecord
from repro.simcore.engine import Environment
from repro.traffic.admission import AdmissionController, QueuedJob
from repro.traffic.drf import DRFAllocator, fairness_stats
from repro.traffic.generators import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
)
from repro.traffic.templates import TEMPLATE_NAMES, template_by_name
from repro.traffic.tenancy import make_tenants
from repro.traffic.trace import (
    JobRequest,
    load_trace,
    synthetic_alibaba_trace,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RngRegistry

#: Memory charged per processor when a request carries no template.
DEFAULT_MEM_PER_PROC_MB = 256.0

GENERATORS = ("open-loop", "closed-loop", "synthetic-alibaba", "trace")


class ReplayBackend(Protocol):
    """What the pump needs from an execution backend."""

    def fits(self, req: JobRequest) -> bool:
        """Can *req* start right now (transient resource check)?"""
        ...  # pragma: no cover

    def ever_fits(self, req: JobRequest) -> bool:
        """Could *req* start on an idle federation (static check)?"""
        ...  # pragma: no cover

    def start(self, req: JobRequest,
              on_complete: Callable[[], None]) -> None:
        """Begin executing *req*; call *on_complete* when it finishes."""
        ...  # pragma: no cover


class CapacityBackend:
    """Per-site processor pools with trace-duration service times.

    ``site_filter`` is the degraded-mode hook
    (:meth:`~repro.federation.Federation.usable_filter`): sites it
    rejects hold no usable capacity, so admission control sheds load
    against *reachable* capacity — with every remote site quarantined,
    jobs too wide for the surviving pools are rejected as infeasible
    rather than queued forever.
    """

    def __init__(self, env: Environment, sites: Iterable[str],
                 procs_per_site: int,
                 site_filter: Callable[[str], bool] | None = None) -> None:
        self.env = env
        self.free: dict[str, int] = {site: procs_per_site
                                     for site in sorted(sites)}
        self.procs_per_site = procs_per_site
        self.busy_proc_s: dict[str, float] = {site: 0.0
                                              for site in self.free}
        self._site_names = sorted(self.free)
        self.site_filter = site_filter

    def _usable(self) -> list[str]:
        if self.site_filter is None:
            return self._site_names
        return [site for site in self._site_names if self.site_filter(site)]

    def fits(self, req: JobRequest) -> bool:
        nproc = req.nproc
        for site in self._usable():
            if self.free[site] >= nproc:
                return True
        return False

    def ever_fits(self, req: JobRequest) -> bool:
        if req.nproc > self.procs_per_site:
            return False
        return bool(self._usable())

    def _place(self, nproc: int) -> str:
        """Most-free site that fits, ties broken by name (deterministic)."""
        best = ""
        best_free = -1
        for site in self._usable():
            free = self.free[site]
            if free >= nproc and free > best_free:
                best, best_free = site, free
        return best

    def start(self, req: JobRequest,
              on_complete: Callable[[], None]) -> None:
        site = self._place(req.nproc)
        if not site:
            raise RuntimeError(
                f"backend.start without a fitting site for {req.job}")
        self.free[site] -= req.nproc
        self.env.call_later(req.duration_s, self._finish,
                            (site, req, on_complete))

    def _finish(self, handoff: tuple[str, JobRequest, Callable[[], None]]
                ) -> None:
        site, req, on_complete = handoff
        self.free[site] += req.nproc
        self.busy_proc_s[site] += req.nproc * req.duration_s
        on_complete()


@dataclass
class TenantReplayStats:
    """Per-tenant dispatch/completion counters the report renders."""

    dispatched: int = 0
    completed: int = 0
    busy_proc_s: float = 0.0
    wait_sum_s: float = 0.0
    wait_max_s: float = 0.0


@dataclass
class ReplayOutcome:
    """Everything one engine run measured (pre-serialisation)."""

    horizon_s: float = 0.0
    drf_decisions: int = 0
    drf_violations: int = 0
    tenants: dict[str, TenantReplayStats] = field(default_factory=dict)
    final_shares: dict[str, float] = field(default_factory=dict)


class ReplayEngine:
    """Stream arrivals through admission and the DRF dispatch pump."""

    def __init__(self, env: Environment, arrivals: Iterable[JobRequest],
                 tenants: Mapping[str, TenantRecord],
                 allocator: DRFAllocator, backend: ReplayBackend,
                 obs: Observability = OBS_OFF,
                 base_backoff_s: float = 0.5,
                 max_backoff_s: float = 60.0,
                 max_attempts: int = 8) -> None:
        self.env = env
        self.backend = backend
        self.allocator = allocator
        self.obs = obs
        self._iter: Iterator[JobRequest] = iter(arrivals)
        self._tenant_names = sorted(tenants)
        self.admission = AdmissionController(
            env, tenants, allocator, demand_fn=self.demand_of,
            on_admit=self._on_admitted,
            feasible_fn=lambda req, demand: self.backend.ever_fits(req),
            obs=obs, base_backoff_s=base_backoff_s,
            max_backoff_s=max_backoff_s, max_attempts=max_attempts)
        self.outcome = ReplayOutcome(
            tenants={name: TenantReplayStats()
                     for name in self._tenant_names})
        self._in_pump = False

    @staticmethod
    def demand_of(req: JobRequest) -> tuple[float, float]:
        """Price a request: (procs, memory) from its AFG template."""
        mem = DEFAULT_MEM_PER_PROC_MB
        if req.template:
            mem = template_by_name(req.template).mem_per_proc_mb
        return (float(req.nproc), float(req.nproc) * mem)

    # -- lazy arrival streaming -------------------------------------------
    def _schedule_next_arrival(self) -> None:
        req = next(self._iter, None)
        if req is None:
            return
        self.env.call_later(max(req.submit_time_s - self.env.now, 0.0),
                            self._arrive, req)

    def _arrive(self, req: JobRequest) -> None:
        # prime the next arrival first: exactly one pending arrival event
        # lives in the heap at any instant
        self._schedule_next_arrival()
        self.admission.submit(req)

    def _on_admitted(self, _tenant: str) -> None:
        self._pump()

    # -- the DRF dispatch pump --------------------------------------------
    def _eligible(self) -> list[str]:
        out = []
        for name in self._tenant_names:
            queue = self.admission.queues[name]
            if not queue:
                continue
            head = queue[0]
            if self.allocator.can_allocate(name, head.demand) \
                    and self.backend.fits(head.req):
                out.append(name)
        return out

    def _pump(self) -> None:
        if self._in_pump:  # completions re-enter via on_complete
            return
        self._in_pump = True
        try:
            while True:
                eligible = self._eligible()
                pick = self.allocator.pick(eligible)
                if pick is None:
                    return
                self.outcome.drf_decisions += 1
                if len(eligible) > 1:
                    min_share = min(self.allocator.dominant_share(name)
                                    for name in eligible)
                    if self.allocator.dominant_share(pick) \
                            > min_share + 1e-12:
                        self.outcome.drf_violations += 1
                self._dispatch(pick, self.admission.queues[pick].popleft())
        finally:
            self._in_pump = False

    def _dispatch(self, tenant: str, job: QueuedJob) -> None:
        stats = self.outcome.tenants[tenant]
        wait = self.env.now - job.req.submit_time_s
        stats.dispatched += 1
        stats.wait_sum_s += wait
        if wait > stats.wait_max_s:
            stats.wait_max_s = wait
        self.allocator.allocate(tenant, job.demand)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "traffic_dispatched_total",
                help="jobs granted resources by the DRF pump").inc(
                    tenant=tenant)
            self.obs.metrics.histogram(
                "traffic_wait_s",
                help="admission-to-dispatch wait per job").observe(
                    wait, tenant=tenant)
        self.backend.start(
            job.req, on_complete=lambda: self._complete(tenant, job))

    def _complete(self, tenant: str, job: QueuedJob) -> None:
        self.allocator.release(tenant, job.demand)
        stats = self.outcome.tenants[tenant]
        stats.completed += 1
        stats.busy_proc_s += job.req.nproc * job.req.duration_s
        if self.obs.enabled:
            self.obs.metrics.counter(
                "traffic_completed_total",
                help="jobs completed per tenant").inc(tenant=tenant)
        self._pump()

    # -- driving -----------------------------------------------------------
    def prime(self) -> None:
        """Arm the lazy arrival stream without draining the environment.

        For callers embedding the engine in a live testbed (the chaos
        suite's VDCE-backed replays) that drive the shared environment
        in bounded slices themselves; call :meth:`finalize` when done.
        """
        self._schedule_next_arrival()

    def finalize(self) -> ReplayOutcome:
        """Stamp the horizon and final shares; returns the outcome."""
        self.outcome.horizon_s = self.env.now
        self.outcome.final_shares = self.allocator.shares()
        return self.outcome

    def run(self) -> ReplayOutcome:
        """Play the whole stream and drain: returns the measured outcome."""
        self.prime()
        self.env.run()
        return self.finalize()


# -- the packaged replay ---------------------------------------------------

@dataclass(frozen=True)
class ReplayConfig:
    """Everything that determines a replay run (and its report bytes)."""

    generator: str = "open-loop"
    trace_path: str = ""
    seed: int = 11
    arrivals: int = 100_000
    users: int = 1000
    tenants: int = 10
    rate_per_s: float = 40.0
    think_time_s: float = 20.0
    sites: tuple[str, ...] = ("syracuse", "cornell", "rome", "geneva")
    procs_per_site: int = 64
    memory_per_proc_mb: float = 512.0
    weight_skew: float = 0.0
    quota_procs: int = 0
    quota_memory_mb: float = 0.0
    rate_limit_per_s: float = 0.0
    burst: int = 8
    max_pending: int = 0

    def validate(self) -> None:
        if self.generator not in GENERATORS:
            raise ConfigurationError(
                f"unknown generator {self.generator!r}; "
                f"expected one of {GENERATORS}")
        if self.generator == "trace" and not self.trace_path:
            raise ConfigurationError("--trace requires a trace file path")
        if self.arrivals < 0 or self.users < 1 or self.tenants < 1:
            raise ConfigurationError(
                "arrivals must be >= 0; users and tenants >= 1")
        if self.tenants > self.users:
            raise ConfigurationError("tenants may not exceed users")
        if not self.sites or self.procs_per_site < 1:
            raise ConfigurationError(
                "at least one site with >= 1 processor is required")


@dataclass
class ReplayReport:
    """Canonical, deterministic summary of one replay."""

    config: ReplayConfig
    outcome: ReplayOutcome
    admission: dict[str, dict[str, object]]

    def tenant_rows(self) -> list[dict[str, object]]:
        rows = []
        horizon = self.outcome.horizon_s or 1.0
        capacity = (len(self.config.sites) * self.config.procs_per_site
                    * horizon)
        for name in sorted(self.outcome.tenants):
            stats = self.outcome.tenants[name]
            adm = self.admission.get(name, {})
            dispatched = stats.dispatched
            rows.append({
                "tenant": name,
                "arrivals": adm.get("arrivals", 0),
                "admitted": adm.get("admitted", 0),
                "throttled": adm.get("throttled", 0),
                "rejected": adm.get("rejected_total", 0),
                "dispatched": dispatched,
                "completed": stats.completed,
                "utilization": stats.busy_proc_s / capacity,
                "mean_wait_s": (stats.wait_sum_s / dispatched
                                if dispatched else 0.0),
                "max_wait_s": stats.wait_max_s,
                "dominant_share_end": self.outcome.final_shares.get(name,
                                                                    0.0),
            })
        return rows

    def totals(self) -> dict[str, object]:
        rows = self.tenant_rows()
        ints = ("arrivals", "admitted", "throttled", "rejected",
                "dispatched", "completed")
        out: dict[str, object] = {key: sum(int(row[key])  # type: ignore[call-overload]
                                           for row in rows)
                                  for key in ints}
        out["horizon_s"] = self.outcome.horizon_s
        out["utilization"] = sum(float(row["utilization"])  # type: ignore[arg-type]
                                 for row in rows)
        out["drf_decisions"] = self.outcome.drf_decisions
        out["drf_violations"] = self.outcome.drf_violations
        return out

    def fairness(self) -> dict[str, float]:
        """Jain index + spread over delivered tenant service
        (busy processor-seconds)."""
        service = {name: stats.busy_proc_s
                   for name, stats in self.outcome.tenants.items()}
        return fairness_stats(service)

    def render(self) -> str:
        totals = self.totals()
        head = (
            f"replay: {self.config.generator} seed={self.config.seed} "
            f"arrivals={totals['arrivals']} users={self.config.users} "
            f"tenants={self.config.tenants}\n"
            f"horizon {float(totals['horizon_s']):.1f}s  "  # type: ignore[arg-type]
            f"utilization {float(totals['utilization']):.3f}  "  # type: ignore[arg-type]
            f"dispatched {totals['dispatched']}  "
            f"completed {totals['completed']}  "
            f"drf violations {totals['drf_violations']}"
            f"/{totals['drf_decisions']}")
        rows = []
        for row in self.tenant_rows():
            rows.append({key: (f"{value:.4f}"
                               if isinstance(value, float) else value)
                         for key, value in row.items()})
        fairness = self.fairness()
        tail = (f"fairness: jain={fairness['jain_index']:.4f} "
                f"max_share={fairness['max_share']:.4f} "
                f"min_share={fairness['min_share']:.4f}")
        return "\n\n".join([head, format_table("per-tenant", rows), tail])

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, rounded floats, no wall-clock —
        byte-identical across same-config runs (the CI replay contract)."""
        payload = {
            "kind": "traffic-replay",
            "version": 1,
            "config": asdict(self.config),
            "totals": _round_tree(self.totals()),
            "tenants": [_round_tree(row) for row in self.tenant_rows()],
            "fairness": _round_tree(self.fairness()),
            "admission": _round_tree(self.admission),
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _round_tree(value: object) -> object:
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {key: _round_tree(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_tree(item) for item in value]
    return value


def build_arrivals(config: ReplayConfig,
                   rng: RngRegistry) -> Iterable[JobRequest]:
    """The lazy arrival stream for *config* (named rng streams)."""
    templates = TEMPLATE_NAMES
    if config.generator == "open-loop":
        return OpenLoopGenerator(
            rng.stream("traffic-open-loop"), count=config.arrivals,
            rate_per_s=config.rate_per_s, users=config.users,
            tenants=config.tenants, templates=templates)
    if config.generator == "closed-loop":
        return ClosedLoopGenerator(
            rng.stream("traffic-closed-loop"), count=config.arrivals,
            users=config.users, tenants=config.tenants,
            think_time_s=config.think_time_s, templates=templates)
    if config.generator == "synthetic-alibaba":
        return synthetic_alibaba_trace(
            rng.stream("traffic-trace"), count=config.arrivals,
            users=config.users, tenants=config.tenants,
            templates=templates, mean_rate_per_s=config.rate_per_s)
    return load_trace(config.trace_path, tenants=config.tenants,
                      templates=templates)


def run_replay(config: ReplayConfig,
               obs: Observability = OBS_OFF) -> ReplayReport:
    """Run one capacity-model replay end to end, deterministically."""
    config.validate()
    rng = RngRegistry(config.seed).spawn("traffic")
    env = Environment()
    tenants = make_tenants(
        config.tenants, weight_skew=config.weight_skew,
        quota_procs=config.quota_procs,
        quota_memory_mb=config.quota_memory_mb,
        rate_per_s=config.rate_limit_per_s, burst=config.burst,
        max_pending=config.max_pending)
    total_procs = len(config.sites) * config.procs_per_site
    allocator = DRFAllocator(
        capacity_procs=total_procs,
        capacity_memory_mb=total_procs * config.memory_per_proc_mb,
        tenants=tenants)
    backend = CapacityBackend(env, config.sites, config.procs_per_site)
    engine = ReplayEngine(env, build_arrivals(config, rng), tenants,
                          allocator, backend, obs=obs)
    outcome = engine.run()
    admission = {
        name: {
            "arrivals": stats.arrivals,
            "admitted": stats.admitted,
            "throttled": stats.throttled,
            "rejected_total": sum(stats.rejected.values()),
            "rejected": {reason: count
                         for reason, count in sorted(stats.rejected.items())
                         if count},
            "max_queue_depth": stats.max_queue_depth,
        }
        for name, stats in sorted(engine.admission.stats.items())
    }
    return ReplayReport(config=config, outcome=outcome,
                        admission=admission)


def check_report(report: ReplayReport) -> list[str]:
    """Hard replay invariants (the ``repro replay --check`` gate).

    * every arrival is accounted for: admitted + rejected == arrivals,
      and nothing is left throttle-pending after the drain;
    * everything admitted was dispatched and completed (the DES drained);
    * zero DRF violations: every grant went to a share-minimal eligible
      tenant (no tenant sat below fair share while another, with the
      resources to run, was served past it).
    """
    problems = []
    totals = report.totals()
    if totals["admitted"] != totals["dispatched"]:
        problems.append(
            f"admitted {totals['admitted']} != dispatched "
            f"{totals['dispatched']} (jobs stranded in queues)")
    if totals["dispatched"] != totals["completed"]:
        problems.append(
            f"dispatched {totals['dispatched']} != completed "
            f"{totals['completed']} (jobs stranded in flight)")
    for name, row in sorted(report.admission.items()):
        arrivals = int(row["arrivals"])  # type: ignore[arg-type]
        admitted = int(row["admitted"])  # type: ignore[arg-type]
        rejected = int(row["rejected_total"])  # type: ignore[arg-type]
        if admitted + rejected != arrivals:
            problems.append(
                f"tenant {name}: admitted {admitted} + rejected "
                f"{rejected} != arrivals {arrivals}")
    if report.outcome.drf_violations:
        problems.append(
            f"{report.outcome.drf_violations} DRF violations in "
            f"{report.outcome.drf_decisions} decisions")
    shares = report.outcome.final_shares
    if any(share < -1e-9 for share in shares.values()):
        problems.append("negative final dominant share")
    return problems
