"""Replaying traffic through a real VDCE: the full-fidelity backend.

The capacity backend models execution; this backend *runs* it — every
dispatched job builds its AFG template and goes through the complete
submit → schedule → distribute → execute pipeline of a
:class:`~repro.core.vdce.VDCE`, including fault plans and server
failover when the facade carries them.  It is the backend the chaos
suite drives to assert exactly-once execution per tenant under
failures; keep ``max_in_flight`` small — each in-flight job is a whole
application run.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.vdce import VDCE, ApplicationRun
from repro.traffic.templates import template_by_name
from repro.traffic.trace import JobRequest


@dataclass
class ReplayedRun:
    """One trace request bound to its live application run."""

    req: JobRequest
    run: ApplicationRun


@dataclass
class VdceReplayBackend:
    """Execute dispatched jobs as real applications on a started VDCE."""

    vdce: VDCE
    sites: tuple[str, ...]
    k_remote_sites: int = 1
    max_in_flight: int = 4
    in_flight: int = 0
    dispatched: int = 0
    runs: list[ReplayedRun] = field(default_factory=list)

    def fits(self, req: JobRequest) -> bool:
        return self.in_flight < self.max_in_flight \
            and self._next_site() != ""

    def ever_fits(self, req: JobRequest) -> bool:
        return bool(req.template)

    def _next_site(self) -> str:
        """Round-robin over sites whose server (or promoted standby) is
        up: a submit to a headless site is a lost message, so dispatch
        waits — the pump retries on the next admission/completion, by
        which time failover has promoted a standby."""
        count = len(self.sites)
        for offset in range(count):
            site = self.sites[(self.dispatched + offset) % count]
            if self.vdce.world.sites[site].server_is_up():
                return site
        return ""

    def start(self, req: JobRequest,
              on_complete: Callable[[], None]) -> None:
        template = template_by_name(req.template)
        graph = template.build(self.vdce.registry)
        site = self._next_site()
        if not site:
            raise RuntimeError(
                f"backend.start with every site server down for {req.job}")
        self.dispatched += 1
        self.in_flight += 1
        process, run = self.vdce.submit(
            graph, site, k_remote_sites=self.k_remote_sites)
        self.runs.append(ReplayedRun(req=req, run=run))

        def watch(env):  # type: ignore[no-untyped-def]
            yield process
            self.in_flight -= 1
            on_complete()

        self.vdce.env.process(watch(self.vdce.env))

    # -- chaos assertions --------------------------------------------------
    def completions_by_tenant(self) -> dict[str, int]:
        """Completed task-executions per tenant (exactly-once evidence)."""
        out: dict[str, int] = {}
        for item in self.runs:
            if item.run.status == "completed":
                out[item.req.tenant] = (out.get(item.req.tenant, 0)
                                        + len(item.run.completions))
        return out

    def expected_tasks_by_tenant(self) -> dict[str, int]:
        """Graph sizes of completed runs, grouped by tenant."""
        out: dict[str, int] = {}
        for item in self.runs:
            if item.run.status == "completed":
                out[item.req.tenant] = (out.get(item.req.tenant, 0)
                                        + len(item.run.graph))
        return out
