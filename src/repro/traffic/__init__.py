"""``repro.traffic`` — trace-driven traffic: ingestion, generators,
multi-tenant admission, and DRF-fair replay.

The front door for realistic load (ROADMAP item 1): ingest
Uberun/Trinity-style job traces or generate them (synthetic
Alibaba-shaped, open-loop Poisson, closed-loop user population), stream
100k+ arrivals lazily into the DES, and dispatch them across the
federation under real multi-tenancy — per-tenant quotas and token
buckets at admission (:mod:`repro.traffic.admission`), weighted
dominant-resource fairness at dispatch (:mod:`repro.traffic.drf`).
``repro replay`` is the CLI; :mod:`repro.bakeoff.replay` scores
registered schedulers under the same sustained load.
"""

from __future__ import annotations

from repro.traffic.admission import (
    REJECT_REASONS,
    AdmissionController,
    QueuedJob,
    TenantAdmissionStats,
)
from repro.traffic.drf import (
    RESOURCES,
    DRFAllocator,
    DRFGatedScheduler,
    TenantOverShareError,
    TenantShareFilter,
    fairness_stats,
)
from repro.traffic.generators import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    WorkloadShape,
)
from repro.traffic.replay import (
    GENERATORS,
    CapacityBackend,
    ReplayConfig,
    ReplayEngine,
    ReplayReport,
    build_arrivals,
    check_report,
    run_replay,
)
from repro.traffic.templates import (
    TEMPLATE_NAMES,
    TEMPLATES,
    JobTemplate,
    build_graph,
    template_by_name,
)
from repro.traffic.tenancy import make_tenants, provision_tenants
from repro.traffic.trace import (
    JobRequest,
    TraceError,
    dump_trace,
    load_trace,
    parse_trace_line,
    synthetic_alibaba_trace,
    template_of_job,
    tenant_name,
    tenant_of_user,
    user_name,
)

__all__ = [
    "AdmissionController",
    "CapacityBackend",
    "ClosedLoopGenerator",
    "DRFAllocator",
    "DRFGatedScheduler",
    "GENERATORS",
    "JobRequest",
    "JobTemplate",
    "OpenLoopGenerator",
    "QueuedJob",
    "REJECT_REASONS",
    "RESOURCES",
    "ReplayConfig",
    "ReplayEngine",
    "ReplayReport",
    "TEMPLATES",
    "TEMPLATE_NAMES",
    "TenantAdmissionStats",
    "TenantOverShareError",
    "TenantShareFilter",
    "TraceError",
    "WorkloadShape",
    "build_arrivals",
    "build_graph",
    "check_report",
    "dump_trace",
    "fairness_stats",
    "load_trace",
    "make_tenants",
    "parse_trace_line",
    "provision_tenants",
    "run_replay",
    "synthetic_alibaba_trace",
    "template_by_name",
    "template_of_job",
    "tenant_name",
    "tenant_of_user",
    "user_name",
]
