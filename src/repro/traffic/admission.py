"""The admission-control daemon: reject / queue / throttle at the door.

Every arrival passes through one :class:`AdmissionController` before it
may consume federation resources.  Three outcomes:

* **reject** — the job can never run (unknown tenant, demand beyond
  federation capacity or the tenant's quota) or the tenant's pending
  queue is full (bounded backpressure: memory stays bounded no matter
  how fast an open-loop trace pours in);
* **throttle** — the tenant's token bucket is empty: the submission is
  deferred and retried on a deterministic exponential-backoff schedule
  driven by ``Environment.call_later`` (sim-time token refill, so the
  retry instant is a pure function of the seed), giving up after
  ``max_attempts``;
* **queue** — admitted into the tenant's pending queue; the dispatch
  layer (the replay engine's DRF pump) takes it from there.

All counts are per-tenant and, when an
:class:`~repro.obs.Observability` handle is enabled, mirrored into the
metrics registry (``traffic_admitted_total`` and friends).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.obs import OBS_OFF, Observability
from repro.repository.user_accounts import TenantRecord
from repro.simcore.engine import Environment
from repro.traffic.drf import DRFAllocator
from repro.traffic.trace import JobRequest

#: Reject reasons, in reporting order.
REJECT_REASONS = ("unknown-tenant", "infeasible", "queue-full",
                  "throttle-exhausted")


@dataclass
class QueuedJob:
    """One admitted-but-waiting job with its priced demand vector."""

    req: JobRequest
    demand: tuple[float, float]
    queued_at_s: float


@dataclass
class TenantAdmissionStats:
    """Per-tenant admission counters."""

    arrivals: int = 0
    admitted: int = 0
    throttled: int = 0
    rejected: dict[str, int] = field(
        default_factory=lambda: {reason: 0 for reason in REJECT_REASONS})
    max_queue_depth: int = 0


class AdmissionController:
    """Gate submissions against quotas, capacity, and rate limits."""

    def __init__(self, env: Environment,
                 tenants: Mapping[str, TenantRecord],
                 allocator: DRFAllocator,
                 demand_fn: Callable[[JobRequest], tuple[float, float]],
                 on_admit: Callable[[str], None],
                 feasible_fn: Callable[[JobRequest, tuple[float, float]],
                                       bool] | None = None,
                 obs: Observability = OBS_OFF,
                 base_backoff_s: float = 0.5,
                 max_backoff_s: float = 60.0,
                 max_attempts: int = 8) -> None:
        self.env = env
        self.tenants = dict(tenants)
        self.allocator = allocator
        self.demand_fn = demand_fn
        self.on_admit = on_admit
        self.feasible_fn = feasible_fn
        self.obs = obs
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self.max_attempts = max_attempts
        self.queues: dict[str, deque[QueuedJob]] = {
            name: deque() for name in sorted(self.tenants)}
        self.stats: dict[str, TenantAdmissionStats] = {
            name: TenantAdmissionStats() for name in sorted(self.tenants)}
        # token buckets: [tokens, last_refill_time]; rate 0 == unthrottled
        self._buckets: dict[str, list[float]] = {
            name: [float(rec.burst), 0.0]
            for name, rec in self.tenants.items() if rec.rate_per_s > 0}

    # -- token bucket ------------------------------------------------------
    def _take_token(self, tenant: str) -> float:
        """Consume one token; returns 0.0 on success, else seconds until
        the bucket next holds a full token (sim-time refill)."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            return 0.0
        record = self.tenants[tenant]
        now = self.env.now
        tokens = min(float(record.burst),
                     bucket[0] + (now - bucket[1]) * record.rate_per_s)
        bucket[1] = now
        if tokens >= 1.0:
            bucket[0] = tokens - 1.0
            return 0.0
        bucket[0] = tokens
        return (1.0 - tokens) / record.rate_per_s

    # -- the gate ----------------------------------------------------------
    def submit(self, req: JobRequest) -> str:
        """Admit one arrival; returns ``admitted``/``throttled``/``rejected``.

        A throttled submission is owned by the controller from here on:
        it retries itself on the backoff schedule and ends up either
        admitted or rejected (``throttle-exhausted``) without further
        involvement from the submitter.
        """
        tenant = req.tenant
        stats = self.stats.get(tenant)
        if stats is None:
            # unknown tenant: counted under a synthetic stats row so the
            # report still accounts for every arrival
            stats = self.stats.setdefault(tenant, TenantAdmissionStats())
            stats.arrivals += 1
            return self._reject(tenant, stats, "unknown-tenant")
        stats.arrivals += 1
        if self.obs.enabled:
            self.obs.metrics.counter(
                "traffic_arrivals_total",
                help="job arrivals offered to admission").inc(tenant=tenant)
        demand = self.demand_fn(req)
        if not self.allocator.feasible(tenant, demand) or (
                self.feasible_fn is not None
                and not self.feasible_fn(req, demand)):
            return self._reject(tenant, stats, "infeasible")
        return self._admit_or_throttle(req, demand, attempt=1)

    def _admit_or_throttle(self, req: JobRequest,
                           demand: tuple[float, float], attempt: int) -> str:
        tenant = req.tenant
        stats = self.stats[tenant]
        record = self.tenants[tenant]
        queue = self.queues[tenant]
        if record.max_pending and len(queue) >= record.max_pending:
            return self._reject(tenant, stats, "queue-full")
        token_wait = self._take_token(tenant)
        if token_wait > 0.0:
            if attempt >= self.max_attempts:
                return self._reject(tenant, stats, "throttle-exhausted")
            stats.throttled += 1
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "traffic_throttled_total",
                    help="submissions deferred by the token bucket").inc(
                        tenant=tenant)
            backoff = min(self.base_backoff_s * (2.0 ** (attempt - 1)),
                          self.max_backoff_s)
            self.env.call_later(max(token_wait, backoff), self._retry,
                                (req, demand, attempt + 1))
            return "throttled"
        queue.append(QueuedJob(req=req, demand=demand,
                               queued_at_s=self.env.now))
        stats.admitted += 1
        if len(queue) > stats.max_queue_depth:
            stats.max_queue_depth = len(queue)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "traffic_admitted_total",
                help="submissions admitted to the pending queue").inc(
                    tenant=tenant)
            self.obs.metrics.gauge(
                "traffic_queue_depth",
                help="pending jobs per tenant").set(len(queue),
                                                    tenant=tenant)
        self.on_admit(tenant)
        return "admitted"

    def _retry(self, deferred: tuple[JobRequest, tuple[float, float], int]
               ) -> None:
        req, demand, attempt = deferred
        self._admit_or_throttle(req, demand, attempt)

    def _reject(self, tenant: str, stats: TenantAdmissionStats,
                reason: str) -> str:
        stats.rejected[reason] = stats.rejected.get(reason, 0) + 1
        if self.obs.enabled:
            self.obs.metrics.counter(
                "traffic_rejected_total",
                help="submissions rejected at admission").inc(
                    tenant=tenant, reason=reason)
        return "rejected"

    # -- dispatch-side helpers --------------------------------------------
    def pending(self, tenant: str) -> int:
        return len(self.queues[tenant])

    def total_pending(self) -> int:
        return sum(len(q) for q in self.queues.values())
