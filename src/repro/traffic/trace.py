"""Cluster-trace ingestion: the Uberun/Trinity job-tuple format.

A trace is a sequence of :class:`JobRequest` tuples — the
``(job, nproc, submit_time, duration, user)`` shape Uberun's
``SSjobgenerator`` derives from the LANL Trinity trace — optionally
extended with a tenant and an AFG template column.  Everything here is
**lazy**: :func:`load_trace` and :func:`synthetic_alibaba_trace` are
generators, so a 100k-job replay never materialises the full request
list (the replay engine keeps exactly one un-scheduled arrival in
memory at a time).

On-disk format (``#`` comments and blank lines ignored)::

    # job nproc submit_time_s duration_s user [tenant] [template]
    j000001 4 0.0 132.500 u0017 t03 fork-join

When the tenant/template columns are absent they are derived
deterministically from the user and job names (:func:`tenant_of_user`,
:func:`template_of_job`) — a crc32 key, never Python's salted ``hash``.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.repository.user_accounts import DEFAULT_TENANT


class TraceError(ValueError):
    """A malformed or non-replayable trace line."""


@dataclass(frozen=True)
class JobRequest:
    """One job arrival: the Uberun/Trinity tuple plus tenancy binding."""

    job: str
    nproc: int
    submit_time_s: float
    duration_s: float
    user: str
    tenant: str = DEFAULT_TENANT
    template: str = ""

    def as_line(self) -> str:
        """Render the on-disk trace line for this request."""
        return (f"{self.job} {self.nproc} {self.submit_time_s:.6f} "
                f"{self.duration_s:.6f} {self.user} {self.tenant} "
                f"{self.template}").rstrip()


def tenant_name(index: int) -> str:
    return f"t{index:02d}"


def user_name(index: int) -> str:
    return f"u{index:04d}"


def tenant_of_user(user: str, tenants: int) -> str:
    """Deterministic user → tenant assignment (crc32, never ``hash``)."""
    if tenants <= 0:
        return DEFAULT_TENANT
    return tenant_name(zlib.crc32(user.encode("utf-8")) % tenants)


def template_of_job(job: str, templates: tuple[str, ...]) -> str:
    """Deterministic job → AFG-template binding (crc32 keyed on the name)."""
    if not templates:
        return ""
    return templates[zlib.crc32(job.encode("utf-8")) % len(templates)]


def parse_trace_line(line: str, lineno: int = 0) -> JobRequest | None:
    """Parse one trace line; ``None`` for comments and blanks."""
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    parts = text.split()
    if len(parts) < 5 or len(parts) > 7:
        raise TraceError(
            f"trace line {lineno}: expected 5-7 columns "
            f"(job nproc submit duration user [tenant] [template]), "
            f"got {len(parts)}: {text!r}")
    try:
        nproc = int(parts[1])
        submit = float(parts[2])
        duration = float(parts[3])
    except ValueError as exc:
        raise TraceError(f"trace line {lineno}: {exc}") from None
    if nproc < 1:
        raise TraceError(f"trace line {lineno}: nproc must be >= 1")
    if submit < 0 or duration <= 0:
        raise TraceError(
            f"trace line {lineno}: submit must be >= 0 and duration > 0")
    return JobRequest(
        job=parts[0], nproc=nproc, submit_time_s=submit,
        duration_s=duration, user=parts[4],
        tenant=parts[5] if len(parts) > 5 else "",
        template=parts[6] if len(parts) > 6 else "")


def load_trace(path: str | Path, tenants: int = 0,
               templates: tuple[str, ...] = ()) -> Iterator[JobRequest]:
    """Stream a trace file lazily, oldest arrival first.

    Submit times must be non-decreasing (the replay engine chains
    ``call_later`` on inter-arrival gaps); missing tenant/template
    columns are filled deterministically from *tenants* / *templates*.
    """
    path = Path(path)
    last_submit = 0.0
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            req = parse_trace_line(line, lineno)
            if req is None:
                continue
            if req.submit_time_s < last_submit:
                raise TraceError(
                    f"trace line {lineno}: submit times must be "
                    f"non-decreasing ({req.submit_time_s} < {last_submit})")
            last_submit = req.submit_time_s
            if not req.tenant:
                req = replace(req, tenant=tenant_of_user(req.user, tenants))
            if not req.template and templates:
                req = replace(req, template=template_of_job(req.job,
                                                            templates))
            yield req


def dump_trace(requests: Iterable[JobRequest], path: str | Path) -> int:
    """Write requests in the on-disk format; returns the line count."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write("# job nproc submit_time_s duration_s user tenant "
                 "template\n")
        for req in requests:
            fh.write(req.as_line() + "\n")
            count += 1
    return count


#: Alibaba-shaped defaults: heavy-tailed service times (lognormal),
#: mostly-small nproc with a fat tail, and a diurnal arrival-rate wave.
ALIBABA_MEAN_RATE_PER_S = 40.0
ALIBABA_DIURNAL_PERIOD_S = 3600.0
ALIBABA_DIURNAL_AMPLITUDE = 0.6
ALIBABA_DURATION_MEDIAN_S = 45.0
ALIBABA_DURATION_SIGMA = 1.1
ALIBABA_NPROC_P = 0.55
ALIBABA_NPROC_CAP = 32


def synthetic_alibaba_trace(rng: np.random.Generator, count: int,
                            users: int = 1000, tenants: int = 10,
                            templates: tuple[str, ...] = (),
                            mean_rate_per_s: float = ALIBABA_MEAN_RATE_PER_S,
                            diurnal_period_s: float =
                            ALIBABA_DIURNAL_PERIOD_S,
                            diurnal_amplitude: float =
                            ALIBABA_DIURNAL_AMPLITUDE,
                            start_s: float = 0.0) -> Iterator[JobRequest]:
    """Lazy Alibaba-shaped synthetic trace.

    Arrival gaps follow a non-homogeneous Poisson process thinned by a
    sinusoidal diurnal wave; durations are lognormal (median
    :data:`ALIBABA_DURATION_MEDIAN_S`, heavy tail); nproc is geometric
    with cap — the bulk of jobs are 1-4 processors, a few are wide.
    Draw *rng* from a named stream (``registry.stream("traffic-trace")``)
    for reproducibility.
    """
    if count < 0:
        raise TraceError("count must be >= 0")
    if users < 1 or tenants < 1:
        raise TraceError("users and tenants must be >= 1")
    peak_rate = mean_rate_per_s * (1.0 + diurnal_amplitude)
    now = start_s
    emitted = 0
    while emitted < count:
        # thinning: candidate arrivals at the peak rate, accepted with
        # probability rate(t)/peak — an exact non-homogeneous sampler
        now += float(rng.exponential(1.0 / peak_rate))
        phase = 2.0 * np.pi * (now % diurnal_period_s) / diurnal_period_s
        rate = mean_rate_per_s * (
            1.0 + diurnal_amplitude * float(np.sin(phase)))
        if float(rng.random()) * peak_rate > rate:
            continue
        emitted += 1
        uidx = int(rng.integers(users))
        user = user_name(uidx)
        nproc = min(1 + int(rng.geometric(ALIBABA_NPROC_P)) - 1,
                    ALIBABA_NPROC_CAP)
        nproc = max(nproc, 1)
        duration = float(np.exp(
            np.log(ALIBABA_DURATION_MEDIAN_S)
            + ALIBABA_DURATION_SIGMA * float(rng.standard_normal())))
        job = f"j{emitted:06d}"
        yield JobRequest(
            job=job, nproc=nproc, submit_time_s=now,
            duration_s=max(duration, 0.05), user=user,
            tenant=tenant_name(uidx % tenants),
            template=template_of_job(job, templates))
