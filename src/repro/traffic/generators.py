"""Deterministic arrival generators: open-loop and closed-loop.

Both generators are **lazy iterators** of
:class:`~repro.traffic.trace.JobRequest` drawing every random variate
from a single ``numpy.random.Generator`` the caller obtains from a
named :class:`~repro.util.rng.RngRegistry` stream (the DET001
contract) — same seed, same byte-identical arrival sequence.

*Open-loop* (:class:`OpenLoopGenerator`): a rate-parameterised Poisson
process.  Arrivals do not react to the system — the classic
trace-replay regime; the offered load is exactly ``rate_per_s``
regardless of how the federation keeps up.

*Closed-loop* (:class:`ClosedLoopGenerator`): a fixed user population
with think time.  Each simulated user submits one job, "waits" for its
(expected) service, thinks for an exponential pause, and submits again —
so each user has **at most one outstanding job** and the offered load
self-regulates with the population size (the interactive regime).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.traffic.trace import (
    JobRequest,
    TraceError,
    template_of_job,
    tenant_name,
    user_name,
)


@dataclass(frozen=True)
class WorkloadShape:
    """Per-job size distribution shared by both generators.

    Durations are lognormal (``median_s`` scale, ``sigma`` shape);
    processor counts are geometric with success probability ``nproc_p``
    capped at ``nproc_cap`` — small jobs dominate, wide jobs are rare.
    """

    duration_median_s: float = 30.0
    duration_sigma: float = 0.8
    nproc_p: float = 0.6
    nproc_cap: int = 16
    min_duration_s: float = 0.05

    def draw(self, rng: np.random.Generator) -> tuple[int, float]:
        """One (nproc, duration_s) sample."""
        nproc = min(int(rng.geometric(self.nproc_p)), self.nproc_cap)
        duration = float(np.exp(
            np.log(self.duration_median_s)
            + self.duration_sigma * float(rng.standard_normal())))
        return max(nproc, 1), max(duration, self.min_duration_s)


def _check_population(users: int, tenants: int, count: int) -> None:
    if users < 1:
        raise TraceError("users must be >= 1")
    if tenants < 1 or tenants > users:
        raise TraceError("tenants must be in [1, users]")
    if count < 0:
        raise TraceError("count must be >= 0")


class OpenLoopGenerator:
    """Rate-parameterised Poisson arrivals from a simulated population.

    Users are drawn uniformly per arrival; user ``i`` belongs to tenant
    ``i % tenants``, so tenants receive near-equal offered load (the
    DRF fairness tests rely on that symmetry).
    """

    def __init__(self, rng: np.random.Generator, count: int,
                 rate_per_s: float, users: int = 1000, tenants: int = 10,
                 templates: tuple[str, ...] = (),
                 shape: WorkloadShape | None = None,
                 start_s: float = 0.0) -> None:
        if rate_per_s <= 0:
            raise TraceError("rate_per_s must be > 0")
        _check_population(users, tenants, count)
        self._rng = rng
        self.count = count
        self.rate_per_s = rate_per_s
        self.users = users
        self.tenants = tenants
        self.templates = templates
        self.shape = shape or WorkloadShape()
        self.start_s = start_s

    def __iter__(self) -> Iterator[JobRequest]:
        rng = self._rng
        now = self.start_s
        for i in range(self.count):
            now += float(rng.exponential(1.0 / self.rate_per_s))
            uidx = int(rng.integers(self.users))
            nproc, duration = self.shape.draw(rng)
            job = f"j{i + 1:06d}"
            yield JobRequest(
                job=job, nproc=nproc, submit_time_s=now,
                duration_s=duration, user=user_name(uidx),
                tenant=tenant_name(uidx % self.tenants),
                template=template_of_job(job, self.templates))


class ClosedLoopGenerator:
    """Fixed user population with exponential think time.

    Each user cycles submit → service (the drawn duration) → think →
    submit.  The next emission always belongs to the user with the
    earliest ready time (a heap, ties broken by user index), so the
    sequence is a pure function of the rng stream.  Invariant: for any
    user, ``submit[k+1] >= submit[k] + duration[k]`` — at most one
    outstanding job per user.
    """

    def __init__(self, rng: np.random.Generator, count: int,
                 users: int = 100, tenants: int = 10,
                 think_time_s: float = 10.0,
                 templates: tuple[str, ...] = (),
                 shape: WorkloadShape | None = None,
                 start_s: float = 0.0) -> None:
        if think_time_s < 0:
            raise TraceError("think_time_s must be >= 0")
        _check_population(users, tenants, count)
        self._rng = rng
        self.count = count
        self.users = users
        self.tenants = tenants
        self.think_time_s = think_time_s
        self.templates = templates
        self.shape = shape or WorkloadShape()
        self.start_s = start_s

    def _think(self, rng: np.random.Generator) -> float:
        if self.think_time_s == 0:
            return 0.0
        return float(rng.exponential(self.think_time_s))

    def __iter__(self) -> Iterator[JobRequest]:
        rng = self._rng
        # initial think pause staggers the population deterministically
        # (user order, then heap order by ready time)
        ready: list[tuple[float, int]] = [
            (self.start_s + self._think(rng), uidx)
            for uidx in range(self.users)]
        heapq.heapify(ready)
        for i in range(self.count):
            now, uidx = heapq.heappop(ready)
            nproc, duration = self.shape.draw(rng)
            job = f"j{i + 1:06d}"
            yield JobRequest(
                job=job, nproc=nproc, submit_time_s=now,
                duration_s=duration, user=user_name(uidx),
                tenant=tenant_name(uidx % self.tenants),
                template=template_of_job(job, self.templates))
            heapq.heappush(ready, (now + duration + self._think(rng), uidx))
