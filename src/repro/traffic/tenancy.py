"""Tenant provisioning: carving the federation among organisations.

A tenant is a :class:`~repro.repository.user_accounts.TenantRecord` —
the admission contract (quota, DRF weight, token-bucket rate) stored in
the user-accounts database like any other repository row, published
through the delta journal (INV002).  This module builds tenant sets for
replays and provisions them (plus their simulated user accounts) into
every site repository of a federation, exactly as a real VDCE
deployment would register its organisations.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.repository.site_repository import SiteRepository
from repro.repository.user_accounts import TenantRecord
from repro.traffic.trace import tenant_name, user_name


def make_tenants(count: int, weight_skew: float = 0.0,
                 quota_procs: int = 0, quota_memory_mb: float = 0.0,
                 rate_per_s: float = 0.0, burst: int = 8,
                 max_pending: int = 0) -> dict[str, TenantRecord]:
    """Build *count* tenant records ``t00 … tNN``, sorted by name.

    ``weight_skew`` tilts DRF weights linearly: tenant ``i`` gets weight
    ``1 + skew * i / (count - 1)`` — 0 means equal shares.  Quotas and
    rate limits apply uniformly (0 disables each).
    """
    if count < 1:
        raise ValueError("tenant count must be >= 1")
    tenants: dict[str, TenantRecord] = {}
    for i in range(count):
        weight = 1.0
        if weight_skew and count > 1:
            weight = 1.0 + weight_skew * i / (count - 1)
        name = tenant_name(i)
        tenants[name] = TenantRecord(
            name=name, weight=weight, quota_procs=quota_procs,
            quota_memory_mb=quota_memory_mb, rate_per_s=rate_per_s,
            burst=burst, max_pending=max_pending)
    return tenants


def provision_tenants(repositories: Mapping[str, SiteRepository],
                      tenants: Mapping[str, TenantRecord],
                      users: int = 0, users_per_tenant_cap: int = 32
                      ) -> int:
    """Register tenants (and sample user accounts) at every site.

    Tenant records land in full; user accounts — there may be thousands
    of simulated users — are capped at *users_per_tenant_cap* concrete
    rows per tenant (round-robin over the population), enough for
    authentication paths to be exercised without bloating every site
    table.  Returns the number of accounts created per site.
    """
    created = 0
    names = sorted(tenants)
    for _site, repo in sorted(repositories.items()):
        created = 0
        for name in names:
            repo.user_accounts.add_tenant(tenants[name])
        for uidx in range(min(users, len(names) * users_per_tenant_cap)):
            uname = user_name(uidx)
            if uname in repo.user_accounts:
                continue
            repo.user_accounts.add_user(
                uname, password=f"pw-{uname}",
                tenant=names[uidx % len(names)])
            created += 1
    return created
