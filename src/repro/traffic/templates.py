"""AFG template bindings: each trace arrival names an application family.

A replayed job is not an opaque ``(nproc, duration)`` pair — it binds to
one of the canonical application families in
:mod:`repro.workloads.applications`.  A :class:`JobTemplate` is the
static descriptor the replay engine keys on: the family builder plus
the fixed parameterisation, a per-processor memory footprint (the
second DRF resource), and a task-count hint.  Templates never hold
built graphs — :func:`build_graph` constructs an
:class:`~repro.afg.graph.ApplicationFlowGraph` on demand (the scheduled
and VDCE replay backends build one per *dispatch*, so 100k queued
arrivals cost 100k small tuples, not 100k graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.afg.graph import ApplicationFlowGraph
from repro.tasklib import LibraryRegistry
from repro.workloads.applications import APPLICATION_FAMILIES


@dataclass(frozen=True)
class JobTemplate:
    """One application family at a fixed (small) parameterisation."""

    name: str
    family: str
    params: tuple[tuple[str, Any], ...]
    mem_per_proc_mb: float
    tasks_hint: int

    def build(self, registry: LibraryRegistry) -> ApplicationFlowGraph:
        """Construct the AFG for one dispatched job."""
        return build_graph(self, registry)


#: The replay template catalogue: every canonical family, parameterised
#: small enough that a scheduled/VDCE-backed replay dispatch stays cheap.
#: ``mem_per_proc_mb`` is the demand the DRF allocator charges per
#: granted processor.
TEMPLATES: tuple[JobTemplate, ...] = (
    JobTemplate("linear-solver", "linear-solver",
                (("n", 40), ("verify", False)), 384.0, 7),
    JobTemplate("fourier-pipeline", "fourier-pipeline",
                (("n", 1024), ("stages", 2)), 256.0, 6),
    JobTemplate("c3i-scenario", "c3i-scenario",
                (("targets", 16), ("steps", 8)), 320.0, 9),
    JobTemplate("fork-join", "fork-join",
                (("width", 2), ("size", 512)), 192.0, 8),
    JobTemplate("random-layered", "random-layered",
                (("layers", 2), ("width", 2), ("size", 512), ("seed", 3)),
                224.0, 9),
)

TEMPLATE_NAMES: tuple[str, ...] = tuple(t.name for t in TEMPLATES)

_BY_NAME = {t.name: t for t in TEMPLATES}


def template_by_name(name: str) -> JobTemplate:
    """Resolve a template by name (the trace's ``template`` column)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown AFG template {name!r}; available: "
            f"{', '.join(TEMPLATE_NAMES)}") from None


def build_graph(template: JobTemplate,
                registry: LibraryRegistry) -> ApplicationFlowGraph:
    """Build the family graph for *template* against *registry*."""
    builder = APPLICATION_FAMILIES[template.family]
    return builder(registry, **dict(template.params))
