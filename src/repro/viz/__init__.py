"""The three VDCE visualization services (performance, workload, comparative)."""

from repro.viz.postmortem import RunArchive, archive_run
from repro.viz.views import (
    ApplicationPerformanceView,
    ComparativeView,
    WorkloadView,
)

__all__ = [
    "ApplicationPerformanceView",
    "RunArchive",
    "archive_run",
    "ComparativeView",
    "WorkloadView",
]
