"""Post-mortem visualization: persist a run + trace, reload, and render.

Paper section 2.3.2: "The VDCE visualization service provides both
real-time and post-mortem visualizations."  Real-time views subscribe to
the live tracer; this module is the post-mortem half — a JSON archive of
one application run (allocation, completions, trace slice, environment
summary) that can be reloaded later and fed to the same view classes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.run import ApplicationRun
from repro.simcore.trace import TraceRecord, Tracer
from repro.util.errors import RuntimeSystemError

#: trace categories worth archiving for performance forensics
_DEFAULT_CATEGORIES = (
    "task-start", "task-finish", "task-terminated", "vdce:rescheduled",
    "sm:db-update", "sm:start-signal", "gm:host-down", "gm:host-up",
    # fault forensics: injected faults, retries, and detection events
    "fault:host-down", "fault:host-up", "fault:site-down", "fault:site-up",
    "fault:partition-drop", "fault:msg-drop", "fault:msg-delay",
    "fault:msg-dup", "dm:retry", "dm:setup-abandoned", "sm:ack-waived",
    "mon:crashed", "mon:recovered",
)


@dataclass
class RunArchive:
    """A self-contained, JSON-serialisable record of one run."""

    application: str
    execution_id: str
    status: str
    submitted_at: float
    scheduled_at: float
    started_at: float
    finished_at: float
    reschedules: int
    allocation: dict[str, dict[str, Any]]
    tasks: list[dict[str, Any]]               # per-task timeline rows
    trace: list[dict[str, Any]] = field(default_factory=list)

    # -- construction ----------------------------------------------------
    @classmethod
    def from_run(cls, run: ApplicationRun,
                 tracer: Tracer | None = None,
                 categories: tuple[str, ...] = _DEFAULT_CATEGORIES
                 ) -> "RunArchive":
        if run.table is None:
            raise RuntimeSystemError(
                "cannot archive a run that was never scheduled")
        allocation = {
            nid: {"site": e.site, "hosts": list(e.hosts),
                  "predicted_time_s": e.predicted_time_s,
                  "processors": e.processors}
            for nid, e in run.table.entries.items()
        }
        tasks = [
            {"node": nid, "host": host, "start_s": start,
             "finish_s": finish}
            for nid, host, start, finish in run.task_timeline()
        ]
        trace = []
        if tracer is not None:
            for rec in tracer.records:
                if rec.category in categories:
                    detail = {k: v for k, v in rec.detail.items()
                              if isinstance(v, (str, int, float, bool,
                                                type(None)))}
                    trace.append({"time": rec.time,
                                  "category": rec.category,
                                  "actor": rec.actor, "detail": detail})
        return cls(
            application=run.graph.name, execution_id=run.execution_id,
            status=run.status, submitted_at=run.submitted_at,
            scheduled_at=run.scheduled_at, started_at=run.started_at,
            finished_at=run.finished_at, reschedules=run.reschedules,
            allocation=allocation, tasks=tasks, trace=trace)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.__dict__, indent=2,
                                         sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "RunArchive":
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RuntimeSystemError(
                f"cannot load run archive from {path}: {exc}") from exc
        try:
            return cls(**doc)
        except TypeError as exc:
            raise RuntimeSystemError(
                f"{path} is not a run archive: {exc}") from exc

    # -- derived views ----------------------------------------------------------
    @property
    def makespan(self) -> float:
        return self.finished_at - self.submitted_at

    def tracer(self) -> Tracer:
        """Rehydrate the archived trace slice for the live view classes."""
        tr = Tracer()
        for row in self.trace:
            tr.records.append(TraceRecord(
                time=row["time"], category=row["category"],
                actor=row["actor"], detail=dict(row["detail"])))
        return tr

    def host_utilization(self) -> dict[str, float]:
        """Fraction of the execution window each host spent busy."""
        window = max(self.finished_at - self.started_at, 1e-12)
        busy: dict[str, float] = {}
        for row in self.tasks:
            busy[row["host"]] = busy.get(row["host"], 0.0) \
                + (row["finish_s"] - row["start_s"])
        return {h: min(1.0, t / window) for h, t in sorted(busy.items())}

    def render(self, width: int = 40) -> str:
        """A Gantt identical in spirit to ApplicationPerformanceView."""
        if not self.tasks:
            return f"[{self.application}] empty archive"
        t0 = min(r["start_s"] for r in self.tasks)
        t1 = max(r["finish_s"] for r in self.tasks)
        span = max(t1 - t0, 1e-9)
        lines = [f"Post-mortem — {self.application} "
                 f"({self.status}, makespan {self.makespan:.3f}s, "
                 f"{self.reschedules} reschedules)"]
        name_w = max(len(r["node"]) for r in self.tasks)
        host_w = max(len(r["host"]) for r in self.tasks)
        for r in self.tasks:
            lead = round((r["start_s"] - t0) / span * width)
            dur = max(1, round((r["finish_s"] - r["start_s"]) / span
                               * width))
            bar = " " * lead + "█" * min(dur, width - lead)
            lines.append(f"  {r['node']:<{name_w}}  {r['host']:<{host_w}}"
                         f"  |{bar:<{width}}|")
        lines.append("  host utilization during execution:")
        for host, frac in self.host_utilization().items():
            lines.append(f"    {host:<{host_w}}  {frac:6.1%}")
        return "\n".join(lines)


def archive_run(run: ApplicationRun, path: str | Path,
                tracer: Tracer | None = None) -> RunArchive:
    """Convenience: build + save in one call."""
    archive = RunArchive.from_run(run, tracer=tracer)
    archive.save(path)
    return archive
