"""The three VDCE visualization services.

Paper section 2.3.2: "There are three types of visualizations provided in
VDCE: Application Performance Visualization ..., Workload Visualization
..., Comparative Visualization."

A 1997 Java applet drew these; here each view is a data object with a
text renderer, so examples print them and benchmarks assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.run import ApplicationRun
from repro.simcore.trace import Tracer


def _bar(fraction: float, width: int = 30) -> str:
    fraction = max(0.0, min(1.0, fraction))
    n = round(fraction * width)
    return "#" * n + "." * (width - n)


@dataclass
class ApplicationPerformanceView:
    """Per-task execution times + Gantt rows for one run."""

    run: ApplicationRun

    def rows(self) -> list[dict]:
        """Per-task timing rows sorted by start time."""
        out = []
        for nid, host, start, finish in self.run.task_timeline():
            out.append({"task": nid, "host": host, "start_s": start,
                        "finish_s": finish, "elapsed_s": finish - start})
        return out

    def render(self, width: int = 40) -> str:
        rows = self.rows()
        if not rows:
            return f"[{self.run.graph.name}] no completed tasks"
        t0 = min(r["start_s"] for r in rows)
        t1 = max(r["finish_s"] for r in rows)
        span = max(t1 - t0, 1e-9)
        lines = [f"Application Performance — {self.run.graph.name} "
                 f"(makespan {self.run.makespan:.3f}s)"]
        name_w = max(len(r["task"]) for r in rows)
        host_w = max(len(r["host"]) for r in rows)
        for r in rows:
            lead = round((r["start_s"] - t0) / span * width)
            dur = max(1, round(r["elapsed_s"] / span * width))
            bar = " " * lead + "█" * min(dur, width - lead)
            lines.append(
                f"  {r['task']:<{name_w}}  {r['host']:<{host_w}}  "
                f"|{bar:<{width}}| {r['elapsed_s']:.3f}s")
        return "\n".join(lines)


@dataclass
class WorkloadView:
    """Up-to-date workload across VDCE resources, from the trace."""

    tracer: Tracer
    window_s: float = 60.0

    def series(self, until: float | None = None) -> dict[str, list[tuple[float, float]]]:
        """host -> [(time, load)] from the Site Managers' DB updates."""
        out: dict[str, list[tuple[float, float]]] = {}
        records = self.tracer.query(category="sm:db-update",
                                    until=until if until is not None
                                    else float("inf"))
        for rec in records:
            host = rec.detail["host"]
            out.setdefault(host, []).append((rec.time, rec.detail["load"]))
        return out

    def latest(self) -> dict[str, float]:
        """The repository's newest load value per host."""
        return {host: pts[-1][1] for host, pts in self.series().items()}

    def render(self, max_load: float = 4.0) -> str:
        latest = self.latest()
        if not latest:
            return "Workload — no measurements yet"
        lines = ["Workload Visualization (latest repository view)"]
        host_w = max(len(h) for h in latest)
        for host in sorted(latest):
            load = latest[host]
            lines.append(f"  {host:<{host_w}}  "
                         f"[{_bar(load / max_load)}] {load:.2f}")
        return "\n".join(lines)

    #: shade ramp for the heatmap, light to dark
    SHADES = " .:-=+*#%@"

    def heatmap(self, bins: int = 40, max_load: float = 4.0,
                until: float | None = None) -> str:
        """Host x time load heatmap from the repository's update stream.

        Each cell is the mean reported load of one host over one time
        bin, rendered on a ten-step shade ramp; empty cells mean no
        update landed in that bin (the significant-change filter at
        work).
        """
        series = self.series(until=until)
        if not series:
            return "Workload heatmap — no measurements yet"
        t1 = max(t for pts in series.values() for t, _ in pts)
        t0 = min(t for pts in series.values() for t, _ in pts)
        span = max(t1 - t0, 1e-9)
        host_w = max(len(h) for h in series)
        lines = [f"Workload heatmap  t=[{t0:.0f}s, {t1:.0f}s], "
                 f"shade ramp '{self.SHADES}' spans load 0..{max_load}"]
        for host in sorted(series):
            cells = [[] for _ in range(bins)]
            for t, load in series[host]:
                idx = min(int((t - t0) / span * bins), bins - 1)
                cells[idx].append(load)
            row = []
            for bucket in cells:
                if not bucket:
                    row.append(" ")
                    continue
                mean_load = sum(bucket) / len(bucket)
                shade = min(int(mean_load / max_load
                                * (len(self.SHADES) - 1)),
                            len(self.SHADES) - 1)
                row.append(self.SHADES[max(shade, 1)])  # visible if present
            lines.append(f"  {host:<{host_w}} |{''.join(row)}|")
        return "\n".join(lines)


@dataclass
class ComparativeView:
    """Compare runs of the same application on different configurations.

    Paper: "VDCE makes it possible for an end user to experiment and
    evaluate his/her application for different combinations of hardware
    and software medium."
    """

    runs: dict[str, ApplicationRun] = field(default_factory=dict)

    def add(self, label: str, run: ApplicationRun) -> None:
        """Register one configuration's run under a label."""
        self.runs[label] = run

    def table(self) -> list[dict]:
        """Comparison rows sorted by makespan (fastest first)."""
        rows = []
        for label, run in self.runs.items():
            rows.append({
                "configuration": label,
                "status": run.status,
                "makespan_s": run.makespan,
                "scheduling_s": run.scheduling_time,
                "hosts": len(run.table.hosts()) if run.table else 0,
                "sites": len(run.table.sites()) if run.table else 0,
                "reschedules": run.reschedules,
            })
        return sorted(rows, key=lambda r: r["makespan_s"])

    def best(self) -> str:
        """The label of the fastest configuration."""
        if not self.runs:
            raise ValueError("no runs to compare")
        return self.table()[0]["configuration"]

    def render(self) -> str:
        rows = self.table()
        if not rows:
            return "Comparative Visualization — no runs"
        lines = ["Comparative Visualization"]
        label_w = max(len(r["configuration"]) for r in rows)
        worst = max(r["makespan_s"] for r in rows) or 1e-9
        for r in rows:
            lines.append(
                f"  {r['configuration']:<{label_w}}  "
                f"[{_bar(r['makespan_s'] / worst)}] "
                f"{r['makespan_s']:.3f}s  ({r['hosts']} hosts, "
                f"{r['sites']} sites, {r['reschedules']} resched)")
        return "\n".join(lines)
