"""The VDCE facade: environment + submission + lifecycle records."""

from repro.core.run import ApplicationRun
from repro.core.vdce import VDCE

__all__ = ["ApplicationRun", "VDCE"]
