"""The VDCE facade: build an environment, submit applications, run them.

This ties the three paper modules together exactly as Figure 2 draws
them: the Application Editor produces an AFG; the Application Scheduler
(per-site, message-coordinated) maps it; the Runtime System (Site
Manager -> Group Managers -> Application Controllers + Data Managers)
executes it and feeds measurements back into the site repositories.

Typical use::

    vdce = VDCE(seed=1)
    vdce.add_site("syracuse")
    vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    vdce.add_host("syracuse", HostSpec(name="h0", ...))
    ...
    vdce.start()
    editor = vdce.open_editor("alice", "pw", "my-app")
    ... build the graph ...
    run = vdce.run_application(editor.submit(), local_site="syracuse")
    print(run.makespan, run.results())
"""

from __future__ import annotations

from typing import Any

from repro.afg.editor import ApplicationEditor, EditorSession
from repro.afg.graph import ApplicationFlowGraph
from repro.faults import FaultInjector, FaultPlan
from repro.federation import (
    DirectorySync,
    Federation,
    MembershipConfig,
    MembershipDaemon,
)
from repro.net import EXECUTION_REQUEST
from repro.net.topology import LinkSpec
from repro.obs import OBS_OFF, Observability
from repro.prediction.calibration import calibrate_weights
from repro.recovery import RecoveryCoordinator
from repro.repository.site_repository import SiteRepository
from repro.resources.failures import FailureInjector
from repro.resources.groundtruth import ExecutionModel
from repro.resources.host import Host, HostSpec
from repro.resources.loads import OnOffLoad, RandomWalkLoad
from repro.resources.site import VDCEnvironment
from repro.runtime.control.app_controller import ApplicationController
from repro.runtime.control.change_filter import ChangeFilter
from repro.runtime.control.group_manager import GroupManager
from repro.runtime.control.monitor import MonitorDaemon
from repro.runtime.control.site_manager import SiteManager
from repro.runtime.data.data_manager import DataManager
from repro.scheduling.qos import QoSRequirement, require_admission
from repro.scheduling.rescheduling import ReschedulePolicy, Rescheduler
from repro.tasklib.registry import LibraryRegistry
from repro.tasklib import standard_registry
from repro.core.run import ApplicationRun
from repro.util.errors import ConfigurationError, VDCEError


class VDCE:
    """A complete simulated Virtual Distributed Computing Environment."""

    def __init__(self, seed: int = 0,
                 registry: LibraryRegistry | None = None,
                 trace: bool = True,
                 monitor_period_s: float = 2.0,
                 echo_period_s: float = 5.0,
                 echo_timeout_s: float = 1.0,
                 filter_policy: str = "ci",
                 reschedule_policy: ReschedulePolicy | None = None,
                 weight_jitter: float = 0.10,
                 obs: Observability | None = None,
                 batching: bool = True,
                 coalesce_updates: bool = True) -> None:
        self.world = VDCEnvironment(seed=seed, trace=trace)
        #: coalesce same-tick message fan-outs into batched delivery
        #: events; traces are byte-identical either way (chaos CI pins
        #: this), ``False`` keeps the one-process-per-message path.
        self.world.network.batching = batching
        #: observability handle threaded through every daemon; inert
        #: (the shared OBS_OFF singleton) unless one is supplied.
        self.obs = obs if obs is not None else OBS_OFF
        if obs is not None:
            obs.attach_tracer(self.world.tracer)
        self.world.network.set_observability(self.obs)
        self.registry = registry or standard_registry()
        self.model = ExecutionModel(jitter=weight_jitter, seed=seed)
        self.monitor_period_s = monitor_period_s
        self.echo_period_s = echo_period_s
        self.echo_timeout_s = echo_timeout_s
        self.filter_policy = filter_policy
        self.reschedule_policy = reschedule_policy or ReschedulePolicy()
        #: Group Managers coalesce same-tick forwarded monitor samples
        #: into one batched WORKLOAD_UPDATE per round; repository and
        #: WAL *content* is identical either way (per-sample apply)
        self.coalesce_updates = coalesce_updates
        self.failures = FailureInjector(self.world.env, self.world.tracer)
        self.fault_injector: FaultInjector | None = None
        #: failover brain, created lazily by :meth:`enable_failover`
        self.recovery: RecoveryCoordinator | None = None
        #: federation membership view, created by :meth:`enable_membership`
        self.federation: Federation | None = None
        self.repositories: dict[str, SiteRepository] = {}
        self.site_managers: dict[str, SiteManager] = {}
        self.group_managers: dict[tuple[str, str], GroupManager] = {}
        self.monitors: dict[str, MonitorDaemon] = {}
        self.data_managers: dict[str, DataManager] = {}
        self.app_controllers: dict[str, ApplicationController] = {}
        self.load_models: list[Any] = []
        self._byte_orders: dict[str, str] = {}
        self._active_runs: dict[str, ApplicationRun] = {}
        self._execution_seq = 0
        self._started = False

    # -- shared plumbing shortcuts ----------------------------------------
    @property
    def env(self):
        return self.world.env

    @property
    def network(self):
        return self.world.network

    @property
    def topology(self):
        return self.world.topology

    @property
    def tracer(self):
        return self.world.tracer

    @property
    def now(self) -> float:
        return self.env.now

    # -- construction (before start) -----------------------------------------
    def _require_not_started(self, what: str) -> None:
        if self._started:
            raise ConfigurationError(f"{what} must happen before start()")

    def add_site(self, name: str, lan: LinkSpec | None = None):
        """Declare a VDCE site (before start())."""
        self._require_not_started("add_site")
        return self.world.add_site(name, lan=lan)

    def connect_sites(self, a: str, b: str, link: LinkSpec) -> None:
        """Add a WAN link between two declared sites (before start())."""
        self._require_not_started("connect_sites")
        self.world.connect_sites(a, b, link)

    def add_host(self, site: str, spec: HostSpec) -> Host:
        """Register a machine at a site (before start())."""
        self._require_not_started("add_host")
        return self.world.add_host(site, spec)

    def attach_background_load(self, host_address: str,
                               kind: str = "random-walk",
                               **kwargs) -> None:
        """Give one host a synthetic time-sharing load process."""
        host = self.world.host(host_address)
        rng = self.world.rng.stream(f"load:{host_address}")
        if kind == "random-walk":
            model = RandomWalkLoad(self.env, host, rng, **kwargs)
        elif kind == "on-off":
            model = OnOffLoad(self.env, host, rng, **kwargs)
        else:
            raise ConfigurationError(f"unknown load kind {kind!r}")
        self.load_models.append(model)

    # -- start: bring up every daemon ------------------------------------------
    def start(self, calibration_coverage: float = 1.0,
              constrain: dict[str, set[str]] | None = None,
              add_default_user: bool = True) -> None:
        """Populate repositories and launch the runtime daemons.

        *constrain* optionally maps task name -> host addresses holding
        its executable (default: every task installed everywhere).
        """
        if self._started:
            raise ConfigurationError("VDCE already started")
        if not self.world.sites:
            raise ConfigurationError("no sites configured")
        definitions = self.registry.all_tasks()
        for host in self.world.all_hosts():
            self._byte_orders[host.address] = host.spec.byte_order
        for site_name, site in self.world.sites.items():
            repo = self._build_site_repository(
                site_name, site, definitions,
                calibration_coverage=calibration_coverage,
                constrain=constrain, add_default_user=add_default_user)
            self.repositories[site_name] = repo
            sm = self._bring_up_site(site_name, site, repo)
            self._start_site_daemons(site_name, site, sm)
        self._rewire_inboxes()
        self._started = True

    def _build_site_repository(self, site_name: str, site,
                               definitions,
                               calibration_coverage: float = 1.0,
                               constrain: dict[str, set[str]] | None = None,
                               add_default_user: bool = True
                               ) -> SiteRepository:
        """Populate one site's repository (start() and site_join share it)."""
        repo = SiteRepository(site_name)
        hosts = list(site.hosts.values())
        for host in hosts:
            repo.resource_performance.register_host(site_name, host.spec)
        calibrate_weights(
            repo.task_performance, definitions, hosts, self.model,
            coverage=calibration_coverage,
            rng=self.world.rng.stream(f"calibration:{site_name}"))
        for d in definitions:
            for host in hosts:
                allowed = constrain.get(d.name) if constrain else None
                if allowed is not None and host.address not in allowed:
                    continue
                repo.task_constraints.register_executable(
                    d.name, host.address, f"/usr/vdce/bin/{d.name}")
        if add_default_user:
            repo.user_accounts.add_user("vdce", "vdce",
                                        access_domain="multi-site")
        return repo

    def _bring_up_site(self, site_name: str, site,
                       repo: SiteRepository) -> SiteManager:
        """Create and wire one Site Manager (facade hooks included)."""
        sm = SiteManager(self.env, self.network, site, repo,
                         self.topology, tracer=self.tracer,
                         obs=self.obs)
        sm.on_reschedule_request = self._handle_reschedule_request
        self.site_managers[site_name] = sm
        # host-down hook: reroute lost tasks of active executions
        original = sm._on_host_down

        def wrapped(msg, _original=original):
            _original(msg)
            self._handle_host_down(msg.payload["host"])

        sm._on_host_down = wrapped  # type: ignore[method-assign]
        return sm

    def _rewire_inboxes(self) -> None:
        """Rebuild site-manager dispatch tables after hook installation."""
        # _inbox_loop reads handlers at dispatch time via dict lookup on
        # bound methods, so replacing the bound attribute is sufficient;
        # nothing to do — kept for interface clarity.

    def _start_site_daemons(self, site_name: str, site, sm: SiteManager
                            ) -> None:
        for group, members in site.groups.items():
            leader = site.group_leader(group)
            gm = GroupManager(
                self.env, self.network, site_name, group, leader,
                member_hosts=[f"{site_name}/{m}" for m in members],
                site_manager_addr=sm.address,
                echo_period_s=self.echo_period_s,
                echo_timeout_s=self.echo_timeout_s,
                change_filter=ChangeFilter(policy=self.filter_policy),
                tracer=self.tracer, obs=self.obs,
                coalesce_updates=self.coalesce_updates)
            sm.register_group_manager(gm)
            self.group_managers[(site_name, group)] = gm
            for member in members:
                host = site.host(member)
                self.monitors[host.address] = MonitorDaemon(
                    self.env, self.network, host, gm.address,
                    period_s=self.monitor_period_s, tracer=self.tracer,
                    obs=self.obs)
                dm = DataManager(self.env, self.network, host,
                                 byte_orders=self._byte_orders,
                                 retry_rng=self.world.rng.stream(
                                     "retry-jitter"),
                                 tracer=self.tracer, obs=self.obs)
                self.data_managers[host.address] = dm
                self.app_controllers[host.address] = ApplicationController(
                    self.env, self.network, host, self.registry, self.model,
                    dm, gm.address, policy=self.reschedule_policy,
                    tracer=self.tracer, obs=self.obs)

    # -- editor access -----------------------------------------------------
    def open_editor(self, user: str, password: str,
                    application_name: str = "application",
                    site: str | None = None) -> ApplicationEditor:
        """Authenticate against a site's user-accounts DB, open the editor."""
        if not self._started:
            raise ConfigurationError("start() the VDCE before opening editors")
        site = site or sorted(self.repositories)[0]
        session = EditorSession(self.repositories[site].user_accounts,
                                self.registry)
        session.login(user, password)
        return session.open_editor(application_name)

    # -- submission ------------------------------------------------------------
    def submit(self, graph: ApplicationFlowGraph, local_site: str,
               k_remote_sites: int = 1,
               qos: QoSRequirement | None = None,
               queue_aware: bool = False):
        """Submit an application; returns ``(process, run)``.

        The process performs scheduling, QoS admission, distribution, and
        completion tracking; drive the simulation with
        :meth:`run_application` (or run the env yourself and inspect the
        returned :class:`ApplicationRun` as it fills in).
        """
        if not self._started:
            raise ConfigurationError("start() the VDCE before submitting")
        if local_site not in self.site_managers:
            raise ConfigurationError(f"unknown site {local_site!r}")
        graph.validate()
        self._execution_seq += 1
        execution_id = f"exec-{self._execution_seq}"
        run = ApplicationRun(execution_id=execution_id, graph=graph,
                             table=None, report=None,  # type: ignore[arg-type]
                             submitted_at=self.now, status="running")
        self._active_runs[execution_id] = run
        obs = self.obs
        app_span = None
        if obs.enabled:
            app_span = obs.spans.begin(
                graph.name, "application", local_site, self.now,
                execution_id=execution_id)
            obs.spans.bind(("app", execution_id), app_span)
            obs.metrics.counter(
                "vdce_apps_submitted_total",
                help="applications submitted").inc(site=local_site)

        def proc(env):
            sm = self.site_managers[local_site]
            round_span = None
            if obs.enabled:
                round_span = obs.spans.begin(
                    f"schedule:{graph.name}", "schedule-round", sm.address,
                    env.now, parent_id=app_span)
            table, report = yield from sm.schedule_application(
                graph, k_remote_sites=k_remote_sites,
                queue_aware=queue_aware)
            if obs.enabled and round_span is not None:
                obs.spans.end(round_span, env.now,
                              sites=len(report.consulted_sites),
                              tasks=len(table))
            run.table, run.report = table, report
            run.scheduled_at = env.now
            if qos is not None:
                require_admission(graph, table, self.topology, qos)
            state = sm.distribute_allocation(
                table, execution_id, graph,
                max_host_load=(qos.max_host_load if qos is not None
                               else None))
            completions = yield state.finished
            run.started_at = (state.start_signal_time
                              if state.start_signal_time is not None
                              else run.scheduled_at)
            run.completions = dict(completions)
            run.finished_at = env.now
            run.status = "completed"
            if obs.enabled and app_span is not None:
                obs.spans.end(app_span, env.now,
                              tasks=len(run.completions))
                obs.metrics.counter(
                    "vdce_apps_completed_total",
                    help="applications run to completion").inc(
                        site=local_site)
            return run

        process = self.env.process(proc(self.env),
                                   name=f"submit:{graph.name}")
        return process, run

    def run_application(self, graph: ApplicationFlowGraph, local_site: str,
                        k_remote_sites: int = 1,
                        qos: QoSRequirement | None = None,
                        max_sim_time_s: float = 3600.0,
                        step_s: float = 5.0,
                        queue_aware: bool = False) -> ApplicationRun:
        """Submit and drive the simulation until completion (or timeout).

        The environment's periodic daemons never let the event queue
        drain, so completion is awaited in bounded steps rather than with
        ``run(until=event)``.
        """
        process, run = self.submit(graph, local_site,
                                   k_remote_sites=k_remote_sites, qos=qos,
                                   queue_aware=queue_aware)
        deadline = self.now + max_sim_time_s
        while not process.triggered and self.now < deadline:
            self.env.run(until=min(self.now + step_s, deadline))
        if process.triggered:
            if not process.ok:
                run.status = "rejected"
                raise process.exception  # type: ignore[misc]
        else:
            run.status = "timeout"
        return run

    # -- dynamic rescheduling (facade-level coordination) ------------------------
    def _handle_reschedule_request(self, payload: dict) -> None:
        execution_id = payload["execution_id"]
        run = self._active_runs.get(execution_id)
        if run is None or run.table is None:
            return
        entry_payload = dict(payload["entry"])
        node_id = entry_payload["node_id"]
        if node_id in run.completions:
            return  # completed elsewhere in the meantime
        attempt = entry_payload.get("attempt", 0) + 1
        node = run.graph.node(node_id)
        current = run.table.get(node_id)
        rescheduler = Rescheduler(self.repositories,
                                  policy=self.reschedule_policy)
        exclude = {payload["host"]}
        # degraded mode: never re-queue into a partition — the request's
        # own excluded sites plus whatever the coordinating site's
        # membership view currently quarantines
        exclude_sites = set(payload.get("exclude_sites") or ())
        if self.federation is not None and run.report is not None:
            exclude_sites.update(
                self.federation.quarantined(run.report.local_site))
        forced = attempt > self.reschedule_policy.max_attempts
        try:
            new_entry = rescheduler.reschedule(node, current,
                                               exclude_hosts=exclude,
                                               exclude_sites=exclude_sites)
        except VDCEError:
            # nowhere to go: force re-execution where it was
            new_entry = current
            forced = True
        run.table.reassign(new_entry) if new_entry is not current else None
        run.reschedules += 1
        local_site = run.report.local_site if run.report else \
            sorted(self.site_managers)[0]
        sm = self.site_managers[local_site]
        fresh = SiteManager._entry_payload(new_entry, run.graph, run.table)
        fresh["forward_inputs"] = payload.get("inputs") or {}
        fresh["attempt"] = attempt
        fresh["forced"] = forced
        self.network.send(
            sm.address, f"{new_entry.host}/appctl", EXECUTION_REQUEST,
            payload={"application": run.graph.name,
                     "execution_id": execution_id,
                     "entries": [fresh], "coordinator": sm.address,
                     "immediate": True},
            size_bytes=256)
        self.tracer.record(self.now, "vdce:rescheduled", sm.address,
                           node=node_id, to=new_entry.host,
                           attempt=attempt)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "vdce_reschedules_total",
                help="facade-coordinated task reschedules").inc(
                    site=local_site)

    def _handle_host_down(self, host: str) -> None:
        """Reroute unfinished tasks assigned to a failed host."""
        for run in self._active_runs.values():
            if run.table is None or run.status != "running":
                continue
            for entry in run.table.portion_for_host(host):
                if entry.node_id in run.completions:
                    continue
                node = run.graph.node(entry.node_id)
                # Inputs held on the dead machine are lost; the task is
                # re-run in simulation mode (values regenerate only for
                # entry tasks, whose inputs are parameters).
                inputs = {port: None for port in node.input_ports}
                self._handle_reschedule_request({
                    "execution_id": run.execution_id,
                    "entry": {"node_id": entry.node_id,
                              "task_name": entry.task_name},
                    "host": host, "inputs": inputs,
                    "reason": "host-down",
                })

    # -- self-healing control plane (server failover) -----------------------------
    def enable_failover(self, site: str, standby_hosts: list[str],
                        heartbeat_period_s: float = 2.0,
                        miss_limit: int = 3,
                        promote_grace_s: float = 2.0) -> RecoveryCoordinator:
        """Replicate *site*'s server state onto *standby_hosts*.

        Every mutating Site Manager operation is write-ahead-logged and
        shipped to the standbys; if the server machine goes silent for
        ``miss_limit`` heartbeat periods, the lowest-address live standby
        promotes itself (after its rank-staggered grace), rebuilds the
        execution state from the log, and in-flight applications finish
        exactly once.  May be enabled per site; returns the shared
        :class:`~repro.recovery.RecoveryCoordinator`.
        """
        if not self._started:
            raise ConfigurationError(
                "start() the VDCE before enable_failover")
        if site not in self.site_managers:
            raise ConfigurationError(f"unknown site {site!r}")
        if self.recovery is None:
            self.recovery = RecoveryCoordinator(
                self.env, self.network, self.topology,
                tracer=self.tracer, obs=self.obs)
            self.recovery.on_promoted = self._on_server_promoted
            self.recovery.on_host_down = self._handle_host_down
        self.recovery.enable_site(
            self.world.site(site), self.site_managers[site],
            standby_hosts, self.monitors,
            heartbeat_period_s=heartbeat_period_s,
            miss_limit=miss_limit, promote_grace_s=promote_grace_s)
        return self.recovery

    def _on_server_promoted(self, site_name: str, old_sm: SiteManager,
                            new_sm: SiteManager) -> None:
        """Swap the facade's manager map and heal in-flight work.

        The coordinator already re-pushed the WAL's original
        allocations; here every incomplete task of this site's active
        runs is additionally re-issued at its *current* table
        assignment, which covers reschedules the log never saw (their
        immediate pushes were sent from the dead server's role address
        and dropped).  Application Controllers dedup by (execution,
        node), so the overlap is harmless.
        """
        self.site_managers[site_name] = new_sm
        for execution_id in sorted(self._active_runs):
            run = self._active_runs[execution_id]
            if run.status != "running" or run.table is None:
                continue
            if run.report is not None and \
                    run.report.local_site != site_name:
                continue
            for node_id in sorted(run.table.entries):
                if node_id in run.completions:
                    continue
                entry = run.table.get(node_id)
                fresh = SiteManager._entry_payload(entry, run.graph,
                                                   run.table)
                self.network.send(
                    new_sm.address, f"{entry.host}/appctl",
                    EXECUTION_REQUEST,
                    payload={"application": run.graph.name,
                             "execution_id": execution_id,
                             "entries": [fresh],
                             "coordinator": new_sm.address,
                             "immediate": True},
                    size_bytes=256)
        self.tracer.record(self.now, "vdce:failover", new_sm.address,
                           site=site_name)

    # -- elastic federation membership --------------------------------------------
    def enable_membership(self, config: MembershipConfig | None = None
                          ) -> Federation:
        """Start the membership protocol on every site.

        One :class:`~repro.federation.MembershipDaemon` per site server
        heartbeats its peers, quarantines sites it stops hearing from
        (WAN partitions, down servers), and feeds each Site Manager's
        ``site_filter`` so degraded-mode scheduling excludes unreachable
        capacity.  Quarantine triggers the facade's exactly-once
        re-queue of in-flight tasks stranded behind the partition;
        rejoin triggers the WAL/Delta-cursor directory catch-up.
        Idempotent; returns the shared :class:`Federation` view.
        """
        if not self._started:
            raise ConfigurationError(
                "start() the VDCE before enable_membership")
        if self.federation is not None:
            return self.federation
        self.federation = Federation(config=config)
        for site_name in sorted(self.site_managers):
            self._make_membership_daemon(site_name)
        for site_name in sorted(self.federation.daemons):
            daemon = self.federation.daemons[site_name]
            for peer in sorted(self.federation.daemons):
                if peer != site_name:
                    daemon.seed_peer(peer)
        return self.federation

    def _make_membership_daemon(self, site_name: str) -> MembershipDaemon:
        """Build, register, and wire one site's membership daemon."""
        assert self.federation is not None

        def wal_log(kind: str, payload: dict, _site=site_name) -> None:
            # late-bound so the shipper follows a failover promotion
            self.site_managers[_site]._log(kind, payload)

        daemon = MembershipDaemon(
            self.env, self.network, self.world.site(site_name),
            DirectorySync(self.repositories[site_name]),
            config=self.federation.config, tracer=self.tracer,
            obs=self.obs, wal_log=wal_log,
            on_quarantine=self._on_site_quarantined,
            on_rejoin=self._on_site_rejoined)
        self.federation.add(daemon)
        self.site_managers[site_name].site_filter = \
            self.federation.usable_filter(site_name)
        return daemon

    def _on_site_quarantined(self, observer: str, peer: str) -> None:
        """Degraded mode: shed the unreachable site's in-flight work.

        Only runs coordinated by *observer* are touched, so of the many
        sites that may quarantine the same peer exactly one — the
        coordinator — re-queues each task.
        """
        sm = self.site_managers.get(observer)
        if sm is not None:
            sm.waive_site_acks(peer)
        self._requeue_site_tasks(peer, coordinator=observer)
        self.tracer.record(self.now, "vdce:site-quarantined",
                           f"{observer}/server", peer=peer)

    def _on_site_rejoined(self, observer: str, peer: str) -> None:
        """Reconcile after a partition heals.

        Incomplete tasks of *observer*-coordinated runs still assigned
        at *peer* (the forced-fallback leftovers nowhere else could
        take) are re-pushed; Application Controllers dedup by
        ``(execution, node)`` and re-send cached completion reports, so
        work finished behind the partition is recovered rather than
        re-run and nothing executes twice.
        """
        for execution_id in sorted(self._active_runs):
            run = self._active_runs[execution_id]
            if run.status != "running" or run.table is None:
                continue
            if run.report is None or run.report.local_site != observer:
                continue
            sm = self.site_managers[observer]
            for node_id in sorted(run.table.entries):
                if node_id in run.completions:
                    continue
                entry = run.table.get(node_id)
                if entry.site != peer:
                    continue
                fresh = SiteManager._entry_payload(entry, run.graph,
                                                   run.table)
                node = run.graph.node(node_id)
                fresh["forward_inputs"] = {
                    port: None for port in node.input_ports}
                self.network.send(
                    sm.address, f"{entry.host}/appctl", EXECUTION_REQUEST,
                    payload={"application": run.graph.name,
                             "execution_id": execution_id,
                             "entries": [fresh],
                             "coordinator": sm.address,
                             "immediate": True},
                    size_bytes=256)
        self.tracer.record(self.now, "vdce:site-rejoined",
                           f"{observer}/server", peer=peer)

    def _requeue_site_tasks(self, peer: str,
                            coordinator: str | None = None) -> None:
        """Re-queue incomplete tasks placed at *peer* onto reachable sites.

        With *coordinator* set, only that site's runs are considered —
        the exactly-once guard.  Runs coordinated *by* the unreachable
        site itself are skipped: their server keeps driving them inside
        its own partition, and the idempotency keys absorb the overlap
        at rejoin.
        """
        for execution_id in sorted(self._active_runs):
            run = self._active_runs[execution_id]
            if run.status != "running" or run.table is None:
                continue
            local_site = (run.report.local_site
                          if run.report is not None else None)
            if coordinator is not None and local_site != coordinator:
                continue
            if local_site == peer:
                continue
            for node_id in sorted(run.table.entries):
                if node_id in run.completions:
                    continue
                entry = run.table.get(node_id)
                if entry.site != peer:
                    continue
                node = run.graph.node(node_id)
                # inputs behind the partition are unreachable; the task
                # re-runs in simulation mode (cf. _handle_host_down)
                inputs = {port: None for port in node.input_ports}
                self._handle_reschedule_request({
                    "execution_id": execution_id,
                    "entry": {"node_id": node_id,
                              "task_name": entry.task_name},
                    "host": entry.host, "inputs": inputs,
                    "exclude_sites": [peer],
                    "reason": "site-unreachable",
                })
        if self.obs.enabled:
            self.obs.metrics.counter(
                "vdce_degraded_requeues_total",
                help="site-unreachable re-queue sweeps").inc(peer=peer)

    def reachable_capacity(self, observer: str) -> int:
        """Host count across the sites *observer* may currently use.

        The admission-control denominator in degraded mode: load is
        shed against reachable capacity, not nameplate capacity.
        Without membership enabled every site counts.
        """
        total = 0
        for name in sorted(self.world.sites):
            if self.federation is not None and \
                    not self.federation.is_usable(observer, name):
                continue
            total += len(self.world.sites[name].hosts)
        return total

    def site_join(self, name: str, hosts: list[HostSpec],
                  links: dict[str, LinkSpec],
                  sponsor: str | None = None,
                  lan: LinkSpec | None = None,
                  calibration_coverage: float = 1.0):
        """Elastically add a running site to a started federation.

        Provisions the site (hosts, WAN *links* to existing sites, LAN),
        builds and calibrates its repository, launches its full daemon
        stack, announces the join to every member, and bootstraps the
        user-accounts directory with a snapshot transfer from *sponsor*
        (default: the first member, sorted).  Requires
        :meth:`enable_membership`.  Returns the new :class:`Site`.
        """
        if not self._started:
            raise ConfigurationError("start() the VDCE before site_join")
        if self.federation is None:
            raise ConfigurationError(
                "enable_membership() before site_join")
        if not links:
            raise ConfigurationError(
                f"joining site {name!r} needs at least one WAN link")
        members = sorted(self.federation.daemons)
        site = self.world.add_site(name, lan=lan)
        for spec in hosts:
            host = self.world.add_host(name, spec)
            self._byte_orders[host.address] = host.spec.byte_order
        for peer in sorted(links):
            self.world.connect_sites(name, peer, links[peer])
        repo = self._build_site_repository(
            name, site, self.registry.all_tasks(),
            calibration_coverage=calibration_coverage,
            add_default_user=False)  # the directory arrives via snapshot
        self.repositories[name] = repo
        sm = self._bring_up_site(name, site, repo)
        self._start_site_daemons(name, site, sm)
        daemon = self._make_membership_daemon(name)
        for peer in members:
            daemon.seed_peer(peer)
        daemon.announce_join()
        sponsor = sponsor or (members[0] if members else None)
        if sponsor is not None:
            daemon.request_snapshot(sponsor)
        self.tracer.record(self.now, "vdce:site-join", f"{name}/server",
                           hosts=len(hosts), sponsor=sponsor)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "vdce_membership_elastic_total",
                help="elastic site joins/leaves executed").inc(
                    site=name, op="join")
        return site

    def site_leave(self, name: str, poll_period_s: float = 1.0,
                   drain_timeout_s: float = 300.0):
        """Cleanly drain and detach a site; returns the drain process.

        The departure is announced first, so members stop scheduling
        onto the leaver, then the process polls until no active run
        involves the site (as coordinator or executor).  On drain
        timeout its remaining tasks are force-re-queued elsewhere.
        Finally every daemon is stopped and the site removed from the
        world and topology.  Drive the returned process with
        :meth:`run` (or wait on it from another process).
        """
        if self.federation is None:
            raise ConfigurationError(
                "enable_membership() before site_leave")
        daemon = self.federation.daemon(name)
        if poll_period_s <= 0:
            raise ConfigurationError("poll_period_s must be positive")

        def proc():
            daemon.announce_leave()
            deadline = self.now + drain_timeout_s
            while self._site_involved(name) and self.now < deadline:
                yield self.env.timeout(poll_period_s)
            if self._site_involved(name):
                # drain timed out: force the stragglers off the leaver
                for other in sorted(self.site_managers):
                    if other != name:
                        self.site_managers[other].waive_site_acks(name)
                self._requeue_site_tasks(name)
                yield self.env.timeout(poll_period_s)
            daemon.stop()
            self.federation.remove(name)
            self._stop_site_daemons(name)
            del self.site_managers[name]
            del self.repositories[name]
            self.topology.remove_site(name)
            del self.world.sites[name]
            self.tracer.record(self.now, "vdce:site-leave",
                               f"{name}/server")
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "vdce_membership_elastic_total",
                    help="elastic site joins/leaves executed").inc(
                        site=name, op="leave")

        return self.env.process(proc(), name=f"site-leave:{name}")

    def _site_involved(self, name: str) -> bool:
        """Does any active run still coordinate at or execute on *name*?"""
        for run in self._active_runs.values():
            if run.status != "running":
                continue
            if run.report is not None and run.report.local_site == name:
                return True
            if run.table is None:
                continue
            for node_id in run.table.entries:
                if node_id in run.completions:
                    continue
                if run.table.get(node_id).site == name:
                    return True
        return False

    def _stop_site_daemons(self, site_name: str) -> None:
        """Stop and drop every daemon of one site (site_leave teardown)."""
        prefix = f"{site_name}/"
        for mapping in (self.monitors, self.data_managers,
                        self.app_controllers):
            for addr in sorted(a for a in mapping if a.startswith(prefix)):
                mapping.pop(addr).stop()
        for key in sorted(k for k in self.group_managers
                          if k[0] == site_name):
            self.group_managers.pop(key).stop()
        sm = self.site_managers.get(site_name)
        if sm is not None:
            sm.stop()

    # -- fault injection ---------------------------------------------------------
    def apply_fault_plan(self, plan: FaultPlan) -> FaultInjector:
        """Install a :class:`~repro.faults.FaultPlan` on this federation.

        May be called before or during a run; host/site fault times must
        lie in the simulated future.  Repeated calls reuse one injector
        (and its RNG stream), so a session's fault log stays a single
        deterministic sequence.
        """
        if self.fault_injector is None:
            self.fault_injector = FaultInjector(
                self.env, self.network, tracer=self.tracer,
                rng=self.world.rng.stream("faults"),
                host_resolver=self.world.host,
                site_resolver=self.world.site,
                site_hosts=lambda s: list(self.world.site(s).hosts.values()))
        self.fault_injector.install(plan)
        return self.fault_injector

    # -- simulation control ------------------------------------------------------
    def run(self, until: float | None = None):
        """Advance the simulated clock (delegates to the engine)."""
        return self.env.run(until=until)

    def warm_up(self, duration_s: float = 30.0) -> None:
        """Run monitors/loads for a while so repositories hold real data."""
        self.env.run(until=self.now + duration_s)

    def stop(self) -> None:
        """Terminate every daemon and load model.

        After stop() the event queue drains naturally; useful when a
        VDCE instance is embedded in a longer-lived simulation and must
        release its periodic processes.
        """
        for collection in (self.monitors, self.data_managers,
                           self.app_controllers):
            for daemon in collection.values():
                daemon.stop()
        for gm in self.group_managers.values():
            gm.stop()
        for sm in self.site_managers.values():
            sm.stop()
        if self.recovery is not None:
            self.recovery.stop()
        if self.federation is not None:
            for daemon in self.federation.daemons.values():
                daemon.stop()
        for model in self.load_models:
            model.stop()
