"""The VDCE facade: build an environment, submit applications, run them.

This ties the three paper modules together exactly as Figure 2 draws
them: the Application Editor produces an AFG; the Application Scheduler
(per-site, message-coordinated) maps it; the Runtime System (Site
Manager -> Group Managers -> Application Controllers + Data Managers)
executes it and feeds measurements back into the site repositories.

Typical use::

    vdce = VDCE(seed=1)
    vdce.add_site("syracuse")
    vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    vdce.add_host("syracuse", HostSpec(name="h0", ...))
    ...
    vdce.start()
    editor = vdce.open_editor("alice", "pw", "my-app")
    ... build the graph ...
    run = vdce.run_application(editor.submit(), local_site="syracuse")
    print(run.makespan, run.results())
"""

from __future__ import annotations

from typing import Any

from repro.afg.editor import ApplicationEditor, EditorSession
from repro.afg.graph import ApplicationFlowGraph
from repro.faults import FaultInjector, FaultPlan
from repro.net import EXECUTION_REQUEST
from repro.net.topology import LinkSpec
from repro.obs import OBS_OFF, Observability
from repro.prediction.calibration import calibrate_weights
from repro.recovery import RecoveryCoordinator
from repro.repository.site_repository import SiteRepository
from repro.resources.failures import FailureInjector
from repro.resources.groundtruth import ExecutionModel
from repro.resources.host import Host, HostSpec
from repro.resources.loads import OnOffLoad, RandomWalkLoad
from repro.resources.site import VDCEnvironment
from repro.runtime.control.app_controller import ApplicationController
from repro.runtime.control.change_filter import ChangeFilter
from repro.runtime.control.group_manager import GroupManager
from repro.runtime.control.monitor import MonitorDaemon
from repro.runtime.control.site_manager import SiteManager
from repro.runtime.data.data_manager import DataManager
from repro.scheduling.qos import QoSRequirement, require_admission
from repro.scheduling.rescheduling import ReschedulePolicy, Rescheduler
from repro.tasklib.registry import LibraryRegistry
from repro.tasklib import standard_registry
from repro.core.run import ApplicationRun
from repro.util.errors import ConfigurationError, VDCEError


class VDCE:
    """A complete simulated Virtual Distributed Computing Environment."""

    def __init__(self, seed: int = 0,
                 registry: LibraryRegistry | None = None,
                 trace: bool = True,
                 monitor_period_s: float = 2.0,
                 echo_period_s: float = 5.0,
                 echo_timeout_s: float = 1.0,
                 filter_policy: str = "ci",
                 reschedule_policy: ReschedulePolicy | None = None,
                 weight_jitter: float = 0.10,
                 obs: Observability | None = None,
                 batching: bool = True) -> None:
        self.world = VDCEnvironment(seed=seed, trace=trace)
        #: coalesce same-tick message fan-outs into batched delivery
        #: events; traces are byte-identical either way (chaos CI pins
        #: this), ``False`` keeps the one-process-per-message path.
        self.world.network.batching = batching
        #: observability handle threaded through every daemon; inert
        #: (the shared OBS_OFF singleton) unless one is supplied.
        self.obs = obs if obs is not None else OBS_OFF
        if obs is not None:
            obs.attach_tracer(self.world.tracer)
        self.world.network.set_observability(self.obs)
        self.registry = registry or standard_registry()
        self.model = ExecutionModel(jitter=weight_jitter, seed=seed)
        self.monitor_period_s = monitor_period_s
        self.echo_period_s = echo_period_s
        self.echo_timeout_s = echo_timeout_s
        self.filter_policy = filter_policy
        self.reschedule_policy = reschedule_policy or ReschedulePolicy()
        self.failures = FailureInjector(self.world.env, self.world.tracer)
        self.fault_injector: FaultInjector | None = None
        #: failover brain, created lazily by :meth:`enable_failover`
        self.recovery: RecoveryCoordinator | None = None
        self.repositories: dict[str, SiteRepository] = {}
        self.site_managers: dict[str, SiteManager] = {}
        self.group_managers: dict[tuple[str, str], GroupManager] = {}
        self.monitors: dict[str, MonitorDaemon] = {}
        self.data_managers: dict[str, DataManager] = {}
        self.app_controllers: dict[str, ApplicationController] = {}
        self.load_models: list[Any] = []
        self._byte_orders: dict[str, str] = {}
        self._active_runs: dict[str, ApplicationRun] = {}
        self._execution_seq = 0
        self._started = False

    # -- shared plumbing shortcuts ----------------------------------------
    @property
    def env(self):
        return self.world.env

    @property
    def network(self):
        return self.world.network

    @property
    def topology(self):
        return self.world.topology

    @property
    def tracer(self):
        return self.world.tracer

    @property
    def now(self) -> float:
        return self.env.now

    # -- construction (before start) -----------------------------------------
    def _require_not_started(self, what: str) -> None:
        if self._started:
            raise ConfigurationError(f"{what} must happen before start()")

    def add_site(self, name: str, lan: LinkSpec | None = None):
        """Declare a VDCE site (before start())."""
        self._require_not_started("add_site")
        return self.world.add_site(name, lan=lan)

    def connect_sites(self, a: str, b: str, link: LinkSpec) -> None:
        """Add a WAN link between two declared sites (before start())."""
        self._require_not_started("connect_sites")
        self.world.connect_sites(a, b, link)

    def add_host(self, site: str, spec: HostSpec) -> Host:
        """Register a machine at a site (before start())."""
        self._require_not_started("add_host")
        return self.world.add_host(site, spec)

    def attach_background_load(self, host_address: str,
                               kind: str = "random-walk",
                               **kwargs) -> None:
        """Give one host a synthetic time-sharing load process."""
        host = self.world.host(host_address)
        rng = self.world.rng.stream(f"load:{host_address}")
        if kind == "random-walk":
            model = RandomWalkLoad(self.env, host, rng, **kwargs)
        elif kind == "on-off":
            model = OnOffLoad(self.env, host, rng, **kwargs)
        else:
            raise ConfigurationError(f"unknown load kind {kind!r}")
        self.load_models.append(model)

    # -- start: bring up every daemon ------------------------------------------
    def start(self, calibration_coverage: float = 1.0,
              constrain: dict[str, set[str]] | None = None,
              add_default_user: bool = True) -> None:
        """Populate repositories and launch the runtime daemons.

        *constrain* optionally maps task name -> host addresses holding
        its executable (default: every task installed everywhere).
        """
        if self._started:
            raise ConfigurationError("VDCE already started")
        if not self.world.sites:
            raise ConfigurationError("no sites configured")
        definitions = self.registry.all_tasks()
        for host in self.world.all_hosts():
            self._byte_orders[host.address] = host.spec.byte_order
        for site_name, site in self.world.sites.items():
            repo = SiteRepository(site_name)
            hosts = list(site.hosts.values())
            for host in hosts:
                repo.resource_performance.register_host(site_name, host.spec)
            calibrate_weights(
                repo.task_performance, definitions, hosts, self.model,
                coverage=calibration_coverage,
                rng=self.world.rng.stream(f"calibration:{site_name}"))
            for d in definitions:
                for host in hosts:
                    allowed = constrain.get(d.name) if constrain else None
                    if allowed is not None and host.address not in allowed:
                        continue
                    repo.task_constraints.register_executable(
                        d.name, host.address, f"/usr/vdce/bin/{d.name}")
            if add_default_user:
                repo.user_accounts.add_user("vdce", "vdce",
                                            access_domain="multi-site")
            self.repositories[site_name] = repo
            sm = SiteManager(self.env, self.network, site, repo,
                             self.topology, tracer=self.tracer,
                             obs=self.obs)
            sm.on_reschedule_request = self._handle_reschedule_request
            self.site_managers[site_name] = sm
            self._start_site_daemons(site_name, site, sm)
        # host-down hook: reroute lost tasks of active executions
        for sm in self.site_managers.values():
            original = sm._on_host_down

            def wrapped(msg, _original=original):
                _original(msg)
                self._handle_host_down(msg.payload["host"])

            sm._on_host_down = wrapped  # type: ignore[method-assign]
        self._rewire_inboxes()
        self._started = True

    def _rewire_inboxes(self) -> None:
        """Rebuild site-manager dispatch tables after hook installation."""
        # _inbox_loop reads handlers at dispatch time via dict lookup on
        # bound methods, so replacing the bound attribute is sufficient;
        # nothing to do — kept for interface clarity.

    def _start_site_daemons(self, site_name: str, site, sm: SiteManager
                            ) -> None:
        for group, members in site.groups.items():
            leader = site.group_leader(group)
            gm = GroupManager(
                self.env, self.network, site_name, group, leader,
                member_hosts=[f"{site_name}/{m}" for m in members],
                site_manager_addr=sm.address,
                echo_period_s=self.echo_period_s,
                echo_timeout_s=self.echo_timeout_s,
                change_filter=ChangeFilter(policy=self.filter_policy),
                tracer=self.tracer, obs=self.obs)
            sm.register_group_manager(gm)
            self.group_managers[(site_name, group)] = gm
            for member in members:
                host = site.host(member)
                self.monitors[host.address] = MonitorDaemon(
                    self.env, self.network, host, gm.address,
                    period_s=self.monitor_period_s, tracer=self.tracer,
                    obs=self.obs)
                dm = DataManager(self.env, self.network, host,
                                 byte_orders=self._byte_orders,
                                 retry_rng=self.world.rng.stream(
                                     "retry-jitter"),
                                 tracer=self.tracer, obs=self.obs)
                self.data_managers[host.address] = dm
                self.app_controllers[host.address] = ApplicationController(
                    self.env, self.network, host, self.registry, self.model,
                    dm, gm.address, policy=self.reschedule_policy,
                    tracer=self.tracer, obs=self.obs)

    # -- editor access -----------------------------------------------------
    def open_editor(self, user: str, password: str,
                    application_name: str = "application",
                    site: str | None = None) -> ApplicationEditor:
        """Authenticate against a site's user-accounts DB, open the editor."""
        if not self._started:
            raise ConfigurationError("start() the VDCE before opening editors")
        site = site or sorted(self.repositories)[0]
        session = EditorSession(self.repositories[site].user_accounts,
                                self.registry)
        session.login(user, password)
        return session.open_editor(application_name)

    # -- submission ------------------------------------------------------------
    def submit(self, graph: ApplicationFlowGraph, local_site: str,
               k_remote_sites: int = 1,
               qos: QoSRequirement | None = None,
               queue_aware: bool = False):
        """Submit an application; returns ``(process, run)``.

        The process performs scheduling, QoS admission, distribution, and
        completion tracking; drive the simulation with
        :meth:`run_application` (or run the env yourself and inspect the
        returned :class:`ApplicationRun` as it fills in).
        """
        if not self._started:
            raise ConfigurationError("start() the VDCE before submitting")
        if local_site not in self.site_managers:
            raise ConfigurationError(f"unknown site {local_site!r}")
        graph.validate()
        self._execution_seq += 1
        execution_id = f"exec-{self._execution_seq}"
        run = ApplicationRun(execution_id=execution_id, graph=graph,
                             table=None, report=None,  # type: ignore[arg-type]
                             submitted_at=self.now, status="running")
        self._active_runs[execution_id] = run
        obs = self.obs
        app_span = None
        if obs.enabled:
            app_span = obs.spans.begin(
                graph.name, "application", local_site, self.now,
                execution_id=execution_id)
            obs.spans.bind(("app", execution_id), app_span)
            obs.metrics.counter(
                "vdce_apps_submitted_total",
                help="applications submitted").inc(site=local_site)

        def proc(env):
            sm = self.site_managers[local_site]
            round_span = None
            if obs.enabled:
                round_span = obs.spans.begin(
                    f"schedule:{graph.name}", "schedule-round", sm.address,
                    env.now, parent_id=app_span)
            table, report = yield from sm.schedule_application(
                graph, k_remote_sites=k_remote_sites,
                queue_aware=queue_aware)
            if obs.enabled and round_span is not None:
                obs.spans.end(round_span, env.now,
                              sites=len(report.consulted_sites),
                              tasks=len(table))
            run.table, run.report = table, report
            run.scheduled_at = env.now
            if qos is not None:
                require_admission(graph, table, self.topology, qos)
            state = sm.distribute_allocation(
                table, execution_id, graph,
                max_host_load=(qos.max_host_load if qos is not None
                               else None))
            completions = yield state.finished
            run.started_at = (state.start_signal_time
                              if state.start_signal_time is not None
                              else run.scheduled_at)
            run.completions = dict(completions)
            run.finished_at = env.now
            run.status = "completed"
            if obs.enabled and app_span is not None:
                obs.spans.end(app_span, env.now,
                              tasks=len(run.completions))
                obs.metrics.counter(
                    "vdce_apps_completed_total",
                    help="applications run to completion").inc(
                        site=local_site)
            return run

        process = self.env.process(proc(self.env),
                                   name=f"submit:{graph.name}")
        return process, run

    def run_application(self, graph: ApplicationFlowGraph, local_site: str,
                        k_remote_sites: int = 1,
                        qos: QoSRequirement | None = None,
                        max_sim_time_s: float = 3600.0,
                        step_s: float = 5.0,
                        queue_aware: bool = False) -> ApplicationRun:
        """Submit and drive the simulation until completion (or timeout).

        The environment's periodic daemons never let the event queue
        drain, so completion is awaited in bounded steps rather than with
        ``run(until=event)``.
        """
        process, run = self.submit(graph, local_site,
                                   k_remote_sites=k_remote_sites, qos=qos,
                                   queue_aware=queue_aware)
        deadline = self.now + max_sim_time_s
        while not process.triggered and self.now < deadline:
            self.env.run(until=min(self.now + step_s, deadline))
        if process.triggered:
            if not process.ok:
                run.status = "rejected"
                raise process.exception  # type: ignore[misc]
        else:
            run.status = "timeout"
        return run

    # -- dynamic rescheduling (facade-level coordination) ------------------------
    def _handle_reschedule_request(self, payload: dict) -> None:
        execution_id = payload["execution_id"]
        run = self._active_runs.get(execution_id)
        if run is None or run.table is None:
            return
        entry_payload = dict(payload["entry"])
        node_id = entry_payload["node_id"]
        if node_id in run.completions:
            return  # completed elsewhere in the meantime
        attempt = entry_payload.get("attempt", 0) + 1
        node = run.graph.node(node_id)
        current = run.table.get(node_id)
        rescheduler = Rescheduler(self.repositories,
                                  policy=self.reschedule_policy)
        exclude = {payload["host"]}
        forced = attempt > self.reschedule_policy.max_attempts
        try:
            new_entry = rescheduler.reschedule(node, current,
                                               exclude_hosts=exclude)
        except VDCEError:
            # nowhere to go: force re-execution where it was
            new_entry = current
            forced = True
        run.table.reassign(new_entry) if new_entry is not current else None
        run.reschedules += 1
        local_site = run.report.local_site if run.report else \
            sorted(self.site_managers)[0]
        sm = self.site_managers[local_site]
        fresh = SiteManager._entry_payload(new_entry, run.graph, run.table)
        fresh["forward_inputs"] = payload.get("inputs") or {}
        fresh["attempt"] = attempt
        fresh["forced"] = forced
        self.network.send(
            sm.address, f"{new_entry.host}/appctl", EXECUTION_REQUEST,
            payload={"application": run.graph.name,
                     "execution_id": execution_id,
                     "entries": [fresh], "coordinator": sm.address,
                     "immediate": True},
            size_bytes=256)
        self.tracer.record(self.now, "vdce:rescheduled", sm.address,
                           node=node_id, to=new_entry.host,
                           attempt=attempt)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "vdce_reschedules_total",
                help="facade-coordinated task reschedules").inc(
                    site=local_site)

    def _handle_host_down(self, host: str) -> None:
        """Reroute unfinished tasks assigned to a failed host."""
        for run in self._active_runs.values():
            if run.table is None or run.status != "running":
                continue
            for entry in run.table.portion_for_host(host):
                if entry.node_id in run.completions:
                    continue
                node = run.graph.node(entry.node_id)
                # Inputs held on the dead machine are lost; the task is
                # re-run in simulation mode (values regenerate only for
                # entry tasks, whose inputs are parameters).
                inputs = {port: None for port in node.input_ports}
                self._handle_reschedule_request({
                    "execution_id": run.execution_id,
                    "entry": {"node_id": entry.node_id,
                              "task_name": entry.task_name},
                    "host": host, "inputs": inputs,
                    "reason": "host-down",
                })

    # -- self-healing control plane (server failover) -----------------------------
    def enable_failover(self, site: str, standby_hosts: list[str],
                        heartbeat_period_s: float = 2.0,
                        miss_limit: int = 3,
                        promote_grace_s: float = 2.0) -> RecoveryCoordinator:
        """Replicate *site*'s server state onto *standby_hosts*.

        Every mutating Site Manager operation is write-ahead-logged and
        shipped to the standbys; if the server machine goes silent for
        ``miss_limit`` heartbeat periods, the lowest-address live standby
        promotes itself (after its rank-staggered grace), rebuilds the
        execution state from the log, and in-flight applications finish
        exactly once.  May be enabled per site; returns the shared
        :class:`~repro.recovery.RecoveryCoordinator`.
        """
        if not self._started:
            raise ConfigurationError(
                "start() the VDCE before enable_failover")
        if site not in self.site_managers:
            raise ConfigurationError(f"unknown site {site!r}")
        if self.recovery is None:
            self.recovery = RecoveryCoordinator(
                self.env, self.network, self.topology,
                tracer=self.tracer, obs=self.obs)
            self.recovery.on_promoted = self._on_server_promoted
            self.recovery.on_host_down = self._handle_host_down
        self.recovery.enable_site(
            self.world.site(site), self.site_managers[site],
            standby_hosts, self.monitors,
            heartbeat_period_s=heartbeat_period_s,
            miss_limit=miss_limit, promote_grace_s=promote_grace_s)
        return self.recovery

    def _on_server_promoted(self, site_name: str, old_sm: SiteManager,
                            new_sm: SiteManager) -> None:
        """Swap the facade's manager map and heal in-flight work.

        The coordinator already re-pushed the WAL's original
        allocations; here every incomplete task of this site's active
        runs is additionally re-issued at its *current* table
        assignment, which covers reschedules the log never saw (their
        immediate pushes were sent from the dead server's role address
        and dropped).  Application Controllers dedup by (execution,
        node), so the overlap is harmless.
        """
        self.site_managers[site_name] = new_sm
        for execution_id in sorted(self._active_runs):
            run = self._active_runs[execution_id]
            if run.status != "running" or run.table is None:
                continue
            if run.report is not None and \
                    run.report.local_site != site_name:
                continue
            for node_id in sorted(run.table.entries):
                if node_id in run.completions:
                    continue
                entry = run.table.get(node_id)
                fresh = SiteManager._entry_payload(entry, run.graph,
                                                   run.table)
                self.network.send(
                    new_sm.address, f"{entry.host}/appctl",
                    EXECUTION_REQUEST,
                    payload={"application": run.graph.name,
                             "execution_id": execution_id,
                             "entries": [fresh],
                             "coordinator": new_sm.address,
                             "immediate": True},
                    size_bytes=256)
        self.tracer.record(self.now, "vdce:failover", new_sm.address,
                           site=site_name)

    # -- fault injection ---------------------------------------------------------
    def apply_fault_plan(self, plan: FaultPlan) -> FaultInjector:
        """Install a :class:`~repro.faults.FaultPlan` on this federation.

        May be called before or during a run; host/site fault times must
        lie in the simulated future.  Repeated calls reuse one injector
        (and its RNG stream), so a session's fault log stays a single
        deterministic sequence.
        """
        if self.fault_injector is None:
            self.fault_injector = FaultInjector(
                self.env, self.network, tracer=self.tracer,
                rng=self.world.rng.stream("faults"),
                host_resolver=self.world.host,
                site_resolver=self.world.site,
                site_hosts=lambda s: list(self.world.site(s).hosts.values()))
        self.fault_injector.install(plan)
        return self.fault_injector

    # -- simulation control ------------------------------------------------------
    def run(self, until: float | None = None):
        """Advance the simulated clock (delegates to the engine)."""
        return self.env.run(until=until)

    def warm_up(self, duration_s: float = 30.0) -> None:
        """Run monitors/loads for a while so repositories hold real data."""
        self.env.run(until=self.now + duration_s)

    def stop(self) -> None:
        """Terminate every daemon and load model.

        After stop() the event queue drains naturally; useful when a
        VDCE instance is embedded in a longer-lived simulation and must
        release its periodic processes.
        """
        for collection in (self.monitors, self.data_managers,
                           self.app_controllers):
            for daemon in collection.values():
                daemon.stop()
        for gm in self.group_managers.values():
            gm.stop()
        for sm in self.site_managers.values():
            sm.stop()
        if self.recovery is not None:
            self.recovery.stop()
        for model in self.load_models:
            model.stop()
