"""Application run records: what a submission returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.afg.graph import ApplicationFlowGraph
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.site_scheduler import ScheduleReport

#: terminal states of an application run
STATUSES = ("completed", "timeout", "rejected")


@dataclass
class ApplicationRun:
    """The full record of one application's trip through the VDCE."""

    execution_id: str
    graph: ApplicationFlowGraph
    table: ResourceAllocationTable
    report: ScheduleReport
    status: str = "completed"
    submitted_at: float = 0.0
    scheduled_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    completions: dict[str, dict] = field(default_factory=dict)
    reschedules: int = 0

    @property
    def makespan(self) -> float:
        """Execution time from submission to last task completion."""
        return self.finished_at - self.submitted_at

    @property
    def execution_time(self) -> float:
        """Time from the start signal to the last task completion."""
        return self.finished_at - self.started_at

    @property
    def scheduling_time(self) -> float:
        """Time the scheduling round took (multicast + walk)."""
        return self.scheduled_at - self.submitted_at

    def results(self) -> dict[str, dict[str, Any]]:
        """Outputs of the exit tasks (real values when impls ran)."""
        out: dict[str, dict[str, Any]] = {}
        for nid, payload in self.completions.items():
            if "outputs" in payload:
                out[nid] = payload["outputs"]
        return out

    def task_timeline(self) -> list[tuple[str, str, float, float]]:
        """(node, host, start, finish) rows, by start time."""
        rows = [
            (nid, p["host"], p["started_s"], p["started_s"] + p["elapsed_s"])
            for nid, p in self.completions.items()
        ]
        return sorted(rows, key=lambda r: (r[2], r[0]))

    def summary(self) -> dict[str, Any]:
        return {
            "execution_id": self.execution_id,
            "application": self.graph.name,
            "status": self.status,
            "tasks": len(self.graph),
            "makespan_s": self.makespan,
            "scheduling_time_s": self.scheduling_time,
            "sites": sorted(self.table.sites()),
            "hosts": len(self.table.hosts()),
            "reschedules": self.reschedules,
        }
