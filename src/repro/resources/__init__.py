"""Resource model: hosts, sites, background loads, failure injection."""

from repro.resources.failures import FailureInjector
from repro.resources.host import (
    ARCHITECTURES,
    BYTE_ORDERS,
    OPERATING_SYSTEMS,
    Host,
    HostSpec,
)
from repro.resources.loads import (
    LoadModel,
    OnOffLoad,
    RandomWalkLoad,
    SpikeLoad,
    TraceLoad,
    attach_random_loads,
    diurnal_trace,
)
from repro.resources.site import Site, VDCEnvironment, build_environment

__all__ = [
    "ARCHITECTURES",
    "BYTE_ORDERS",
    "FailureInjector",
    "Host",
    "HostSpec",
    "LoadModel",
    "OPERATING_SYSTEMS",
    "OnOffLoad",
    "RandomWalkLoad",
    "Site",
    "SpikeLoad",
    "TraceLoad",
    "VDCEnvironment",
    "attach_random_loads",
    "build_environment",
    "diurnal_trace",
]
