"""Failure injection.

The Resource Controller detects node failures through the Group Manager's
echo packets (paper section 2.3.1).  This module provides the faults to
detect: scheduled crashes/recoveries and random crash processes.  A crash
simply sets ``host.up = False`` — in-flight messages to the host are then
dropped by the network layer and the host stops answering echoes, so
detection latency is a real, measurable quantity (experiment F6).
"""

from __future__ import annotations

import numpy as np

from repro.resources.host import Host
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError


class FailureInjector:
    """Schedules host crashes and recoveries on the simulated clock."""

    def __init__(self, env: Environment, tracer: Tracer | None = None) -> None:
        self.env = env
        self.tracer = tracer or Tracer(enabled=False)
        #: log of (time, host_address, event) tuples, event in {down, up}
        self.log: list[tuple[float, str, str]] = []

    def _set(self, host: Host, up: bool) -> None:
        host.up = up
        event = "up" if up else "down"
        self.log.append((self.env.now, host.address, event))
        self.tracer.record(self.env.now, f"failure:{event}", host.address)

    def crash_at(self, host: Host, when: float,
                 recover_after: float | None = None) -> None:
        """Crash *host* at simulated time *when*; optionally recover later."""
        if when < self.env.now:
            raise ConfigurationError(
                f"cannot schedule crash in the past ({when} < {self.env.now})")
        if recover_after is not None and recover_after <= 0:
            raise ConfigurationError("recover_after must be positive")

        def proc(env):
            yield env.timeout(when - env.now)
            self._set(host, up=False)
            if recover_after is not None:
                yield env.timeout(recover_after)
                self._set(host, up=True)

        self.env.process(proc(self.env), name=f"crash:{host.address}")

    def random_crashes(self, host: Host, rng: np.random.Generator,
                       mtbf_s: float, mttr_s: float) -> None:
        """Exponential mean-time-between-failures / mean-time-to-repair."""
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ConfigurationError("MTBF and MTTR must be positive")

        def proc(env):
            while True:
                yield env.timeout(float(rng.exponential(mtbf_s)))
                self._set(host, up=False)
                yield env.timeout(float(rng.exponential(mttr_s)))
                self._set(host, up=True)

        self.env.process(proc(self.env), name=f"mtbf:{host.address}")

    def downtime(self, host_address: str, until: float | None = None) -> float:
        """Total simulated seconds *host_address* spent down so far."""
        horizon = self.env.now if until is None else until
        total = 0.0
        down_since: float | None = None
        for when, addr, event in self.log:
            if addr != host_address or when > horizon:
                continue
            if event == "down" and down_since is None:
                down_since = when
            elif event == "up" and down_since is not None:
                total += when - down_since
                down_since = None
        if down_since is not None:
            total += horizon - down_since
        return total
