"""Ground-truth execution model of the simulated testbed.

The real VDCE measured task times on real machines.  In the simulation,
this model *is* the machine: it decides how long a task actually takes on
a host.  Everything the scheduler believes comes instead from the
repository (trial-run calibration + monitoring), so the gap between this
model and the repository view is genuine, not circular.

The model reproduces the paper's key empirical observation (section
2.2.1, citing Yan & Zhang and Zaki et al.): *computing power is
task-dependent* — "a processor may give the best execution time for a
specific application, but it may give the worst time for another."  Each
(task-library, architecture) pair has an affinity factor, plus a
deterministic per-(task, host) jitter, on top of the host's general
``cpu_factor``.
"""

from __future__ import annotations

import zlib

from repro.resources.host import Host
from repro.tasklib.base import TaskDefinition

#: How well each architecture runs each library, relative to 1.0
#: (< 1 faster, > 1 slower).  Chosen so that no architecture dominates:
#: e.g. alpha is the best FPU (matrix) but mediocre on branchy C3I code.
_AFFINITY: dict[tuple[str, str], float] = {
    ("matrix-operations", "sparc"): 1.00,
    ("matrix-operations", "x86"): 1.25,
    ("matrix-operations", "alpha"): 0.70,
    ("matrix-operations", "rs6000"): 0.85,
    ("matrix-operations", "mips"): 1.10,
    ("matrix-operations", "paragon"): 0.95,
    ("fourier-analysis", "sparc"): 1.00,
    ("fourier-analysis", "x86"): 0.90,
    ("fourier-analysis", "alpha"): 0.85,
    ("fourier-analysis", "rs6000"): 1.20,
    ("fourier-analysis", "mips"): 0.95,
    ("fourier-analysis", "paragon"): 1.05,
    ("c3i", "sparc"): 1.00,
    ("c3i", "x86"): 0.80,
    ("c3i", "alpha"): 1.15,
    ("c3i", "rs6000"): 0.95,
    ("c3i", "mips"): 1.05,
    ("c3i", "paragon"): 1.30,
}


class ExecutionModel:
    """Deterministic ground truth for task durations on hosts."""

    def __init__(self, jitter: float = 0.10, seed: int = 0) -> None:
        """*jitter* is the amplitude of per-(task, host) deviation."""
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")
        self.jitter = jitter
        self.seed = seed

    def affinity(self, library: str, arch: str) -> float:
        return _AFFINITY.get((library, arch), 1.0)

    def true_weight(self, definition: TaskDefinition, host: Host) -> float:
        """Ground-truth computing-power weight of *host* for this task.

        ``weight >= cpu_factor * affinity * (1 - jitter)`` and is stable
        across runs: it is keyed on (seed, task name, host address).
        """
        base = host.spec.cpu_factor * self.affinity(definition.library,
                                                    host.spec.arch)
        key = f"{self.seed}:{definition.name}:{host.address}"
        h = zlib.crc32(key.encode("utf-8")) / 0xFFFFFFFF  # [0, 1]
        return base * (1.0 + self.jitter * (2.0 * h - 1.0))

    def dedicated_duration(self, definition: TaskDefinition,
                           input_size: float, host: Host,
                           processors: int = 1) -> float:
        """Execution time on *host* with no competing load."""
        return definition.base_execution_time(
            input_size, processors=processors) * self.true_weight(
                definition, host)

    def duration(self, definition: TaskDefinition, input_size: float,
                 host: Host, processors: int = 1) -> float:
        """Actual execution time including the host's current time-sharing
        slowdown and memory pressure (sampled at start; the executor may
        re-sample for long tasks)."""
        memory = definition.memory_required_mb(input_size)
        return self.dedicated_duration(
            definition, input_size, host, processors) * host.slowdown(
                extra_memory_mb=memory)
