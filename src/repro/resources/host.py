"""Hosts: the machines making up a VDCE site.

A host has the *static attributes* the paper stores once in the
resource-performance database (host name, IP, architecture type, OS type,
total memory) and the *dynamic state* the Monitor daemons sample
periodically (CPU load, available memory), plus up/down status maintained
by the Group Manager's echo packets.

``cpu_factor`` is the host's general relative speed (base processor =
1.0; larger is slower).  Per-task heterogeneity beyond this general
factor — the paper's observation, via [16, 17], that "a processor may
give the best execution time for a specific application but the worst for
another" — lives in the task-performance database's computing-power
weights, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError

#: Architectures and operating systems of the paper's era; purely
#: descriptive labels used for machine-type preferences and data
#: conversion decisions.
ARCHITECTURES = ("sparc", "x86", "alpha", "rs6000", "mips", "paragon")
OPERATING_SYSTEMS = ("solaris", "sunos", "linux", "osf1", "aix", "irix")
BYTE_ORDERS = {"sparc": "big", "x86": "little", "alpha": "little",
               "rs6000": "big", "mips": "big", "paragon": "little"}


@dataclass(frozen=True)
class HostSpec:
    """Static description of a machine (the repository's static attributes)."""

    name: str
    arch: str = "sparc"
    os: str = "solaris"
    cpu_factor: float = 1.0
    memory_mb: float = 128.0
    group: str = "group-0"
    ip: str = "0.0.0.0"

    def __post_init__(self) -> None:
        if self.arch not in ARCHITECTURES:
            raise ConfigurationError(
                f"unknown architecture {self.arch!r}; "
                f"expected one of {ARCHITECTURES}")
        if self.os not in OPERATING_SYSTEMS:
            raise ConfigurationError(
                f"unknown OS {self.os!r}; expected one of {OPERATING_SYSTEMS}")
        if self.cpu_factor <= 0:
            raise ConfigurationError("cpu_factor must be positive")
        if self.memory_mb <= 0:
            raise ConfigurationError("memory_mb must be positive")

    @property
    def byte_order(self) -> str:
        return BYTE_ORDERS[self.arch]


@dataclass
class Host:
    """A live machine: static spec plus mutable runtime state."""

    spec: HostSpec
    site: str
    true_load: float = 0.0       # ground-truth background CPU load (>= 0)
    memory_used_mb: float = 0.0  # ground-truth memory pressure
    up: bool = True
    running_tasks: int = 0
    _task_load: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if "/" in self.spec.name:
            raise ConfigurationError(
                f"host name {self.spec.name!r} may not contain '/'")

    # -- identity ---------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def address(self) -> str:
        """Network address ``site/host``."""
        return f"{self.site}/{self.spec.name}"

    # -- dynamic attributes (what a Monitor daemon samples) ---------------
    @property
    def cpu_load(self) -> float:
        """Instantaneous total CPU load: background + VDCE task load."""
        return self.true_load + self._task_load

    @property
    def memory_available_mb(self) -> float:
        return max(0.0, self.spec.memory_mb - self.memory_used_mb)

    # -- execution accounting ----------------------------------------------
    def task_started(self, load: float = 1.0, memory_mb: float = 0.0) -> None:
        """Record a VDCE task beginning execution on this host."""
        self.running_tasks += 1
        self._task_load += load
        self.memory_used_mb += memory_mb

    def task_finished(self, load: float = 1.0, memory_mb: float = 0.0) -> None:
        if self.running_tasks <= 0:
            raise ConfigurationError(
                f"task_finished() on {self.name} with no running task")
        self.running_tasks -= 1
        self._task_load = max(0.0, self._task_load - load)
        self.memory_used_mb = max(0.0, self.memory_used_mb - memory_mb)

    # -- ground-truth slowdown model ---------------------------------------
    def slowdown(self, extra_memory_mb: float = 0.0) -> float:
        """Multiplicative execution-time factor from time-sharing.

        A dedicated machine has slowdown 1.0.  Each unit of competing CPU
        load stretches execution proportionally (round-robin
        time-sharing); overflowing physical memory causes a steep paging
        penalty.  This is the *ground truth* the simulator uses; the
        scheduler only sees the repository's (possibly stale) view.
        """
        factor = 1.0 + max(0.0, self.cpu_load)
        overflow = (self.memory_used_mb + extra_memory_mb) - self.spec.memory_mb
        if overflow > 0:
            factor *= 1.0 + 4.0 * overflow / self.spec.memory_mb
        return factor
