"""Background time-sharing load models.

The paper's hosts are *non-dedicated*: other users' processes share the
CPU, which is why the scheduler needs up-to-date load measurements and
forecasting.  These simulated load processes mutate ``host.true_load``
over time so monitors have something real to sample and predictions have
something real to be wrong about.

Three models, all running as simcore processes:

* :class:`RandomWalkLoad` — mean-reverting random walk (Ornstein-
  Uhlenbeck-like), the classic "Unix load average" shape.
* :class:`OnOffLoad` — bursty interactive users: exponential on/off
  periods with a fixed load while on.
* :class:`SpikeLoad` — scheduled load spikes, used by the rescheduling
  experiment (A2) to trigger the Application Controller's overload path.
"""

from __future__ import annotations

import numpy as np

from repro.resources.host import Host
from repro.simcore.engine import Environment
from repro.util.errors import ConfigurationError


class LoadModel:
    """Base class: attaches a load process to a host."""

    def __init__(self, env: Environment, host: Host,
                 rng: np.random.Generator, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ConfigurationError("load update interval must be positive")
        self.env = env
        self.host = host
        self.rng = rng
        self.interval_s = interval_s
        self.process = env.process(self._run(), name=f"load:{host.address}")

    def _run(self):
        raise NotImplementedError

    def stop(self) -> None:
        """Halt this load model's process."""
        if self.process.is_alive:
            self.process.interrupt("stop")


class RandomWalkLoad(LoadModel):
    """Mean-reverting random walk: ``L += theta*(mu - L) + sigma*N(0,1)``."""

    def __init__(self, env: Environment, host: Host,
                 rng: np.random.Generator, mean: float = 0.5,
                 reversion: float = 0.2, volatility: float = 0.15,
                 interval_s: float = 1.0) -> None:
        if mean < 0:
            raise ConfigurationError("mean load must be >= 0")
        if not 0 < reversion <= 1:
            raise ConfigurationError("reversion must be in (0, 1]")
        self.mean = mean
        self.reversion = reversion
        self.volatility = volatility
        super().__init__(env, host, rng, interval_s)

    def _run(self):
        self.host.true_load = max(0.0, self.mean
                                  + self.volatility * self.rng.standard_normal())
        while True:
            yield self.env.timeout(self.interval_s)
            load = self.host.true_load
            load += self.reversion * (self.mean - load)
            load += self.volatility * self.rng.standard_normal()
            self.host.true_load = max(0.0, load)


class OnOffLoad(LoadModel):
    """Bursty load: exponential off periods, exponential on periods."""

    def __init__(self, env: Environment, host: Host,
                 rng: np.random.Generator, on_load: float = 1.0,
                 mean_on_s: float = 20.0, mean_off_s: float = 40.0) -> None:
        if on_load < 0:
            raise ConfigurationError("on_load must be >= 0")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("on/off period means must be positive")
        self.on_load = on_load
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        super().__init__(env, host, rng, interval_s=1.0)

    def _run(self):
        while True:
            yield self.env.timeout(float(self.rng.exponential(self.mean_off_s)))
            self.host.true_load += self.on_load
            yield self.env.timeout(float(self.rng.exponential(self.mean_on_s)))
            self.host.true_load = max(0.0, self.host.true_load - self.on_load)


class SpikeLoad(LoadModel):
    """Deterministic load spikes: ``[(start_s, duration_s, extra_load)]``."""

    def __init__(self, env: Environment, host: Host,
                 spikes: list[tuple[float, float, float]]) -> None:
        for start, duration, extra in spikes:
            if start < 0 or duration <= 0 or extra < 0:
                raise ConfigurationError(f"invalid spike {(start, duration, extra)}")
        self.spikes = sorted(spikes)
        super().__init__(env, host, rng=np.random.default_rng(0), interval_s=1.0)

    def _run(self):
        now = 0.0
        for start, duration, extra in self.spikes:
            if start > now:
                yield self.env.timeout(start - now)
                now = start
            self.host.true_load += extra
            yield self.env.timeout(duration)
            now += duration
            self.host.true_load = max(0.0, self.host.true_load - extra)


class TraceLoad(LoadModel):
    """Replay a recorded load trace: ``[(time_s, load), ...]``.

    Points must be time-sorted; the load holds its last value between
    points, and the trace optionally loops (``repeat=True``) so long
    simulations keep realistic structure.
    """

    def __init__(self, env: Environment, host: Host,
                 trace: list[tuple[float, float]],
                 repeat: bool = False) -> None:
        if not trace:
            raise ConfigurationError("trace may not be empty")
        times = [t for t, _v in trace]
        if times != sorted(times):
            raise ConfigurationError("trace must be time-sorted")
        if any(v < 0 for _t, v in trace):
            raise ConfigurationError("trace loads must be >= 0")
        self.trace = list(trace)
        self.repeat = repeat
        super().__init__(env, host, rng=np.random.default_rng(0),
                         interval_s=1.0)

    def _run(self):
        while True:
            prev_t = 0.0
            for t, load in self.trace:
                if t > prev_t:
                    yield self.env.timeout(t - prev_t)
                    prev_t = t
                self.host.true_load = load
            if not self.repeat:
                return
            # hold the final value for one inter-sample gap, then loop
            gap = self.trace[-1][0] - self.trace[0][0]
            yield self.env.timeout(max(gap / max(len(self.trace) - 1, 1),
                                       1e-6))


def diurnal_trace(peak_load: float = 1.5, base_load: float = 0.1,
                  day_s: float = 3600.0, samples: int = 48,
                  phase: float = 0.0,
                  rng: np.random.Generator | None = None,
                  noise: float = 0.05) -> list[tuple[float, float]]:
    """A synthetic daily usage pattern (one 'day' compressed to *day_s*).

    Sinusoidal busy-hours bulge plus optional noise — the load shape a
    campus workstation showed in 1997 traces.
    """
    if peak_load < base_load:
        raise ConfigurationError("peak_load must be >= base_load")
    rng = rng or np.random.default_rng(0)
    out = []
    for i in range(samples):
        t = day_s * i / samples
        cycle = 0.5 * (1.0 - np.cos(2 * np.pi * (i / samples) + phase))
        load = base_load + (peak_load - base_load) * cycle
        if noise:
            load += noise * float(rng.standard_normal())
        out.append((t, max(0.0, float(load))))
    return out


def attach_random_loads(env: Environment, hosts: list[Host],
                        rng: np.random.Generator,
                        mean_range: tuple[float, float] = (0.1, 1.0),
                        interval_s: float = 1.0) -> list[RandomWalkLoad]:
    """Give every host a random-walk load with a host-specific mean."""
    models = []
    for host in hosts:
        mean = float(rng.uniform(*mean_range))
        models.append(RandomWalkLoad(env, host, rng, mean=mean,
                                     interval_s=interval_s))
    return models
