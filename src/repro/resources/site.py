"""Sites and the whole virtual environment.

A :class:`Site` owns hosts organised into groups (each with a leader
running the Group Manager) and a VDCE server machine that runs the Site
Manager and Application Scheduler (paper Figure 1).  A
:class:`VDCEnvironment` aggregates the sites, the simulated network, the
clock and the seeded RNG registry — it is the root object benchmarks and
examples construct first.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.net.network import Network
from repro.net.topology import LinkSpec, Topology
from repro.resources.host import Host, HostSpec
from repro.simcore.engine import Environment
from repro.simcore.trace import Tracer
from repro.util.errors import ConfigurationError, NotRegisteredError
from repro.util.rng import RngRegistry


class Site:
    """One geographic computation site: hosts, groups, a server."""

    def __init__(self, name: str) -> None:
        if "/" in name or not name:
            raise ConfigurationError(f"invalid site name {name!r}")
        self.name = name
        self.hosts: dict[str, Host] = {}
        self._groups: dict[str, list[str]] = {}
        #: liveness of the dedicated VDCE server machine (ServerCrash
        #: faults flip this; see repro.faults and repro.recovery)
        self.server_up: bool = True
        #: after a failover the server *role* moves onto a standby host;
        #: None means the dedicated server machine still holds it
        self.server_role_host: str | None = None

    # -- construction -------------------------------------------------------
    def add_host(self, spec: HostSpec) -> Host:
        """Register a machine at this site."""
        if spec.name in self.hosts:
            raise ConfigurationError(
                f"host {spec.name!r} already exists at site {self.name!r}")
        host = Host(spec=spec, site=self.name)
        self.hosts[spec.name] = host
        self._groups.setdefault(spec.group, []).append(spec.name)
        return host

    def remove_host(self, name: str) -> Host:
        """Remove a host (paper: 'whenever a resource is added or removed')."""
        host = self.host(name)
        del self.hosts[name]
        members = self._groups[host.spec.group]
        members.remove(name)
        if not members:
            del self._groups[host.spec.group]
        return host

    # -- queries --------------------------------------------------------------
    def host(self, name: str) -> Host:
        """Fetch a host by bare name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise NotRegisteredError(
                f"no host {name!r} at site {self.name!r}") from None

    @property
    def groups(self) -> dict[str, list[str]]:
        return {g: list(members) for g, members in self._groups.items()}

    def group_of(self, host_name: str) -> str:
        """The group a host belongs to."""
        return self.host(host_name).spec.group

    def group_leader(self, group: str) -> str:
        """The group leader machine: deterministically the first member."""
        try:
            members = self._groups[group]
        except KeyError:
            raise NotRegisteredError(
                f"no group {group!r} at site {self.name!r}") from None
        return sorted(members)[0]

    @property
    def server_address(self) -> str:
        """Address of the VDCE server machine (Site Manager endpoint)."""
        return f"{self.name}/server"

    def scheduler_address(self) -> str:
        return f"{self.name}/server/scheduler"

    def server_is_up(self) -> bool:
        """Liveness of whatever machine currently holds the server role."""
        if self.server_role_host is not None:
            host = self.hosts.get(self.server_role_host)
            return host.up if host is not None else True
        return self.server_up

    def up_hosts(self) -> list[Host]:
        """Hosts currently up (ground truth, not the repository view)."""
        return [h for h in self.hosts.values() if h.up]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Site({self.name!r}, hosts={len(self.hosts)}, "
                f"groups={len(self._groups)})")


class VDCEnvironment:
    """The whole virtual distributed computing environment.

    Owns the simulation clock, the topology/network, the RNG registry and
    every site.  Construction order: create the environment, add sites,
    connect them, add hosts; daemons (monitors, managers) are attached by
    :mod:`repro.runtime` and the facade in :mod:`repro.core`.
    """

    def __init__(self, seed: int = 0, lan: LinkSpec | None = None,
                 trace: bool = True) -> None:
        self.env = Environment()
        self.tracer = Tracer(enabled=trace)
        self.topology = Topology() if lan is None else Topology(lan=lan)
        # sim-time clock drives lazily-applied time-varying link schedules
        self.topology.clock = lambda: self.env.now
        self.network = Network(self.env, self.topology, tracer=self.tracer)
        self.rng = RngRegistry(seed)
        self.sites: dict[str, Site] = {}
        self.network.is_up = self._host_is_up

    # -- construction -------------------------------------------------------
    def add_site(self, name: str, lan: LinkSpec | None = None) -> Site:
        """Create a site and register it in the topology."""
        if name in self.sites:
            raise ConfigurationError(f"site {name!r} already exists")
        self.topology.add_site(name, lan=lan)
        site = Site(name)
        self.sites[name] = site
        return site

    def connect_sites(self, a: str, b: str, link: LinkSpec) -> None:
        """Add a WAN link between two sites."""
        self.topology.connect(a, b, link)

    def add_host(self, site_name: str, spec: HostSpec) -> Host:
        """Register a machine at one of the environment's sites."""
        return self.site(site_name).add_host(spec)

    # -- queries --------------------------------------------------------------
    def site(self, name: str) -> Site:
        """Fetch a site by name."""
        try:
            return self.sites[name]
        except KeyError:
            raise NotRegisteredError(f"no site {name!r}") from None

    def host(self, address_or_site: str, name: str | None = None) -> Host:
        """Fetch a host by ``site/name`` address or by (site, name) pair."""
        if name is None:
            site_name, _, host_name = address_or_site.partition("/")
            if not host_name:
                raise NotRegisteredError(
                    f"{address_or_site!r} is not a host address")
        else:
            site_name, host_name = address_or_site, name
        return self.site(site_name).host(host_name)

    def all_hosts(self) -> list[Host]:
        """Every host across every site."""
        return [h for s in self.sites.values() for h in s.hosts.values()]

    def _host_is_up(self, host_addr: str) -> bool:
        """Network up/down predicate.

        ``site/server`` endpoints follow the site's server-liveness model
        (the dedicated server flag, or — after a failover — the standby
        host now holding the role); unknown addresses default to up.
        """
        site_name, _, host_name = host_addr.partition("/")
        if not host_name:
            return True
        site = self.sites.get(site_name)
        if site is None:
            return True
        if host_name == "server":
            return site.server_is_up()
        host = site.hosts.get(host_name)
        return host.up if host is not None else True

    # -- convenience ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def run(self, until=None):
        return self.env.run(until=until)


def build_environment(
    site_hosts: dict[str, Iterable[HostSpec]],
    wan_links: Iterable[tuple[str, str, LinkSpec]],
    seed: int = 0,
    trace: bool = True,
) -> VDCEnvironment:
    """Declarative constructor used by tests and workload generators."""
    vdce = VDCEnvironment(seed=seed, trace=trace)
    for site_name, specs in site_hosts.items():
        vdce.add_site(site_name)
        for spec in specs:
            vdce.add_host(site_name, spec)
    for a, b, link in wan_links:
        vdce.connect_sites(a, b, link)
    return vdce
