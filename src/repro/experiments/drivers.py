"""Programmatic experiment drivers.

Each driver reproduces one of the paper-figure experiments (see
EXPERIMENTS.md) as a library call returning an
:class:`ExperimentResult`, so downstream users can sweep parameters
without going through pytest.  The ``benchmarks/`` suite asserts the
shapes; these drivers produce the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.measures import format_table, realized_makespan
from repro.prediction.predict import PerformancePredictor
from repro.scheduling.baselines import (
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.scheduling.heft import HeftScheduler
from repro.scheduling.host_selection import HostSelector
from repro.scheduling.site_scheduler import SiteScheduler
from repro.workloads.applications import (
    c3i_scenario_graph,
    fork_join_graph,
    fourier_pipeline_graph,
    linear_solver_graph,
)
from repro.workloads.environments import nynet_testbed


@dataclass
class ExperimentResult:
    """Rows + metadata from one driver invocation."""

    name: str
    rows: list[dict[str, Any]]
    metadata: dict[str, Any] = field(default_factory=dict)

    def render(self, order: list[str] | None = None) -> str:
        """Aligned text table of the rows."""
        return format_table(self.name, self.rows, order=order)

    def column(self, key: str) -> list[Any]:
        """One column of the result rows."""
        return [row[key] for row in self.rows]


DEFAULT_FAMILIES = {
    "linear-solver": lambda reg: linear_solver_graph(reg, n=200),
    "fourier-pipeline": lambda reg: fourier_pipeline_graph(reg, n=8192,
                                                           stages=4),
    "fork-join": lambda reg: fork_join_graph(reg, width=4, size=4096),
    "c3i": lambda reg: c3i_scenario_graph(reg, targets=200, steps=30),
}


def _loaded_testbed(seed: int, hosts_per_site: int = 4):
    vdce = nynet_testbed(seed=seed, hosts_per_site=hosts_per_site,
                         with_loads=True, trace=False)
    vdce.start()
    vdce.warm_up(40.0)
    return vdce


def _vdce_schedule(vdce, graph, k=1, queue_aware=False,
                   predictor_kwargs=None):
    selectors = {
        site: HostSelector(repo, predictor=PerformancePredictor(
            repo.task_performance, **(predictor_kwargs or {})))
        for site, repo in vdce.repositories.items()
    }
    sched = SiteScheduler("syracuse", vdce.topology, k_remote_sites=k,
                          queue_aware=queue_aware)
    table, _ = sched.schedule_with_selectors(graph, selectors)
    return table


def scheduler_comparison(seeds=(1, 2, 3), families=None,
                         hosts_per_site: int = 4,
                         include_heft: bool = True) -> ExperimentResult:
    """F4/A5: realized makespan per scheduler, per DAG family."""
    families = families or DEFAULT_FAMILIES
    rows = []
    for family, make in families.items():
        samples: dict[str, list[float]] = {}
        for seed in seeds:
            vdce = _loaded_testbed(seed, hosts_per_site)
            graph = make(vdce.registry)
            tables = {
                "vdce": _vdce_schedule(vdce, graph),
                "vdce-queue-aware": _vdce_schedule(vdce, graph,
                                                   queue_aware=True),
                "min-load": MinLoadScheduler(
                    vdce.repositories).schedule(graph),
                "round-robin": RoundRobinScheduler(
                    vdce.repositories).schedule(graph),
                "random": RandomScheduler(
                    vdce.repositories,
                    np.random.default_rng(seed)).schedule(graph),
            }
            if include_heft:
                tables["heft"] = HeftScheduler(
                    vdce.repositories, vdce.topology).schedule(graph)
            for name, table in tables.items():
                samples.setdefault(name, []).append(
                    realized_makespan(vdce, graph, table))
        row: dict[str, Any] = {"family": family}
        row.update({name: float(np.mean(vals))
                    for name, vals in samples.items()})
        rows.append(row)
    return ExperimentResult(
        name="scheduler comparison (realized makespan, s)",
        rows=rows, metadata={"seeds": list(seeds),
                             "hosts_per_site": hosts_per_site})


def prediction_ablation(seeds=(1, 2, 3), families=None) -> ExperimentResult:
    """A1: makespan degradation per disabled Predict() term."""
    families = families or {
        k: v for k, v in DEFAULT_FAMILIES.items() if k != "fork-join"}
    variants = {
        "full": {},
        "no-weight": {"use_weight": False},
        "no-load": {"use_load": False},
        "no-memory": {"use_memory": False},
        "base-time-only": {"use_weight": False, "use_load": False,
                           "use_memory": False},
    }
    ratios: dict[str, list[float]] = {v: [] for v in variants}
    for family, make in families.items():
        for seed in seeds:
            vdce = _loaded_testbed(seed)
            graph = make(vdce.registry)
            full = realized_makespan(
                vdce, graph, _vdce_schedule(vdce, graph,
                                            predictor_kwargs={}))
            for variant, kwargs in variants.items():
                table = _vdce_schedule(vdce, graph,
                                       predictor_kwargs=kwargs)
                ratios[variant].append(
                    realized_makespan(vdce, graph, table) / full)
    rows = [{"variant": v,
             "gmean_slowdown": float(np.exp(np.mean(np.log(r)))),
             "worst_slowdown": float(np.max(r))}
            for v, r in ratios.items()]
    return ExperimentResult(
        name="Predict(task, R) term ablation (slowdown vs full)",
        rows=rows, metadata={"seeds": list(seeds)})


def monitoring_comparison(policies=("always", "threshold", "ci"),
                          duration_s: float = 120.0,
                          seed: int = 3) -> ExperimentResult:
    """F6: update traffic vs repository staleness per filter policy."""
    rows = []
    for policy in policies:
        vdce = nynet_testbed(seed=seed, hosts_per_site=4, with_loads=True,
                             trace=False, filter_policy=policy)
        vdce.start()
        errors: list[float] = []

        def sampler(env, vdce=vdce, errors=errors):
            while True:
                yield env.timeout(1.0)
                for host in vdce.world.all_hosts():
                    rec = vdce.repositories[host.site] \
                        .resource_performance.get(host.address)
                    errors.append(abs(rec.cpu_load - host.cpu_load))

        vdce.env.process(sampler(vdce.env))
        vdce.run(until=duration_s)
        reports = sum(gm.stats.reports_received
                      for gm in vdce.group_managers.values())
        forwarded = sum(gm.stats.updates_forwarded
                        for gm in vdce.group_managers.values())
        rows.append({
            "policy": policy,
            "reports": reports,
            "forwarded": forwarded,
            "traffic_reduction": reports / max(forwarded, 1),
            "mean_staleness": float(np.mean(errors)),
        })
    return ExperimentResult(
        name="monitoring filter comparison",
        rows=rows, metadata={"duration_s": duration_s, "seed": seed})


def failure_detection_sweep(periods=(2.0, 5.0, 10.0),
                            seeds=(1, 2, 3)) -> ExperimentResult:
    """F6: failure-detection latency vs echo period."""
    rows = []
    for period in periods:
        latencies = []
        for seed in seeds:
            vdce = nynet_testbed(seed=seed, hosts_per_site=3,
                                 with_loads=False, trace=True,
                                 echo_period_s=period)
            vdce.start()
            victim = vdce.world.host("syracuse/h1")
            crash_at = 7.0 + seed
            vdce.failures.crash_at(victim, when=crash_at)
            vdce.run(until=crash_at + period * 4 + 5)
            downs = list(vdce.tracer.query(category="gm:host-down"))
            if downs:
                latencies.append(downs[0].time - crash_at)
        rows.append({"echo_period_s": period,
                     "detections": len(latencies),
                     "mean_latency_s": float(np.mean(latencies)),
                     "max_latency_s": float(np.max(latencies))})
    return ExperimentResult(name="failure-detection latency sweep",
                            rows=rows, metadata={"seeds": list(seeds)})
