"""Programmatic experiment drivers (the benchmarks' library API)."""

from repro.experiments.capacity import CapacityPlan, capacity_plan
from repro.experiments.drivers import (
    DEFAULT_FAMILIES,
    ExperimentResult,
    failure_detection_sweep,
    monitoring_comparison,
    prediction_ablation,
    scheduler_comparison,
)
from repro.experiments.measures import format_table, realized_makespan

__all__ = [
    "CapacityPlan",
    "DEFAULT_FAMILIES",
    "capacity_plan",
    "ExperimentResult",
    "failure_detection_sweep",
    "format_table",
    "monitoring_comparison",
    "prediction_ablation",
    "realized_makespan",
    "scheduler_comparison",
]
