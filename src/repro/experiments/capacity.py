"""Capacity planning: how much hardware does an application need?

A practical tool the paper's QoS framework implies but never ships: given
an application and a deadline, find the smallest site (host count) whose
*predicted* schedule length meets the deadline — using exactly the
admission-time machinery (`Predict` + the site walk + the schedule-length
evaluator), so the plan is consistent with what the scheduler will later
decide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afg.graph import ApplicationFlowGraph
from repro.net.topology import Topology
from repro.prediction.calibration import calibrate_weights
from repro.repository.site_repository import SiteRepository
from repro.resources.groundtruth import ExecutionModel
from repro.resources.host import Host, HostSpec
from repro.scheduling.host_selection import HostSelector
from repro.scheduling.makespan import predicted_schedule_length
from repro.scheduling.site_scheduler import SiteScheduler
from repro.util.errors import ConfigurationError, NoFeasibleHostError


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of one planning sweep."""

    deadline_s: float
    hosts_needed: int | None        # None: even max_hosts missed it
    predicted_s: float | None       # schedule length at hosts_needed
    sweep: tuple[tuple[int, float], ...]  # (hosts, predicted) pairs

    @property
    def feasible(self) -> bool:
        return self.hosts_needed is not None


def _predicted_at(graph: ApplicationFlowGraph, n_hosts: int,
                  template: dict, seed: int,
                  queue_aware: bool) -> float:
    topology = Topology()
    topology.add_site("plan")
    repo = SiteRepository("plan")
    model = ExecutionModel(seed=seed)
    hosts = []
    for i in range(n_hosts):
        spec = HostSpec(name=f"h{i}", **template)
        hosts.append(Host(spec=spec, site="plan"))
        repo.resource_performance.register_host("plan", spec)
    calibrate_weights(repo.task_performance, graph_definitions(graph),
                      hosts, model)
    for node in graph.nodes.values():
        for host in hosts:
            repo.task_constraints.register_executable(
                node.task_name, host.address, f"/bin/{node.task_name}")
    scheduler = SiteScheduler("plan", topology, k_remote_sites=0,
                              queue_aware=queue_aware)
    table, _ = scheduler.schedule_with_selectors(
        graph, {"plan": HostSelector(repo)})
    return predicted_schedule_length(graph, table, topology)


def graph_definitions(graph: ApplicationFlowGraph):
    """Unique task definitions appearing in *graph*."""
    seen = {}
    for node in graph.nodes.values():
        seen[node.task_name] = node.definition
    return list(seen.values())


def capacity_plan(graph: ApplicationFlowGraph, deadline_s: float,
                  max_hosts: int = 16,
                  template: dict | None = None,
                  seed: int = 0,
                  queue_aware: bool = True) -> CapacityPlan:
    """Smallest homogeneous site meeting *deadline_s* for *graph*.

    Sweeps host counts 1..max_hosts (stopping at the first success);
    defaults to the queue-aware walk because a capacity question is
    precisely about spreading the application's own parallelism.
    """
    if deadline_s <= 0:
        raise ConfigurationError("deadline must be positive")
    if max_hosts < 1:
        raise ConfigurationError("max_hosts must be >= 1")
    template = template or dict(arch="sparc", os="solaris",
                                cpu_factor=1.0, memory_mb=256)
    sweep: list[tuple[int, float]] = []
    needed: int | None = None
    predicted_at_needed: float | None = None
    for n in range(1, max_hosts + 1):
        try:
            predicted = _predicted_at(graph, n, template, seed, queue_aware)
        except NoFeasibleHostError:
            continue
        sweep.append((n, predicted))
        if predicted <= deadline_s:
            needed = n
            predicted_at_needed = predicted
            break
    return CapacityPlan(deadline_s=deadline_s, hosts_needed=needed,
                        predicted_s=predicted_at_needed,
                        sweep=tuple(sweep))
