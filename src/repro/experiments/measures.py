"""Measurement helpers shared by the experiment drivers and benchmarks."""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph
from repro.core.vdce import VDCE
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.makespan import evaluate_schedule


def realized_makespan(vdce: VDCE, graph: ApplicationFlowGraph,
                      table: ResourceAllocationTable) -> float:
    """Ground-truth makespan of a schedule on the current environment.

    Durations come from the execution model at the hosts' *current true*
    loads — the quantity the scheduler is trying to minimise but can only
    estimate through the repository.  Cheap (no event simulation), exact
    for the static-load snapshot at call time.
    """

    def duration(node_id: str) -> float:
        entry = table.get(node_id)
        node = graph.node(node_id)
        host = vdce.world.host(entry.host)
        return vdce.model.duration(node.definition,
                                   node.properties.input_size, host,
                                   processors=entry.processors)

    return evaluate_schedule(graph, table, vdce.topology,
                             duration_fn=duration).makespan


def format_table(title: str, rows: list[dict],
                 order: list[str] | None = None) -> str:
    """Render result rows as an aligned text table."""
    lines = [f"== {title} =="]
    if not rows:
        lines.append("  (no rows)")
        return "\n".join(lines)
    cols = order or list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows))
              for c in cols}
    header = "  ".join(f"{c:>{widths[c]}}" for c in cols)
    lines.append(f"  {header}")
    lines.append(f"  {'-' * len(header)}")
    for r in rows:
        lines.append("  " + "  ".join(f"{_fmt(r.get(c)):>{widths[c]}}"
                                      for c in cols))
    return "\n".join(lines)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.3f}"
    return str(v)
