"""The Host Selection Algorithm (paper Figure 5).

Runs at every site (local and each selected remote site):

1. Retrieve task-specific parameters of AFG tasks from the
   task-performance database.
2. Retrieve resource-specific parameters of the site's resources from
   the resource-performance database.
3. For each task, evaluate ``Predict(task, R)`` for every resource and
   pick the minimiser.

Beyond the figure, the selection honours the constraints the paper
describes elsewhere: the task-constraints database (executables may live
only on some hosts), the editor's machine-type preference, and —
per the parallel-task extension of section 2.2.1 — multi-host selection
within the site for parallel tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afg.graph import ApplicationFlowGraph, TaskNode
from repro.prediction.predict import PerformancePredictor
from repro.repository.resource_perf import ResourceRecord
from repro.repository.site_repository import SiteRepository
from repro.util.errors import NoFeasibleHostError


@dataclass(frozen=True)
class HostChoice:
    """One site's answer for one task: machine(s) + predicted time."""

    node_id: str
    site: str
    hosts: tuple[str, ...]
    predicted_time_s: float
    processors: int = 1


@dataclass(frozen=True)
class HostSelectionResult:
    """The full per-site mapping sent back to the local site.

    ``ranked`` optionally carries each task's next-best alternatives
    (used by the queue-aware scheduling extension; the paper's algorithm
    only ever looks at ``choices``).
    """

    site: str
    choices: dict[str, HostChoice]       # node id -> choice
    infeasible: tuple[str, ...] = ()     # node ids this site cannot run
    ranked: dict[str, tuple[HostChoice, ...]] | None = None

    def choice_for(self, node_id: str) -> HostChoice | None:
        """This site's best choice for one task (None if infeasible)."""
        return self.choices.get(node_id)

    def ranked_for(self, node_id: str) -> tuple[HostChoice, ...]:
        if self.ranked and node_id in self.ranked:
            return self.ranked[node_id]
        choice = self.choices.get(node_id)
        return (choice,) if choice is not None else ()


class HostSelector:
    """Figure 5, evaluated against one site's repository."""

    def __init__(self, repository: SiteRepository,
                 predictor: PerformancePredictor | None = None,
                 enforce_constraints: bool = True) -> None:
        self.repository = repository
        self.predictor = predictor or PerformancePredictor(
            repository.task_performance)
        self.enforce_constraints = enforce_constraints

    # -- candidate filtering ---------------------------------------------
    def feasible_records(self, node: TaskNode) -> list[ResourceRecord]:
        """Site resources that satisfy the task's hard constraints."""
        records = self.repository.resource_performance.hosts_at(
            self.repository.site)
        out = []
        constraints = self.repository.task_constraints
        machine_type = node.properties.machine_type
        for rec in records:
            if machine_type is not None and rec.arch != machine_type:
                continue
            if self.enforce_constraints and not constraints.is_runnable_on(
                    node.task_name, rec.address):
                continue
            out.append(rec)
        return out

    # -- per-task selection -------------------------------------------------
    def select_ranked(self, node: TaskNode,
                      max_alternatives: int = 3) -> tuple[HostChoice, ...]:
        """The best hosts for one task, ascending by predicted time.

        The paper's algorithm only uses the first entry; the queue-aware
        extension consults the alternatives.  Parallel tasks have a
        single (multi-host) choice.
        """
        records = self.feasible_records(node)
        if not records:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: no feasible host for "
                f"task {node.node_id!r} ({node.task_name})")
        props = node.properties
        processors: int = (props.processors
                           if props.computation_mode == "parallel" else 1)
        if processors > 1:
            return (self._select_parallel(node, records, processors),)
        preds = sorted(
            (self.predictor.predict(node.definition, props.input_size, rec)
             for rec in records if rec.status == "up"),
            key=lambda p: (p.estimate_s, p.host))
        if not preds:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: every feasible host for "
                f"{node.node_id!r} is down")
        return tuple(
            HostChoice(node_id=node.node_id, site=self.repository.site,
                       hosts=(p.host,), predicted_time_s=p.estimate_s)
            for p in preds[:max_alternatives])

    def select_for_task(self, node: TaskNode) -> HostChoice:
        """Minimum-``Predict`` host(s) at this site for one task."""
        records = self.feasible_records(node)
        if not records:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: no feasible host for "
                f"task {node.node_id!r} ({node.task_name})")
        props = node.properties
        processors = (props.processors
                      if props.computation_mode == "parallel" else 1)
        if processors == 1:
            best = self.predictor.best_host(node.definition,
                                            props.input_size, records)
            return HostChoice(node_id=node.node_id,
                              site=self.repository.site,
                              hosts=(best.host,),
                              predicted_time_s=best.estimate_s)
        return self._select_parallel(node, records, processors)

    def _select_parallel(self, node: TaskNode,
                         records: list[ResourceRecord],
                         processors: int) -> HostChoice:
        # Parallel extension: pick the p best hosts within the site; the
        # parallel execution time is bounded by the slowest participant.
        records = [rec for rec in records if rec.status == "up"]
        if len(records) < processors:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: task {node.node_id!r} "
                f"needs {processors} hosts, only {len(records)} feasible")
        preds = sorted(
            (self.predictor.predict(node.definition,
                                    node.properties.input_size, rec,
                                    processors=processors)
             for rec in records),
            key=lambda p: (p.estimate_s, p.host))
        chosen = preds[:processors]
        return HostChoice(node_id=node.node_id, site=self.repository.site,
                          hosts=tuple(p.host for p in chosen),
                          predicted_time_s=max(p.estimate_s for p in chosen),
                          processors=processors)

    # -- whole-graph selection (the figure's task_queue loop) -------------------
    def select(self, graph: ApplicationFlowGraph,
               max_alternatives: int = 3) -> HostSelectionResult:
        choices: dict[str, HostChoice] = {}
        ranked: dict[str, tuple[HostChoice, ...]] = {}
        infeasible: list[str] = []
        for node_id in graph.topological_order():
            node = graph.node(node_id)
            try:
                options = self.select_ranked(node, max_alternatives)
            except NoFeasibleHostError:
                infeasible.append(node_id)
                continue
            choices[node_id] = options[0]
            ranked[node_id] = options
        return HostSelectionResult(site=self.repository.site,
                                   choices=choices,
                                   infeasible=tuple(infeasible),
                                   ranked=ranked)
