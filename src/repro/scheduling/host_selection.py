"""The Host Selection Algorithm (paper Figure 5).

Runs at every site (local and each selected remote site):

1. Retrieve task-specific parameters of AFG tasks from the
   task-performance database.
2. Retrieve resource-specific parameters of the site's resources from
   the resource-performance database.
3. For each task, evaluate ``Predict(task, R)`` for every resource and
   pick the minimiser.

Beyond the figure, the selection honours the constraints the paper
describes elsewhere: the task-constraints database (executables may live
only on some hosts), the editor's machine-type preference, and —
per the parallel-task extension of section 2.2.1 — multi-host selection
within the site for parallel tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import nsmallest

from repro.afg.graph import ApplicationFlowGraph, TaskNode
from repro.analysis import hooks
from repro.prediction.predict import PerformancePredictor
from repro.repository.delta import DeltaEvent, DeltaTracker
from repro.repository.resource_perf import ResourceRecord
from repro.repository.site_repository import SiteRepository
from repro.util.errors import NoFeasibleHostError

#: Soft cap on distinct task-class score views held per selector; the
#: view table is cleared wholesale past this (same wholesale-reset
#: policy as the predictor's memo cache).
VIEW_MAX_ENTRIES = 512


def _score_key(entry: tuple[str, float]) -> tuple[float, str]:
    """(estimate, address) — the full path's deterministic tie-break."""
    return (entry[1], entry[0])


class _ClassView:
    """Persistent candidate scores for one task equivalence class.

    One view per (task name, input size, processors, machine type):
    ``scores`` maps each currently-feasible host address to its Predict
    estimate, and ``cursor`` marks how far into the repository's delta
    journal the view has consumed.  Between scheduling rounds only the
    dirtied entries are re-scored; ``ranked`` caches the materialised
    HostChoice tuples per (node id, k) until the journal moves again.
    """

    __slots__ = ("scores", "cursor", "ranked", "top")

    def __init__(self) -> None:
        self.scores: dict[str, float] = {}
        self.cursor = 0
        self.ranked: dict[tuple[str, int], tuple[HostChoice, ...]] = {}
        #: class-level top lists: n -> ((addr, est), ...) ascending by
        #: (est, addr).  A delta that cannot displace any cached top
        #: (dirty host outside it, new estimate above its k-th entry)
        #: leaves ``ranked`` valid — the common one-monitoring-update
        #: round costs O(changed hosts), not O(nodes x log k).
        self.top: dict[int, tuple[tuple[str, float], ...]] = {}


@dataclass(frozen=True)
class HostChoice:
    """One site's answer for one task: machine(s) + predicted time."""

    node_id: str
    site: str
    hosts: tuple[str, ...]
    predicted_time_s: float
    processors: int = 1


@dataclass(frozen=True)
class HostSelectionResult:
    """The full per-site mapping sent back to the local site.

    ``ranked`` optionally carries each task's next-best alternatives
    (used by the queue-aware scheduling extension; the paper's algorithm
    only ever looks at ``choices``).
    """

    site: str
    choices: dict[str, HostChoice]       # node id -> choice
    infeasible: tuple[str, ...] = ()     # node ids this site cannot run
    ranked: dict[str, tuple[HostChoice, ...]] | None = None

    def choice_for(self, node_id: str) -> HostChoice | None:
        """This site's best choice for one task (None if infeasible)."""
        return self.choices.get(node_id)

    def ranked_for(self, node_id: str) -> tuple[HostChoice, ...]:
        if self.ranked and node_id in self.ranked:
            return self.ranked[node_id]
        choice = self.choices.get(node_id)
        return (choice,) if choice is not None else ()


class HostSelector:
    """Figure 5, evaluated against one site's repository.

    With ``incremental=True`` (the default) the selector keeps one
    :class:`_ClassView` of candidate scores per task equivalence class
    and consumes the repository's :class:`DeltaTracker` journal between
    rounds — only hosts dirtied by a monitoring update, membership flip,
    weight refinement, or constraint edit are re-scored.  The
    ``incremental=False`` path re-walks every candidate from scratch and
    is retained verbatim as the differential-testing oracle.
    """

    def __init__(self, repository: SiteRepository,
                 predictor: PerformancePredictor | None = None,
                 enforce_constraints: bool = True,
                 incremental: bool = True) -> None:
        self.repository = repository
        self.predictor = predictor or PerformancePredictor(
            repository.task_performance)
        self.enforce_constraints = enforce_constraints
        self.incremental = incremental
        self._views: dict[tuple[str, float, int, str | None], _ClassView] = {}
        self._tracker: DeltaTracker = repository.delta

    def _hb_note(self, node: TaskNode) -> None:
        """Report this selection round to the attached sanitizer: reads
        of the site's repository DBs, plus (incrementally) a write to
        this selector's view cell — the cursor, score and ranked caches
        all mutate, so a selector shared across unordered same-tick
        contexts is a real hazard."""
        hb = hooks.HB
        site = self.repository.site
        hb.read(site, "resource_performance", node.task_name)
        hb.read(site, "task_constraints", node.task_name)
        if self.incremental:
            hb.write(site, hb.name_for(self, "selector-view"),
                     node.task_name)

    # -- candidate filtering ---------------------------------------------
    def feasible_records(self, node: TaskNode) -> list[ResourceRecord]:
        """Site resources that satisfy the task's hard constraints."""
        records = self.repository.resource_performance.hosts_at(
            self.repository.site)
        out = []
        constraints = self.repository.task_constraints
        machine_type = node.properties.machine_type
        for rec in records:
            if machine_type is not None and rec.arch != machine_type:
                continue
            if self.enforce_constraints and not constraints.is_runnable_on(
                    node.task_name, rec.address):
                continue
            out.append(rec)
        return out

    # -- incremental candidate views --------------------------------------
    def _feasible_estimate(self, node: TaskNode, processors: int,
                           addr: str) -> float | None:
        """Current Predict estimate for *addr*, or None when infeasible.

        Re-evaluates the exact filter chain of :meth:`feasible_records`
        (site membership, up status, machine type, constraints) against
        the repository's *current* state, so replaying a stale journal
        entry always converges on the live answer.
        """
        rp = self.repository.resource_performance
        if addr not in rp:
            return None
        rec = rp.get(addr)
        if rec.site != self.repository.site or rec.status != "up":
            return None
        machine_type = node.properties.machine_type
        if machine_type is not None and rec.arch != machine_type:
            return None
        if self.enforce_constraints and not (
                self.repository.task_constraints.is_runnable_on(
                    node.task_name, addr)):
            return None
        return self.predictor.estimate(
            node.definition, node.properties.input_size, rec, processors)

    def _rebuild_view(self, view: _ClassView, node: TaskNode,
                      processors: int) -> None:
        """Full re-walk: score every feasible record (journal lost)."""
        scores = view.scores
        scores.clear()
        view.top.clear()
        view.ranked.clear()
        definition = node.definition
        input_size = node.properties.input_size
        estimate = self.predictor.estimate
        for rec in self.feasible_records(node):
            scores[rec.address] = estimate(definition, input_size, rec,
                                           processors)

    def _apply_events(self, view: _ClassView, node: TaskNode,
                      processors: int, events: list[DeltaEvent]) -> None:
        """Re-score only the (host, task-class) pairs the journal dirtied."""
        scores = view.scores
        task_name = node.task_name
        changed: set[str] = set()
        for kind, a, b in events:
            if kind == "host":
                addr = a
            elif kind == "host-removed":
                if scores.pop(a, None) is not None:
                    changed.add(a)
                # the satellite invalidation: drop only this host's
                # memoized predictions, keep the rest warm
                self.predictor.invalidate(host=a)
                continue
            elif kind == "weight" or kind == "constraint":
                if a != task_name:
                    continue
                addr = b
            else:  # "task": registration never changes existing estimates
                continue
            est = self._feasible_estimate(node, processors, addr)
            if est is None:
                if scores.pop(addr, None) is not None:
                    changed.add(addr)
            elif scores.get(addr) != est:
                scores[addr] = est
                changed.add(addr)
        if changed and view.top:
            self._invalidate_tops(view, changed)

    @staticmethod
    def _invalidate_tops(view: _ClassView, changed: set[str]) -> None:
        """Drop cached rankings a score change could have displaced.

        A cached top-n (and the HostChoice tuples built from it) stays
        valid iff no changed host is inside it, none could now enter it
        (new estimate above its n-th entry, with the (est, addr)
        tie-break), and it was not short of candidates.
        """
        scores = view.scores
        n_scores = len(scores)
        for n, top in view.top.items():
            if len(top) < min(n, n_scores):
                break  # was short: an appearing host extends it
            displaced = False
            for addr in changed:
                est = scores.get(addr)
                if any(addr == a for a, _ in top):
                    displaced = True
                    break
                if est is not None and top and \
                        (est, addr) < (top[-1][1], top[-1][0]):
                    displaced = True
                    break
            if displaced:
                break
        else:
            return  # every cached top survives the delta
        view.top.clear()
        view.ranked.clear()

    def _view_for(self, node: TaskNode, processors: int) -> _ClassView:
        """The up-to-date score view for *node*'s task class."""
        tracker = self.repository.delta
        if tracker is not self._tracker:
            # the repository swapped journals (e.g. SiteRepository.load):
            # every cursor is meaningless, start over
            self._views.clear()
            self._tracker = tracker
        props = node.properties
        key = (node.task_name, props.input_size, processors,
               props.machine_type)
        view = self._views.get(key)
        if view is None:
            if len(self._views) >= VIEW_MAX_ENTRIES:
                self._views.clear()
            view = _ClassView()
            # capture the generation *before* walking: a mutation landing
            # mid-rebuild (re-entrant subscriber, monitor piggyback) bumps
            # the journal, and stamping the post-walk generation would
            # mark those events consumed without the walk having seen
            # their effect on every record
            gen = tracker.generation
            self._rebuild_view(view, node, processors)
            view.cursor = gen
            self._views[key] = view
            return view
        if view.cursor != tracker.generation:
            gen = tracker.generation
            events = tracker.events_since(view.cursor)
            if events is None:  # journal compacted past our cursor
                self._rebuild_view(view, node, processors)
            elif events:
                self._apply_events(view, node, processors, events)
            view.cursor = gen
        return view

    def _top_n(self, view: _ClassView, n: int
               ) -> tuple[tuple[str, float], ...]:
        """The view's n best (addr, est) pairs, cached per generation."""
        top = view.top.get(n)
        if top is None:
            top = tuple(nsmallest(n, view.scores.items(), key=_score_key))
            view.top[n] = top
        return top

    def _select_ranked_incremental(
            self, node: TaskNode, processors: int,
            max_alternatives: int) -> tuple[HostChoice, ...]:
        view = self._view_for(node, processors)
        cache_key = (node.node_id, max_alternatives)
        cached = view.ranked.get(cache_key)
        if cached is not None:
            return cached
        scores = view.scores
        site = self.repository.site
        if not scores:
            raise NoFeasibleHostError(
                f"site {site!r}: no feasible host for "
                f"task {node.node_id!r} ({node.task_name})")
        if processors > 1:
            if len(scores) < processors:
                raise NoFeasibleHostError(
                    f"site {site!r}: task {node.node_id!r} "
                    f"needs {processors} hosts, only {len(scores)} feasible")
            chosen = self._top_n(view, processors)
            result: tuple[HostChoice, ...] = (HostChoice(
                node_id=node.node_id, site=site,
                hosts=tuple(addr for addr, _ in chosen),
                predicted_time_s=max(est for _, est in chosen),
                processors=processors),)
        else:
            result = tuple(
                HostChoice(node_id=node.node_id, site=site, hosts=(addr,),
                           predicted_time_s=est)
                for addr, est in self._top_n(view, max_alternatives))
        view.ranked[cache_key] = result
        return result

    # -- per-task selection -------------------------------------------------
    def select_ranked(self, node: TaskNode,
                      max_alternatives: int = 3) -> tuple[HostChoice, ...]:
        """The best hosts for one task, ascending by predicted time.

        The paper's algorithm only uses the first entry; the queue-aware
        extension consults the alternatives.  Parallel tasks have a
        single (multi-host) choice.
        """
        if hooks.HB is not None:
            self._hb_note(node)
        if self.incremental:
            props = node.properties
            processors = (props.processors
                          if props.computation_mode == "parallel" else 1)
            return self._select_ranked_incremental(node, processors,
                                                   max_alternatives)
        records = self.feasible_records(node)
        if not records:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: no feasible host for "
                f"task {node.node_id!r} ({node.task_name})")
        props = node.properties
        processors: int = (props.processors
                           if props.computation_mode == "parallel" else 1)
        if processors > 1:
            return (self._select_parallel(node, records, processors),)
        preds = sorted(
            (self.predictor.predict(node.definition, props.input_size, rec)
             for rec in records if rec.status == "up"),
            key=lambda p: (p.estimate_s, p.host))
        if not preds:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: every feasible host for "
                f"{node.node_id!r} is down")
        return tuple(
            HostChoice(node_id=node.node_id, site=self.repository.site,
                       hosts=(p.host,), predicted_time_s=p.estimate_s)
            for p in preds[:max_alternatives])

    def select_for_task(self, node: TaskNode) -> HostChoice:
        """Minimum-``Predict`` host(s) at this site for one task."""
        if hooks.HB is not None:
            self._hb_note(node)
        if self.incremental:
            props = node.properties
            processors = (props.processors
                          if props.computation_mode == "parallel" else 1)
            return self._select_ranked_incremental(node, processors, 1)[0]
        records = self.feasible_records(node)
        if not records:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: no feasible host for "
                f"task {node.node_id!r} ({node.task_name})")
        props = node.properties
        processors = (props.processors
                      if props.computation_mode == "parallel" else 1)
        if processors == 1:
            best = self.predictor.best_host(node.definition,
                                            props.input_size, records)
            return HostChoice(node_id=node.node_id,
                              site=self.repository.site,
                              hosts=(best.host,),
                              predicted_time_s=best.estimate_s)
        return self._select_parallel(node, records, processors)

    def _select_parallel(self, node: TaskNode,
                         records: list[ResourceRecord],
                         processors: int) -> HostChoice:
        # Parallel extension: pick the p best hosts within the site; the
        # parallel execution time is bounded by the slowest participant.
        records = [rec for rec in records if rec.status == "up"]
        if len(records) < processors:
            raise NoFeasibleHostError(
                f"site {self.repository.site!r}: task {node.node_id!r} "
                f"needs {processors} hosts, only {len(records)} feasible")
        preds = sorted(
            (self.predictor.predict(node.definition,
                                    node.properties.input_size, rec,
                                    processors=processors)
             for rec in records),
            key=lambda p: (p.estimate_s, p.host))
        chosen = preds[:processors]
        return HostChoice(node_id=node.node_id, site=self.repository.site,
                          hosts=tuple(p.host for p in chosen),
                          predicted_time_s=max(p.estimate_s for p in chosen),
                          processors=processors)

    # -- whole-graph selection (the figure's task_queue loop) -------------------
    def select(self, graph: ApplicationFlowGraph,
               max_alternatives: int = 3,
               order: list[str] | None = None) -> HostSelectionResult:
        """Select per-task hosts for the whole graph.

        Pass a precomputed topological *order* to skip re-deriving it —
        rescheduling loops over an unchanged graph reuse one order.
        """
        choices: dict[str, HostChoice] = {}
        ranked: dict[str, tuple[HostChoice, ...]] = {}
        infeasible: list[str] = []
        for node_id in (order if order is not None
                        else graph.topological_order()):
            node = graph.node(node_id)
            try:
                options = self.select_ranked(node, max_alternatives)
            except NoFeasibleHostError:
                infeasible.append(node_id)
                continue
            choices[node_id] = options[0]
            ranked[node_id] = options
        return HostSelectionResult(site=self.repository.site,
                                   choices=choices,
                                   infeasible=tuple(infeasible),
                                   ranked=ranked)
