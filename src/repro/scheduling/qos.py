"""Quality-of-Service requirements.

Paper section 2.2: "We provide an application-based scheduling framework
that provides and guarantees Quality-of-Service (QoS) of a given
application."  The prototype's notion of QoS is an application deadline
plus a per-task load ceiling: admission checks the predicted schedule
length against the deadline; at runtime the Application Controller
enforces the load ceiling via rescheduling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.afg.graph import ApplicationFlowGraph
from repro.net.topology import Topology
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.makespan import predicted_schedule_length
from repro.util.errors import ConfigurationError, QoSViolationError


@dataclass(frozen=True)
class QoSRequirement:
    """An application's service-level requirements."""

    deadline_s: float | None = None
    max_host_load: float | None = None  # runtime rescheduling trigger

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError("deadline must be positive")
        if self.max_host_load is not None and self.max_host_load <= 0:
            raise ConfigurationError("max_host_load must be positive")


@dataclass(frozen=True)
class QoSAssessment:
    """Admission-time verdict for one schedule."""

    predicted_length_s: float
    deadline_s: float | None
    admitted: bool
    margin_s: float | None  # deadline - predicted (None without deadline)


def assess_schedule(graph: ApplicationFlowGraph,
                    table: ResourceAllocationTable,
                    topology: Topology,
                    qos: QoSRequirement) -> QoSAssessment:
    """Check the predicted schedule length against the QoS deadline."""
    predicted = predicted_schedule_length(graph, table, topology)
    if qos.deadline_s is None:
        return QoSAssessment(predicted_length_s=predicted, deadline_s=None,
                             admitted=True, margin_s=None)
    margin = qos.deadline_s - predicted
    return QoSAssessment(predicted_length_s=predicted,
                         deadline_s=qos.deadline_s,
                         admitted=margin >= 0.0, margin_s=margin)


def require_admission(graph: ApplicationFlowGraph,
                      table: ResourceAllocationTable,
                      topology: Topology,
                      qos: QoSRequirement) -> QoSAssessment:
    """As :func:`assess_schedule` but raising on rejection."""
    assessment = assess_schedule(graph, table, topology, qos)
    if not assessment.admitted:
        raise QoSViolationError(
            f"application {graph.name!r}: predicted schedule length "
            f"{assessment.predicted_length_s:.3f}s exceeds deadline "
            f"{qos.deadline_s:.3f}s")
    return assessment
