"""Dynamic rescheduling.

Paper section 2.3.1 (Application Controller): "If the current load on any
of these machines is more than a predefined threshold value, the
Application Controller terminates the task execution on the machine and
sends a task rescheduling request to the Group Manager."  Failures are
handled the same way: a task on a host that stops answering keep-alives
is rescheduled and the host excluded.

The :class:`Rescheduler` re-runs host selection for a single task against
the *current* repository view, excluding the hosts that triggered the
request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.afg.graph import TaskNode
from repro.prediction.predict import PerformancePredictor
from repro.repository.site_repository import SiteRepository
from repro.scheduling.allocation import AllocationEntry
from repro.util.errors import NoFeasibleHostError


@dataclass(frozen=True)
class ReschedulePolicy:
    """When the Application Controller pulls the trigger."""

    #: terminate + reschedule when observed load exceeds this
    load_threshold: float = 2.0
    #: minimum predicted improvement factor required to move (avoids
    #: thrashing between near-equal hosts)
    min_improvement: float = 1.15
    #: maximum times one task may be rescheduled
    max_attempts: int = 3

    def should_reschedule(self, observed_load: float) -> bool:
        return observed_load > self.load_threshold


class Rescheduler:
    """Pick a replacement host for one task, excluding bad hosts."""

    def __init__(self, repositories: dict[str, SiteRepository],
                 predictor_factory: Callable[
                     [SiteRepository], PerformancePredictor] | None = None,
                 policy: ReschedulePolicy | None = None) -> None:
        self.repositories = repositories
        self.policy = policy or ReschedulePolicy()
        self._predictor_factory = predictor_factory or (
            lambda repo: PerformancePredictor(repo.task_performance))

    def reschedule(self, node: TaskNode, current: AllocationEntry,
                   exclude_hosts: set[str] | None = None,
                   exclude_sites: set[str] | None = None,
                   ) -> AllocationEntry:
        """New allocation for *node*, avoiding *exclude_hosts*.

        Considers every site's current view; raises
        :class:`NoFeasibleHostError` when nowhere better exists.
        *exclude_sites* removes whole sites from consideration — the
        degraded-mode path passes the observer's quarantined set so a
        task lost to a partition is never re-queued back into it.  A
        parallel task is rescheduled onto a single replacement host
        (degrading to sequential execution) — re-gathering a full
        multi-host gang mid-flight is out of the prototype's scope, as
        it is in the paper's.
        """
        exclude = set(exclude_hosts or ()) | set(current.hosts)
        skip_sites = exclude_sites or set()
        best: AllocationEntry | None = None
        for site, repo in sorted(self.repositories.items()):
            if site in skip_sites:
                continue
            predictor = self._predictor_factory(repo)
            records = [
                rec for rec in repo.resource_performance.hosts_at(site)
                if rec.address not in exclude
                and repo.task_constraints.is_runnable_on(node.task_name,
                                                         rec.address)
                and (node.properties.machine_type is None
                     or rec.arch == node.properties.machine_type)
            ]
            if not records:
                continue
            try:
                pred = predictor.best_host(node.definition,
                                           node.properties.input_size,
                                           records)
            except NoFeasibleHostError:
                continue
            if best is None or pred.estimate_s < best.predicted_time_s:
                best = AllocationEntry(
                    node_id=node.node_id, task_name=node.task_name,
                    site=site, hosts=(pred.host,),
                    predicted_time_s=pred.estimate_s)
        if best is None:
            raise NoFeasibleHostError(
                f"no replacement host for task {node.node_id!r} "
                f"(excluded: {sorted(exclude)})")
        return best
