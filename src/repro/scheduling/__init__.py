"""The Application Scheduler: levels, host selection, site scheduling."""

from repro.scheduling.allocation import AllocationEntry, ResourceAllocationTable
from repro.scheduling.baselines import (
    BaselineScheduler,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.scheduling.heft import HeftScheduler
from repro.scheduling.host_selection import (
    HostChoice,
    HostSelectionResult,
    HostSelector,
)
from repro.scheduling.levels import ReadySet, compute_levels, priority_order
from repro.scheduling.makespan import (
    Timeline,
    evaluate_schedule,
    predicted_schedule_length,
)
from repro.scheduling.qos import (
    QoSAssessment,
    QoSRequirement,
    assess_schedule,
    require_admission,
)
from repro.scheduling.rescheduling import ReschedulePolicy, Rescheduler
from repro.scheduling.site_scheduler import ScheduleReport, SiteScheduler

__all__ = [
    "AllocationEntry",
    "BaselineScheduler",
    "HeftScheduler",
    "HostChoice",
    "HostSelectionResult",
    "HostSelector",
    "MinLoadScheduler",
    "QoSAssessment",
    "QoSRequirement",
    "RandomScheduler",
    "ReadySet",
    "ReschedulePolicy",
    "Rescheduler",
    "ResourceAllocationTable",
    "RoundRobinScheduler",
    "ScheduleReport",
    "SiteScheduler",
    "Timeline",
    "assess_schedule",
    "compute_levels",
    "evaluate_schedule",
    "predicted_schedule_length",
    "priority_order",
    "require_admission",
]
