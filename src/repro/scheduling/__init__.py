"""The Application Scheduler: levels, host selection, site scheduling."""

from repro.scheduling.allocation import AllocationEntry, ResourceAllocationTable
from repro.scheduling.baselines import (
    BaselineScheduler,
    MinLoadScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.scheduling.heft import HeftScheduler
from repro.scheduling.host_selection import (
    HostChoice,
    HostSelectionResult,
    HostSelector,
)
from repro.scheduling.levels import ReadySet, compute_levels, priority_order
from repro.scheduling.makespan import (
    Timeline,
    evaluate_schedule,
    predicted_schedule_length,
)
from repro.scheduling.optimal import (
    OptimalScheduler,
    SearchStats,
    brute_force_search,
)
from repro.scheduling.qos import (
    QoSAssessment,
    QoSRequirement,
    assess_schedule,
    require_admission,
)
from repro.scheduling.registry import (
    Scheduler,
    SchedulerContext,
    available_schedulers,
    create_scheduler,
    create_schedulers,
    register_scheduler,
)
from repro.scheduling.rescheduling import ReschedulePolicy, Rescheduler
from repro.scheduling.site_scheduler import (
    FederatedSiteScheduler,
    ScheduleReport,
    SiteScheduler,
)

__all__ = [
    "AllocationEntry",
    "BaselineScheduler",
    "FederatedSiteScheduler",
    "HeftScheduler",
    "HostChoice",
    "HostSelectionResult",
    "HostSelector",
    "MinLoadScheduler",
    "OptimalScheduler",
    "QoSAssessment",
    "QoSRequirement",
    "RandomScheduler",
    "ReadySet",
    "ReschedulePolicy",
    "Rescheduler",
    "ResourceAllocationTable",
    "RoundRobinScheduler",
    "ScheduleReport",
    "Scheduler",
    "SchedulerContext",
    "SearchStats",
    "SiteScheduler",
    "Timeline",
    "assess_schedule",
    "available_schedulers",
    "brute_force_search",
    "compute_levels",
    "create_scheduler",
    "create_schedulers",
    "evaluate_schedule",
    "predicted_schedule_length",
    "priority_order",
    "register_scheduler",
    "require_admission",
]
