"""The resource allocation table.

Paper Figure 4: "Set resource allocation table entry of the task_i with
the assigned resource" — the Site Manager then "multicasts it to the
Group Managers that will be involved in the execution", each of which
forwards "related parts of the resource allocation table" to the
Application Controllers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import SchedulingError


@dataclass(frozen=True)
class AllocationEntry:
    """One task's assignment."""

    node_id: str
    task_name: str
    site: str
    hosts: tuple[str, ...]            # >1 entries for parallel tasks
    predicted_time_s: float
    predicted_transfer_s: float = 0.0
    processors: int = 1

    def __post_init__(self) -> None:
        if not self.hosts:
            raise SchedulingError(
                f"allocation for {self.node_id!r} names no hosts")
        if self.processors != len(self.hosts):
            raise SchedulingError(
                f"allocation for {self.node_id!r}: processors="
                f"{self.processors} but {len(self.hosts)} hosts")

    @property
    def host(self) -> str:
        """Primary host (the only host for sequential tasks)."""
        return self.hosts[0]

    @property
    def predicted_total_s(self) -> float:
        return self.predicted_time_s + self.predicted_transfer_s


@dataclass
class ResourceAllocationTable:
    """node id -> :class:`AllocationEntry` for one application.

    Every assignment carries a monotone per-task *version*: 1 on first
    :meth:`assign`, bumped by each :meth:`reassign`.  Dynamic
    rescheduling (and failover replay) can therefore always tell which
    of two assignments for the same task is newer — the property tests
    assert versions never go backwards under host flapping.
    """

    application: str
    entries: dict[str, AllocationEntry] = field(default_factory=dict)
    versions: dict[str, int] = field(default_factory=dict)

    def assign(self, entry: AllocationEntry) -> None:
        """Record a task's assignment (once per task)."""
        if entry.node_id in self.entries:
            raise SchedulingError(
                f"task {entry.node_id!r} already allocated")
        self.entries[entry.node_id] = entry
        self.versions[entry.node_id] = 1

    def reassign(self, entry: AllocationEntry) -> AllocationEntry:
        """Replace an existing assignment (dynamic rescheduling)."""
        if entry.node_id not in self.entries:
            raise SchedulingError(
                f"cannot reassign unallocated task {entry.node_id!r}")
        old = self.entries[entry.node_id]
        self.entries[entry.node_id] = entry
        self.versions[entry.node_id] = self.versions.get(entry.node_id,
                                                         1) + 1
        return old

    def version_of(self, node_id: str) -> int:
        """Monotone assignment version for one task (0 = never assigned)."""
        return self.versions.get(node_id, 0)

    def get(self, node_id: str) -> AllocationEntry:
        """Fetch one task's assignment."""
        try:
            return self.entries[node_id]
        except KeyError:
            raise SchedulingError(
                f"no allocation for task {node_id!r}") from None

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    # -- the runtime's distribution views -----------------------------------
    def sites(self) -> set[str]:
        """Every site that received at least one task."""
        return {e.site for e in self.entries.values()}

    def hosts(self) -> set[str]:
        """Every host named by the allocation (participants included)."""
        return {h for e in self.entries.values() for h in e.hosts}

    def portion_for_host(self, host: str) -> list[AllocationEntry]:
        """The 'related part' a Group Manager sends to one machine."""
        return [e for e in self.entries.values() if host in e.hosts]

    def portion_for_site(self, site: str) -> list[AllocationEntry]:
        """Every entry assigned to one site."""
        return [e for e in self.entries.values() if e.site == site]

    def predicted_total_work_s(self) -> float:
        """Sum of predicted execution+transfer over all tasks."""
        return sum(e.predicted_total_s for e in self.entries.values())

    def remote_fraction(self, local_site: str) -> float:
        """Fraction of tasks placed off the submitting site."""
        if not self.entries:
            return 0.0
        remote = sum(1 for e in self.entries.values()
                     if e.site != local_site)
        return remote / len(self.entries)
