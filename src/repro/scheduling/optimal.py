"""Branch-and-bound optimal reference scheduler for small AFGs.

The heuristics (site scheduler, HEFT, the baselines) can only be judged
against a known optimum.  This module searches the full assignment space
— every feasible (site, host) per task — for the allocation minimising
the **predicted schedule length** as evaluated by
:func:`repro.scheduling.makespan.evaluate_schedule`, i.e. exactly the
objective every registered scheduler is scored on in the bake-off.

The search walks tasks in the same fixed list-schedule order the
evaluator replays (the :class:`~repro.scheduling.levels.ReadySet`
priority order, which depends only on the graph), so the incremental
timeline maintained during the search *is* the evaluator's timeline and
the returned makespan is exact, not a bound.  Partial schedules are
pruned on an admissible lower bound: the current partial makespan, and
for every unscheduled task its earliest data-ready time plus the
cheapest-duration critical path to an exit node (communication and host
contention can only add to that).  A node budget guards against
accidental use on large graphs — exhaustive search is exponential and
meant for ground truth on ≲10-task AFGs (ISSUE/ROADMAP item 2;
cf. the FlexDAR branch-and-bound comparator in SNIPPETS.md Snippet 3).

:func:`brute_force_search` enumerates the entire space without pruning;
the differential tests assert it agrees with the branch-and-bound on
tiny graphs.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable
from dataclasses import dataclass

from repro.afg.graph import ApplicationFlowGraph, TaskNode
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.prediction.predict import PerformancePredictor
from repro.repository.site_repository import SiteRepository
from repro.scheduling.allocation import (
    AllocationEntry,
    ResourceAllocationTable,
)
from repro.scheduling.levels import ReadySet, compute_levels
from repro.scheduling.registry import (
    SchedulerContext,
    register_scheduler,
)
from repro.util.errors import NoFeasibleHostError, SchedulingError

#: One assignment option for one task: (site, hosts, predicted seconds).
Candidate = tuple[str, tuple[str, ...], float]


@dataclass
class SearchStats:
    """Diagnostics of one branch-and-bound run."""

    tasks: int = 0
    candidates_total: int = 0
    nodes_explored: int = 0
    nodes_pruned: int = 0
    makespan_s: float = 0.0
    proven_optimal: bool = True


class OptimalScheduler:
    """Exhaustive (branch-and-bound) schedule-length minimiser.

    Same federation view as every other scheduler: predicted durations
    via ``Predict`` against the repositories — no ground-truth peeking.
    ``node_budget`` bounds the number of partial schedules expanded; the
    search raises :class:`SchedulingError` when exceeded rather than
    silently returning a non-optimal table.
    """

    name = "optimal"

    def __init__(self, repositories: dict[str, SiteRepository],
                 topology: Topology,
                 predictor_factory: Callable[
                     [SiteRepository], PerformancePredictor] | None = None,
                 node_budget: int = 2_000_000,
                 obs: Observability | None = None) -> None:
        if node_budget < 1:
            raise SchedulingError("node_budget must be >= 1")
        self.repositories = repositories
        self.topology = topology
        self._predictor_factory = predictor_factory or (
            lambda repo: PerformancePredictor(repo.task_performance))
        self.node_budget = node_budget
        self.obs = obs if obs is not None else OBS_OFF

    # -- candidate generation ---------------------------------------------
    def _site_candidates(self, node: TaskNode, site: str,
                         repo: SiteRepository) -> list[Candidate]:
        """Feasible candidates at one site (one per host; parallel tasks
        get the site's single best multi-host pick, like Figure 5)."""
        predictor = self._predictor_factory(repo)
        records = []
        for rec in repo.resource_performance.hosts_at(site):
            if rec.status != "up":
                continue
            if node.properties.machine_type is not None and \
                    rec.arch != node.properties.machine_type:
                continue
            if not repo.task_constraints.is_runnable_on(
                    node.task_name, rec.address):
                continue
            records.append(rec)
        props = node.properties
        processors = (props.processors
                      if props.computation_mode == "parallel" else 1)
        if processors > 1:
            if len(records) < processors:
                return []
            preds = sorted(
                (predictor.predict(node.definition, props.input_size, rec,
                                   processors=processors)
                 for rec in records),
                key=lambda p: (p.estimate_s, p.host))
            chosen = preds[:processors]
            return [(site, tuple(p.host for p in chosen),
                     max(p.estimate_s for p in chosen))]
        return [
            (site, (rec.address,),
             predictor.predict(node.definition, props.input_size,
                               rec).estimate_s)
            for rec in records
        ]

    def candidates_for(self, graph: ApplicationFlowGraph
                       ) -> dict[str, list[Candidate]]:
        """Every task's feasible assignment options, deterministic order.

        An achievable site preference is honoured as a hard filter, the
        same policy the site scheduler applies.
        """
        out: dict[str, list[Candidate]] = {}
        for nid in graph.topological_order():
            node = graph.node(nid)
            per_site: dict[str, list[Candidate]] = {}
            for site, repo in sorted(self.repositories.items()):
                cands = self._site_candidates(node, site, repo)
                if cands:
                    per_site[site] = cands
            preferred = node.properties.preferred_site
            if preferred is not None and preferred in per_site:
                per_site = {preferred: per_site[preferred]}
            options = [c for site in sorted(per_site)
                       for c in per_site[site]]
            if not options:
                raise NoFeasibleHostError(
                    f"optimal: no feasible host anywhere for {nid!r} "
                    f"({node.task_name})")
            # cheapest-duration first: good incumbents early
            options.sort(key=lambda c: (c[2], c[0], c[1]))
            out[nid] = options
        return out

    # -- the search -------------------------------------------------------
    def search(self, graph: ApplicationFlowGraph
               ) -> tuple[ResourceAllocationTable, SearchStats]:
        """Branch-and-bound over the full assignment space."""
        graph.validate()
        levels = compute_levels(graph)
        # The evaluator's fixed replay order (independent of assignment).
        order: list[str] = []
        ready = ReadySet(graph, levels)
        while ready:
            order.append(ready.pop())
        if len(order) != len(graph):
            raise SchedulingError("scheduling order missed nodes (cycle?)")
        candidates = self.candidates_for(graph)
        # Admissible tail bound: cheapest duration per task, propagated as
        # a min-duration critical path down to the exits.
        min_dur = {nid: min(c[2] for c in cands)
                   for nid, cands in candidates.items()}
        down_lb: dict[str, float] = {}
        for nid in reversed(graph.topological_order()):
            down_lb[nid] = min_dur[nid] + max(
                (down_lb[c] for c in graph.successors(nid)), default=0.0)
        parents = {nid: graph.predecessors(nid) for nid in order}
        out_bytes = {nid: graph.node(nid).output_bytes() for nid in order}

        stats = SearchStats(
            tasks=len(order),
            candidates_total=sum(len(c) for c in candidates.values()))
        best_makespan = float("inf")
        best_assignment: dict[str, Candidate] | None = None

        assignment: dict[str, Candidate] = {}
        finish: dict[str, float] = {}
        host_free: dict[str, float] = {}
        topology = self.topology

        def tail_bound(next_idx: int, makespan: float) -> float:
            bound = makespan
            for nid in order[next_idx:]:
                ready_lb = max((finish[p] for p in parents[nid]
                                if p in finish), default=0.0)
                lb = ready_lb + down_lb[nid]
                if lb > bound:
                    bound = lb
            return bound

        def descend(idx: int, makespan: float) -> None:
            nonlocal best_makespan, best_assignment
            if idx == len(order):
                if makespan < best_makespan:
                    best_makespan = makespan
                    best_assignment = dict(assignment)
                return
            nid = order[idx]
            for cand in candidates[nid]:
                stats.nodes_explored += 1
                if stats.nodes_explored > self.node_budget:
                    raise SchedulingError(
                        f"optimal: node budget {self.node_budget} "
                        f"exceeded on {graph.name!r} ({len(order)} tasks); "
                        f"reserve the optimal reference for small AFGs")
                site, hosts, duration = cand
                # replay exactly evaluate_schedule's arrival rule
                arrival = 0.0
                for p in parents[nid]:
                    p_site, p_hosts, _ = assignment[p]
                    if p_site != site:
                        t = topology.transfer_time(p_site, site,
                                                   out_bytes[p])
                    elif p_hosts[0] != hosts[0]:
                        t = topology.lan(site).transfer_time(out_bytes[p])
                    else:
                        t = 0.0
                    arrival = max(arrival, finish[p] + t)
                resource_free = max((host_free.get(h, 0.0) for h in hosts),
                                    default=0.0)
                start = max(arrival, resource_free)
                fin = start + duration
                new_makespan = max(makespan, fin)
                if tail_bound(idx + 1, new_makespan) >= best_makespan:
                    stats.nodes_pruned += 1
                    continue
                assignment[nid] = cand
                finish[nid] = fin
                saved = {h: host_free.get(h) for h in hosts}
                for h in hosts:
                    host_free[h] = fin
                descend(idx + 1, new_makespan)
                del assignment[nid]
                del finish[nid]
                for h, old in saved.items():
                    if old is None:
                        del host_free[h]
                    else:
                        host_free[h] = old

        descend(0, 0.0)
        if best_assignment is None:  # pragma: no cover - defensive
            raise SchedulingError("optimal: search found no assignment")
        stats.makespan_s = best_makespan
        table = _table_from_assignment(graph, best_assignment)
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "optimal_schedules_total",
                help="branch-and-bound reference schedules computed").inc()
            obs.metrics.counter(
                "optimal_nodes_explored_total",
                help="partial schedules expanded by branch-and-bound").inc(
                    float(stats.nodes_explored))
        return table, stats

    def schedule(self, graph: ApplicationFlowGraph
                 ) -> ResourceAllocationTable:
        """The registry contract: graph in, allocation table out."""
        table, _ = self.search(graph)
        return table


def _table_from_assignment(graph: ApplicationFlowGraph,
                           assignment: dict[str, Candidate]
                           ) -> ResourceAllocationTable:
    table = ResourceAllocationTable(application=graph.name)
    for nid in graph.topological_order():
        site, hosts, duration = assignment[nid]
        node = graph.node(nid)
        table.assign(AllocationEntry(
            node_id=nid, task_name=node.task_name, site=site,
            hosts=hosts, predicted_time_s=duration,
            processors=len(hosts)))
    return table


def brute_force_search(
    graph: ApplicationFlowGraph,
    repositories: dict[str, SiteRepository],
    topology: Topology,
    predictor_factory: Callable[
        [SiteRepository], PerformancePredictor] | None = None,
    max_combinations: int = 500_000,
) -> tuple[ResourceAllocationTable, float]:
    """Enumerate *every* assignment and return the best (no pruning).

    The differential oracle for :class:`OptimalScheduler`: O(hosts^tasks)
    and guarded by *max_combinations*, so only for tiny AFGs.
    """
    from repro.scheduling.makespan import evaluate_schedule

    reference = OptimalScheduler(repositories, topology,
                                 predictor_factory=predictor_factory)
    candidates = reference.candidates_for(graph)
    node_ids = graph.topological_order()
    total = 1
    for nid in node_ids:
        total *= len(candidates[nid])
        if total > max_combinations:
            raise SchedulingError(
                f"brute force would enumerate > {max_combinations} "
                f"assignments for {graph.name!r}")
    best_table: ResourceAllocationTable | None = None
    best_makespan = float("inf")
    for combo in itertools.product(*(candidates[nid] for nid in node_ids)):
        table = _table_from_assignment(
            graph, dict(zip(node_ids, combo)))
        makespan = evaluate_schedule(graph, table, topology).makespan
        if makespan < best_makespan:
            best_makespan = makespan
            best_table = table
    if best_table is None:  # pragma: no cover - candidates never empty
        raise SchedulingError("brute force found no assignment")
    return best_table, best_makespan


@register_scheduler("optimal")
def _optimal_factory(ctx: SchedulerContext) -> OptimalScheduler:
    return OptimalScheduler(ctx.repositories, ctx.topology, obs=ctx.obs)
