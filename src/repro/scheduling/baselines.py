"""Baseline schedulers for the comparison benchmarks (F4/F5).

The paper offers no quantitative comparison; these baselines make its
qualitative claims testable.  Each implements the same contract as the
VDCE pipeline — AFG in, :class:`ResourceAllocationTable` out — but with
progressively less of the paper's machinery:

* :class:`RandomScheduler` — uniform random feasible host anywhere;
* :class:`RoundRobinScheduler` — cycle hosts in address order;
* :class:`MinLoadScheduler` — lowest *reported* CPU load, ignoring
  task-specific weights (classic load-balancer);
* prediction-blind VDCE — the real pipeline with a crippled predictor,
  built by passing ablation toggles to :class:`PerformancePredictor`;
* local-only VDCE — :class:`SiteScheduler` with ``k = 0``.

All baselines honour hard feasibility (task-constraints DB, up/down,
machine-type preference) — otherwise they would simply crash, not lose.
"""

from __future__ import annotations

import numpy as np

from repro.afg.graph import ApplicationFlowGraph, TaskNode
from repro.repository.resource_perf import ResourceRecord
from repro.repository.site_repository import SiteRepository
from repro.scheduling.allocation import (
    AllocationEntry,
    ResourceAllocationTable,
)
from repro.scheduling.registry import SchedulerContext, register_scheduler
from repro.util.errors import NoFeasibleHostError
from repro.util.rng import RngRegistry

#: The named stream every RandomScheduler draws from (repro.util.rng).
RANDOM_SCHEDULER_STREAM = "scheduler-random"


class BaselineScheduler:
    """Shared feasibility filtering over a federation of repositories."""

    name = "baseline"

    def __init__(self, repositories: dict[str, SiteRepository]) -> None:
        self.repositories = repositories

    def _feasible(self, node: TaskNode) -> list[ResourceRecord]:
        """All feasible (site, record) candidates across every site."""
        out: list[ResourceRecord] = []
        for site, repo in sorted(self.repositories.items()):
            for rec in repo.resource_performance.hosts_at(site):
                if rec.status != "up":
                    continue
                if node.properties.machine_type is not None and \
                        rec.arch != node.properties.machine_type:
                    continue
                if not repo.task_constraints.is_runnable_on(
                        node.task_name, rec.address):
                    continue
                out.append(rec)
        if not out:
            raise NoFeasibleHostError(
                f"no feasible host anywhere for {node.node_id!r} "
                f"({node.task_name})")
        return out

    def _needed(self, node: TaskNode) -> int:
        return (node.properties.processors
                if node.properties.computation_mode == "parallel" else 1)

    def _entry(self, node: TaskNode,
               records: list[ResourceRecord]) -> AllocationEntry:
        """Build an entry from chosen records (all must share a site)."""
        site = records[0].site
        # A rough predicted time (base * cpu_factor): baselines do not
        # have the paper's prediction machinery.
        node_cost = node.base_cost()
        predicted = node_cost * max(r.cpu_factor for r in records)
        return AllocationEntry(
            node_id=node.node_id, task_name=node.task_name, site=site,
            hosts=tuple(r.address for r in records),
            predicted_time_s=predicted, processors=len(records))

    def _pick_parallel_site(self, node: TaskNode,
                            records: list[ResourceRecord],
                            ) -> dict[str, list[ResourceRecord]]:
        """Group candidates per site holding >= needed hosts."""
        per_site: dict[str, list[ResourceRecord]] = {}
        for rec in records:
            per_site.setdefault(rec.site, []).append(rec)
        needed = self._needed(node)
        eligible = {s: rs for s, rs in per_site.items() if len(rs) >= needed}
        if not eligible:
            raise NoFeasibleHostError(
                f"no site has {needed} feasible hosts for {node.node_id!r}")
        return eligible

    def schedule(self, graph: ApplicationFlowGraph
                 ) -> ResourceAllocationTable:
        graph.validate()
        table = ResourceAllocationTable(application=graph.name)
        for node_id in graph.topological_order():
            node = graph.node(node_id)
            table.assign(self._choose(node))
        return table

    def _choose(self, node: TaskNode) -> AllocationEntry:
        raise NotImplementedError


class RandomScheduler(BaselineScheduler):
    """Uniform random feasible placement."""

    name = "random"

    def __init__(self, repositories: dict[str, SiteRepository],
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(repositories)
        # DET001: randomness always comes from a named repro.util.rng
        # stream, never module-level numpy state — a default-constructed
        # RandomScheduler is therefore byte-reproducible.
        self.rng = rng if rng is not None else RngRegistry(0).stream(
            RANDOM_SCHEDULER_STREAM)

    def _choose(self, node: TaskNode) -> AllocationEntry:
        records = self._feasible(node)
        needed = self._needed(node)
        if needed == 1:
            rec = records[int(self.rng.integers(len(records)))]
            return self._entry(node, [rec])
        eligible = self._pick_parallel_site(node, records)
        site = sorted(eligible)[int(self.rng.integers(len(eligible)))]
        pool = eligible[site]
        idx = self.rng.choice(len(pool), size=needed, replace=False)
        return self._entry(node, [pool[i] for i in sorted(idx)])


class RoundRobinScheduler(BaselineScheduler):
    """Deterministic cycle through hosts in address order."""

    name = "round-robin"

    def __init__(self, repositories: dict[str, SiteRepository]) -> None:
        super().__init__(repositories)
        self._cursor = 0

    def _choose(self, node: TaskNode) -> AllocationEntry:
        records = sorted(self._feasible(node), key=lambda r: r.address)
        needed = self._needed(node)
        if needed == 1:
            rec = records[self._cursor % len(records)]
            self._cursor += 1
            return self._entry(node, [rec])
        eligible = self._pick_parallel_site(node, records)
        sites = sorted(eligible)
        site = sites[self._cursor % len(sites)]
        self._cursor += 1
        pool = sorted(eligible[site], key=lambda r: r.address)
        return self._entry(node, pool[:needed])


class MinLoadScheduler(BaselineScheduler):
    """Lowest reported CPU load; ties broken by address.

    Load-aware but task-blind: it never consults computing-power weights,
    so a lightly-loaded slow machine beats a busy fast one even when the
    fast one would still win — the exact failure the paper's per-task
    prediction avoids.
    """

    name = "min-load"

    def _choose(self, node: TaskNode) -> AllocationEntry:
        records = self._feasible(node)
        needed = self._needed(node)
        if needed == 1:
            rec = min(records, key=lambda r: (r.cpu_load, r.address))
            return self._entry(node, [rec])
        eligible = self._pick_parallel_site(node, records)
        site = min(eligible, key=lambda s: (
            sum(r.cpu_load for r in eligible[s]) / len(eligible[s]), s))
        pool = sorted(eligible[site], key=lambda r: (r.cpu_load, r.address))
        return self._entry(node, pool[:needed])


@register_scheduler("random")
def _random_factory(ctx: SchedulerContext) -> RandomScheduler:
    return RandomScheduler(ctx.repositories,
                           rng=ctx.rng.stream(RANDOM_SCHEDULER_STREAM))


@register_scheduler("round-robin")
def _round_robin_factory(ctx: SchedulerContext) -> RoundRobinScheduler:
    return RoundRobinScheduler(ctx.repositories)


@register_scheduler("min-load")
def _min_load_factory(ctx: SchedulerContext) -> MinLoadScheduler:
    return MinLoadScheduler(ctx.repositories)
