"""The Site Scheduler Algorithm (paper Figure 4).

The Application Scheduler at the *local* site (where the execution
request arrived):

1.  receives the AFG from the local Application Editor;
2.  selects the ``k`` nearest VDCE neighbour sites;
3.  multicasts the AFG to them;
4-5. each site (local included) runs the Host Selection Algorithm and
    returns per-task (machine, predicted time) pairs;
6.  initialises the ready set with the entry nodes;
7.  walks the graph in ready order (highest level first — section 2.2's
    list-scheduling priority): entry tasks, or tasks needing no input
    file, go to the site minimising ``Predict``; other tasks go to the
    site minimising ``transfer_time(S_parent, S_j) * file_size +
    Predict(task, R_j)``; ties prefer the local site then the site name,
    so schedules are deterministic.

This module is the *algorithm*; the message-level multicast/gather is
performed by the Site Managers in :mod:`repro.runtime.control` and hands
the collected :class:`HostSelectionResult` objects to
:meth:`SiteScheduler.schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any

from repro.afg.graph import ApplicationFlowGraph
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.prediction.predict import PerformancePredictor
from repro.scheduling.allocation import AllocationEntry, ResourceAllocationTable
from repro.scheduling.host_selection import (
    HostChoice,
    HostSelectionResult,
    HostSelector,
)
from repro.scheduling.levels import ReadySet, compute_levels
from repro.scheduling.registry import SchedulerContext, register_scheduler
from repro.util.errors import NoFeasibleHostError, SchedulingError


@dataclass
class ScheduleReport:
    """Diagnostics accompanying a resource allocation table."""

    application: str
    local_site: str
    consulted_sites: list[str]
    levels: dict[str, float] = field(default_factory=dict)
    scheduling_order: list[str] = field(default_factory=list)
    per_task_candidates: dict[str, dict[str, float]] = field(
        default_factory=dict)  # node -> site -> total predicted time


class SiteScheduler:
    """Figure 4, parameterised by the neighbourhood size ``k``.

    ``queue_aware=True`` enables a beyond-paper extension: an
    earliest-finish-time walk.  For every candidate host (each site's
    ranked alternatives) it computes ``max(data-ready time, host-free
    time) + Predict`` and assigns the minimiser, updating the host-free
    clock — so independent tasks spread across hosts while chain tasks
    still co-locate (a child never contends with its own parent).  The
    published algorithm is queue-blind — independent tasks of the same
    application all see the same "best" host — which the F4 benchmark
    shows costs it on wide shallow graphs; A5 quantifies the fix.
    """

    def __init__(self, local_site: str, topology: Topology,
                 k_remote_sites: int = 2, queue_aware: bool = False,
                 obs: Observability | None = None,
                 diagnostics: bool = True,
                 site_filter: Any = None) -> None:
        if k_remote_sites < 0:
            raise SchedulingError("k_remote_sites must be >= 0")
        self.local_site = local_site
        self.topology = topology
        self.k = k_remote_sites
        self.queue_aware = queue_aware
        self.obs = obs if obs is not None else OBS_OFF
        #: populate ScheduleReport's order/candidate maps; rescheduling
        #: hot loops turn this off — assignments are unaffected
        self.diagnostics = diagnostics
        #: degraded-mode predicate ``site -> bool`` (the federation
        #: membership view): sites it rejects are never consulted, even
        #: while momentarily reachable mid-flap.  None = every
        #: topology-reachable site is eligible.
        self.site_filter = site_filter

    # -- step 2: neighbour selection ---------------------------------------
    def select_remote_sites(self) -> list[str]:
        """The k nearest usable neighbour sites (step 2), by WAN latency.

        ``neighbors_by_latency`` already excludes sites with no
        surviving WAN path; the membership ``site_filter`` additionally
        excludes quarantined sites, *before* the k-truncation — so a
        quarantined nearest neighbour costs nothing from the
        neighbourhood budget.
        """
        ranked = self.topology.neighbors_by_latency(self.local_site)
        if self.site_filter is not None:
            ranked = [site for site in ranked if self.site_filter(site)]
        return ranked[:self.k]

    # -- steps 6-7: the assignment walk -------------------------------------
    def schedule(
        self,
        graph: ApplicationFlowGraph,
        selection_results: dict[str, HostSelectionResult],
        levels: dict[str, float] | None = None,
        revalidate: bool = True,
    ) -> tuple[ResourceAllocationTable, ScheduleReport]:
        """Assign every task to a site/host given per-site selections.

        *selection_results* maps site name to that site's Host Selection
        output; it must include the local site.  Pass *levels* when the
        priority listing is already in hand (e.g. computed for an earlier
        round over the same graph) to skip recomputing it, and
        ``revalidate=False`` when the graph was already validated (same
        rescheduling-loop reuse).
        """
        if self.local_site not in selection_results:
            raise SchedulingError(
                f"selection results missing the local site "
                f"{self.local_site!r}")
        if revalidate:
            graph.validate()
        if levels is None:
            levels = compute_levels(graph)
        table = ResourceAllocationTable(application=graph.name)
        report = ScheduleReport(
            application=graph.name, local_site=self.local_site,
            consulted_sites=sorted(selection_results), levels=levels)

        ready = ReadySet(graph, levels)
        # earliest-finish-time state for the queue-aware extension
        eft: dict[str, dict[str, float]] | None = (
            {"host_free": {}, "finish": {}} if self.queue_aware else None)
        diagnostics = self.diagnostics
        while ready:
            node_id = ready.pop()
            if diagnostics:
                report.scheduling_order.append(node_id)
            node = graph.node(node_id)
            entry = self._assign(graph, node_id, selection_results, table,
                                 report, eft)
            if diagnostics and node.properties.preferred_site is not None \
                    and entry.site != node.properties.preferred_site:
                # Preference is soft in the paper ("optional preferences");
                # record that it could not be honoured.
                report.per_task_candidates.setdefault(node_id, {})[
                    "_preference_unmet"] = 1.0
            table.assign(entry)
        if len(table) != len(graph):
            raise SchedulingError(
                "scheduling walk did not cover every node (cycle?)")
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "sched_walks_total",
                help="site-scheduler walks completed").inc(
                    site=self.local_site)
            obs.metrics.counter(
                "sched_tasks_placed_total",
                help="tasks placed by the site scheduler").inc(
                    float(len(table)), site=self.local_site)
        return table, report

    def _assign(self, graph: ApplicationFlowGraph, node_id: str,
                results: dict[str, HostSelectionResult],
                table: ResourceAllocationTable,
                report: ScheduleReport,
                eft: dict[str, dict[str, float]] | None = None
                ) -> AllocationEntry:
        node = graph.node(node_id)
        parents = graph.predecessors(node_id)
        preferred = node.properties.preferred_site
        # candidate key: (site, choice); the paper considers one choice
        # per site, the queue-aware extension also weighs alternatives.
        candidates: list[tuple[float, float, HostChoice, str]] = []
        diagnostics = self.diagnostics
        site_best: dict[str, float] = {}
        for site, result in results.items():
            options = (result.ranked_for(node_id) if self.queue_aware
                       else tuple(c for c in (result.choice_for(node_id),)
                                  if c is not None))
            if not options:
                continue
            if preferred is not None and site != preferred and \
                    preferred in results and \
                    results[preferred].choice_for(node_id) is not None:
                # honour an achievable preference as a hard filter
                continue
            transfer = self._transfer_time(graph, parents, site, table)
            for choice in options:
                if eft is not None:
                    # earliest finish: data-ready vs host-free, whichever
                    # is later, plus the predicted execution time
                    ready = max(
                        (eft["finish"][p]
                         + (0.0 if table.get(p).site == site else
                            self.topology.transfer_time(
                                table.get(p).site, site,
                                graph.node(p).output_bytes()))
                         for p in parents), default=0.0)
                    free = max((eft["host_free"].get(h, 0.0)
                                for h in choice.hosts), default=0.0)
                    total = max(ready, free) + choice.predicted_time_s
                else:
                    total = transfer + choice.predicted_time_s
                candidates.append((total, transfer, choice, site))
                if diagnostics:
                    site_best[site] = min(site_best.get(site, float("inf")),
                                          total)
        if diagnostics:
            report.per_task_candidates[node_id] = dict(site_best)
        if not candidates:
            raise NoFeasibleHostError(
                f"no consulted site can run task {node_id!r} "
                f"({node.task_name})")
        total, transfer, choice, best_site = min(
            candidates,
            key=lambda c: (c[0], c[3] != self.local_site, c[3],
                           c[2].hosts))
        if eft is not None:
            eft["finish"][node_id] = total
            for host in choice.hosts:
                eft["host_free"][host] = total
        return AllocationEntry(
            node_id=node_id, task_name=node.task_name, site=best_site,
            hosts=choice.hosts, predicted_time_s=choice.predicted_time_s,
            predicted_transfer_s=transfer,
            processors=choice.processors)

    def _transfer_time(self, graph: ApplicationFlowGraph,
                       parents: list[str], site: str,
                       table: ResourceAllocationTable) -> float:
        """Input-file transfer cost into *site* from the parents' sites.

        Entry tasks (no parents) need no input file: zero (Figure 4's
        first branch).  Same-site parents contribute zero ("If the site
        is the same as the parent site, then the total inter-task
        transfer time will be zero").
        """
        total = 0.0
        for parent in parents:
            parent_entry = table.get(parent)  # parents always scheduled first
            if parent_entry.site == site:
                continue
            size = graph.node(parent).output_bytes()
            total += self.topology.transfer_time(parent_entry.site, site,
                                                 size)
        return total

    # -- convenience: run selection + walk in-process -------------------------
    def schedule_with_selectors(
        self,
        graph: ApplicationFlowGraph,
        selectors: dict[str, HostSelector],
        levels: dict[str, float] | None = None,
        order: list[str] | None = None,
        revalidate: bool = True,
    ) -> tuple[ResourceAllocationTable, ScheduleReport]:
        """Steps 2-7 without the messaging layer (used by tests/benches).

        *selectors* maps site name to that site's HostSelector; the local
        site must be present.  Only the local site plus the k nearest
        neighbours are consulted, matching the multicast of step 3.
        *levels*, *order*, and ``revalidate=False`` let rescheduling
        loops over an unchanged graph reuse the derived structure.
        """
        if self.local_site not in selectors:
            raise SchedulingError("selectors must include the local site")
        consulted = [self.local_site] + [
            s for s in self.select_remote_sites() if s in selectors]
        results = {site: selectors[site].select(graph, order=order)
                   for site in consulted}
        return self.schedule(graph, results, levels=levels,
                             revalidate=revalidate)


class FederatedSiteScheduler:
    """Registry adapter: the whole VDCE pipeline as a one-call scheduler.

    Builds a per-site :class:`HostSelector` federation (Figure 5) and
    runs the :class:`SiteScheduler` walk (Figure 4) in-process, so the
    paper's algorithm satisfies the same ``schedule(graph) -> table``
    contract as every baseline.  ``predictor_kwargs`` forwards ablation
    toggles to :class:`~repro.prediction.predict.PerformancePredictor`
    — the ``prediction-blind`` registration cripples every Predict term,
    isolating the value of the prediction machinery itself.
    """

    def __init__(self, ctx: SchedulerContext, name: str = "site",
                 queue_aware: bool = False,
                 k_remote_sites: int | None = None,
                 predictor_kwargs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.repositories = ctx.repositories
        self._selectors = {
            site: HostSelector(repo, predictor=PerformancePredictor(
                repo.task_performance, **(predictor_kwargs or {})),
                incremental=ctx.incremental)
            for site, repo in sorted(ctx.repositories.items())
        }
        k = ctx.k_remote_sites if k_remote_sites is None else k_remote_sites
        self._scheduler = SiteScheduler(
            ctx.local_site, ctx.topology, k_remote_sites=k,
            queue_aware=queue_aware, obs=ctx.obs,
            site_filter=ctx.site_filter)
        self.last_report: ScheduleReport | None = None

    def schedule(self, graph: ApplicationFlowGraph
                 ) -> ResourceAllocationTable:
        table, report = self._scheduler.schedule_with_selectors(
            graph, self._selectors)
        self.last_report = report
        return table


@register_scheduler("site")
def _site_factory(ctx: SchedulerContext) -> FederatedSiteScheduler:
    return FederatedSiteScheduler(ctx, name="site")


@register_scheduler("site-queue-aware")
def _site_queue_aware_factory(ctx: SchedulerContext
                              ) -> FederatedSiteScheduler:
    return FederatedSiteScheduler(ctx, name="site-queue-aware",
                                  queue_aware=True)


@register_scheduler("site-local")
def _site_local_factory(ctx: SchedulerContext) -> FederatedSiteScheduler:
    """The k=0 ablation: never consult a remote site."""
    return FederatedSiteScheduler(ctx, name="site-local", k_remote_sites=0)


@register_scheduler("prediction-blind")
def _prediction_blind_factory(ctx: SchedulerContext
                              ) -> FederatedSiteScheduler:
    """The pipeline with every Predict(task, R) term disabled."""
    return FederatedSiteScheduler(
        ctx, name="prediction-blind",
        predictor_kwargs={"use_weight": False, "use_load": False,
                          "use_memory": False})
