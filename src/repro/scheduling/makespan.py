"""Schedule-length (makespan) evaluation of a resource allocation table.

The paper's objective is "to minimize the schedule length (total
execution time)".  This evaluator plays out an allocation on a timeline:
hosts are serial resources, a task starts when its parents' outputs have
arrived, and inter-site transfers follow the topology's transfer-time
model.  Durations come from a pluggable function so the same machinery
yields both the *predicted* schedule length (durations = the scheduler's
predictions) and the *ground-truth* makespan (durations = the execution
model's times), which is what the F4/F5 benchmarks compare.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.afg.graph import ApplicationFlowGraph
from repro.net.topology import Topology
from repro.scheduling.allocation import ResourceAllocationTable
from repro.scheduling.levels import ReadySet, compute_levels

DurationFn = Callable[[str], float]  # node id -> execution seconds


@dataclass
class Timeline:
    """Per-task start/finish times plus the aggregate makespan."""

    start: dict[str, float] = field(default_factory=dict)
    finish: dict[str, float] = field(default_factory=dict)
    transfer_in: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return max(self.finish.values(), default=0.0)

    def total_transfer(self) -> float:
        return sum(self.transfer_in.values())


def evaluate_schedule(
    graph: ApplicationFlowGraph,
    table: ResourceAllocationTable,
    topology: Topology,
    duration_fn: DurationFn | None = None,
    levels: dict[str, float] | None = None,
) -> Timeline:
    """Play out *table* on a timeline and return per-task times.

    ``duration_fn`` defaults to the allocation's predicted times.  Tasks
    sharing a host serialise in list-schedule (level-priority) order;
    parallel tasks occupy all of their hosts for their duration.  Pass
    *levels* (e.g. ``ScheduleReport.levels``) to reuse the scheduler's
    priority listing instead of recomputing it.
    """
    if duration_fn is None:
        duration_fn = lambda nid: table.get(nid).predicted_time_s  # noqa: E731
    if levels is None:
        levels = compute_levels(graph)
    host_free: dict[str, float] = {}
    timeline = Timeline()
    ready = ReadySet(graph, levels)
    while ready:
        nid = ready.pop()
        entry = table.get(nid)
        # data-arrival time: parent finish + inter-site transfer
        arrival = 0.0
        transfer_total = 0.0
        for parent in graph.predecessors(nid):
            pf = timeline.finish[parent]
            p_entry = table.get(parent)
            if p_entry.site != entry.site:
                size = graph.node(parent).output_bytes()
                t = topology.transfer_time(p_entry.site, entry.site, size)
            elif p_entry.host != entry.host:
                size = graph.node(parent).output_bytes()
                t = topology.lan(entry.site).transfer_time(size)
            else:
                t = 0.0
            transfer_total += t
            arrival = max(arrival, pf + t)
        resource_free = max((host_free.get(h, 0.0) for h in entry.hosts),
                            default=0.0)
        start = max(arrival, resource_free)
        duration = duration_fn(nid)
        finish = start + duration
        for h in entry.hosts:
            host_free[h] = finish
        timeline.start[nid] = start
        timeline.finish[nid] = finish
        timeline.transfer_in[nid] = transfer_total
    return timeline


def predicted_schedule_length(graph: ApplicationFlowGraph,
                              table: ResourceAllocationTable,
                              topology: Topology) -> float:
    """The scheduler's own estimate of total execution time."""
    return evaluate_schedule(graph, table, topology).makespan
