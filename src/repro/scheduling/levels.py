"""List-scheduling priorities: node levels.

Paper section 2.2: "The VDCE scheduling heuristic uses the level [11] of
each node to determine its priority.  The node (task) with a higher level
value will have a higher priority for scheduling.  The level of a node in
the graph is computed as the largest sum of computation costs along a
path from the node to an exit node. ... For the computation cost, the
task (node) execution time on the base processor ... is used."

Levels are computed once, before the scheduling walk ("the level of each
node of an application flow graph is determined before the execution of
the scheduling algorithm").
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import KeysView

from repro.afg.graph import ApplicationFlowGraph


def compute_levels(graph: ApplicationFlowGraph,
                   costs: dict[str, float] | None = None) -> dict[str, float]:
    """Level of every node: max path cost (inclusive) to an exit node.

    *costs* overrides the per-node base-processor computation cost;
    the default is each node's :meth:`TaskNode.base_cost`.
    """
    if costs is None:
        costs = {nid: node.base_cost() for nid, node in graph.nodes.items()}
    levels: dict[str, float] = {}
    for nid in reversed(graph.topological_order()):
        child_best = max((levels[c] for c in graph.successors(nid)),
                         default=0.0)
        levels[nid] = costs[nid] + child_best
    return levels


def priority_order(graph: ApplicationFlowGraph,
                   levels: dict[str, float] | None = None) -> list[str]:
    """All nodes sorted by descending level (name tie-break).

    This is a static listing; the scheduling walk additionally requires
    readiness (all parents scheduled) before a node may be picked.
    """
    if levels is None:
        levels = compute_levels(graph)
    return sorted(graph.nodes, key=lambda nid: (-levels[nid], nid))


class ReadySet:
    """The scheduler's ready set: entry nodes first, children as parents
    complete, always yielding the highest-level ready node.

    Internally a heap keyed ``(-level, nid)``: ``peek`` is O(1) and
    ``pop`` is O(log ready) instead of the O(ready) min-scan the set
    representation needed.  A node enters the heap exactly once (when
    its last parent is scheduled) and leaves only via :meth:`pop`, so
    the heap order reproduces ``min(ready, key=(-level, nid))`` exactly
    — no lazy deletion required.
    """

    def __init__(self, graph: ApplicationFlowGraph,
                 levels: dict[str, float]) -> None:
        self.graph = graph
        self.levels = levels
        self._unscheduled_parents = {
            nid: len(graph.predecessors(nid)) for nid in graph.nodes}
        self._heap = [(-levels[nid], nid)
                      for nid, n in self._unscheduled_parents.items()
                      if n == 0]
        heapify(self._heap)
        # insertion-ordered dict so ``scheduled`` can expose a live,
        # read-only set view (dict keys) instead of copying per access
        self._done: dict[str, None] = {}

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def peek(self) -> str:
        """Highest-priority ready node (deterministic tie-break)."""
        if not self._heap:
            raise IndexError("ready set is empty")
        return self._heap[0][1]

    def pop(self) -> str:
        """Remove and return the highest-priority ready node, releasing
        children whose parents are now all scheduled."""
        if not self._heap:
            raise IndexError("ready set is empty")
        nid = heappop(self._heap)[1]
        self._done[nid] = None
        unscheduled = self._unscheduled_parents
        levels = self.levels
        heap = self._heap
        for child in self.graph.successors(nid):
            unscheduled[child] -= 1
            if unscheduled[child] == 0:
                heappush(heap, (-levels[child], child))
        return nid

    @property
    def scheduled(self) -> KeysView[str]:
        """Nodes popped so far, in order — a live read-only set view.

        Previously this copied ``_done`` into a fresh ``set`` on every
        access, an O(scheduled) cost per poll in the scheduling walk.
        The view supports the full set-comparison protocol (``==``,
        ``in``, iteration) without the copy; callers must not mutate it.
        """
        return self._done.keys()

    def drain(self) -> list[str]:
        """Pop everything: the complete scheduling order."""
        order = []
        while self._heap:
            order.append(self.pop())
        return order
