"""List-scheduling priorities: node levels.

Paper section 2.2: "The VDCE scheduling heuristic uses the level [11] of
each node to determine its priority.  The node (task) with a higher level
value will have a higher priority for scheduling.  The level of a node in
the graph is computed as the largest sum of computation costs along a
path from the node to an exit node. ... For the computation cost, the
task (node) execution time on the base processor ... is used."

Levels are computed once, before the scheduling walk ("the level of each
node of an application flow graph is determined before the execution of
the scheduling algorithm").
"""

from __future__ import annotations

from repro.afg.graph import ApplicationFlowGraph


def compute_levels(graph: ApplicationFlowGraph,
                   costs: dict[str, float] | None = None) -> dict[str, float]:
    """Level of every node: max path cost (inclusive) to an exit node.

    *costs* overrides the per-node base-processor computation cost;
    the default is each node's :meth:`TaskNode.base_cost`.
    """
    if costs is None:
        costs = {nid: node.base_cost() for nid, node in graph.nodes.items()}
    levels: dict[str, float] = {}
    for nid in reversed(graph.topological_order()):
        child_best = max((levels[c] for c in graph.successors(nid)),
                         default=0.0)
        levels[nid] = costs[nid] + child_best
    return levels


def priority_order(graph: ApplicationFlowGraph,
                   levels: dict[str, float] | None = None) -> list[str]:
    """All nodes sorted by descending level (name tie-break).

    This is a static listing; the scheduling walk additionally requires
    readiness (all parents scheduled) before a node may be picked.
    """
    if levels is None:
        levels = compute_levels(graph)
    return sorted(graph.nodes, key=lambda nid: (-levels[nid], nid))


class ReadySet:
    """The scheduler's ready set: entry nodes first, children as parents
    complete, always yielding the highest-level ready node."""

    def __init__(self, graph: ApplicationFlowGraph,
                 levels: dict[str, float]) -> None:
        self.graph = graph
        self.levels = levels
        self._unscheduled_parents = {
            nid: len(graph.predecessors(nid)) for nid in graph.nodes}
        self._ready = {nid for nid, n in self._unscheduled_parents.items()
                       if n == 0}
        self._done: set[str] = set()

    def __bool__(self) -> bool:
        return bool(self._ready)

    def __len__(self) -> int:
        return len(self._ready)

    def peek(self) -> str:
        """Highest-priority ready node (deterministic tie-break)."""
        if not self._ready:
            raise IndexError("ready set is empty")
        return min(self._ready, key=lambda nid: (-self.levels[nid], nid))

    def pop(self) -> str:
        """Remove and return the highest-priority ready node, releasing
        children whose parents are now all scheduled."""
        nid = self.peek()
        self._ready.remove(nid)
        self._done.add(nid)
        for child in self.graph.successors(nid):
            self._unscheduled_parents[child] -= 1
            if self._unscheduled_parents[child] == 0:
                self._ready.add(child)
        return nid

    @property
    def scheduled(self) -> set[str]:
        return set(self._done)

    def drain(self) -> list[str]:
        """Pop everything: the complete scheduling order."""
        order = []
        while self._ready:
            order.append(self.pop())
        return order
