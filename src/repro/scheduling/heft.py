"""HEFT: Heterogeneous Earliest Finish Time.

A fitting comparator: HEFT was published two years later by the same
first author (Topcuoglu, Hariri, Wu, "Performance-effective and
low-complexity task scheduling for heterogeneous computing", 1999-2002).
Including it shows where the VDCE prototype's scheduler sat relative to
the line of work it led to.

HEFT differs from the paper's site scheduler in two ways:

1. priority = *upward rank*: mean computation cost across hosts plus the
   maximum over children of (mean communication cost + child rank) —
   versus VDCE's base-processor-only levels;
2. assignment = earliest finish time with *insertion*: a task may fill an
   idle gap between two already-scheduled tasks on a host.

This implementation runs against the same repository view as every other
scheduler (predicted times via ``Predict``; no ground-truth peeking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.afg.graph import ApplicationFlowGraph, TaskNode
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.prediction.predict import PerformancePredictor
from repro.repository.site_repository import SiteRepository
from repro.scheduling.allocation import (
    AllocationEntry,
    ResourceAllocationTable,
)
from repro.scheduling.registry import SchedulerContext, register_scheduler
from repro.util.errors import NoFeasibleHostError


@dataclass
class _HostSchedule:
    """Occupied intervals on one host, kept sorted by start time."""

    intervals: list[tuple[float, float]] = field(default_factory=list)

    def earliest_slot(self, ready: float, duration: float) -> float:
        """Earliest start >= ready fitting *duration* (with insertion)."""
        start = ready
        for s, f in self.intervals:
            if start + duration <= s:
                break  # fits in the gap before this interval
            start = max(start, f)
        return start

    def occupy(self, start: float, finish: float) -> None:
        self.intervals.append((start, finish))
        self.intervals.sort()


class HeftScheduler:
    """HEFT over the federation's repository view."""

    name = "heft"

    def __init__(self, repositories: dict[str, SiteRepository],
                 topology: Topology,
                 predictor_factory: Callable[
                     [SiteRepository], PerformancePredictor] | None = None,
                 obs: Observability | None = None) -> None:
        self.repositories = repositories
        self.topology = topology
        self._predictor_factory = predictor_factory or (
            lambda repo: PerformancePredictor(repo.task_performance))
        self.obs = obs if obs is not None else OBS_OFF

    # -- candidate costs ------------------------------------------------------
    def _candidates(self, node: TaskNode) -> list[tuple[str, str, float]]:
        """(site, host, predicted_time) for every feasible host."""
        out: list[tuple[str, str, float]] = []
        for site, repo in sorted(self.repositories.items()):
            predictor = self._predictor_factory(repo)
            for rec in repo.resource_performance.hosts_at(site):
                if rec.status != "up":
                    continue
                if node.properties.machine_type is not None and \
                        rec.arch != node.properties.machine_type:
                    continue
                if not repo.task_constraints.is_runnable_on(
                        node.task_name, rec.address):
                    continue
                p = predictor.predict(node.definition,
                                      node.properties.input_size, rec)
                out.append((site, rec.address, p.estimate_s))
        if not out:
            raise NoFeasibleHostError(
                f"HEFT: no feasible host for {node.node_id!r}")
        return out

    def _mean_comm(self, graph: ApplicationFlowGraph, src: str) -> float:
        """Average inter-site transfer cost of src's output."""
        size = graph.node(src).output_bytes()
        sites = sorted(self.repositories)
        if len(sites) < 2:
            return self.topology.lan(sites[0]).transfer_time(size)
        costs = [self.topology.transfer_time(a, b, size)
                 for i, a in enumerate(sites) for b in sites[i + 1:]]
        return sum(costs) / len(costs)

    # -- upward ranks ----------------------------------------------------------
    def upward_ranks(self, graph: ApplicationFlowGraph,
                     costs: dict[str, list[tuple[str, str, float]]]
                     ) -> dict[str, float]:
        mean_cost = {nid: sum(c for _s, _h, c in cands) / len(cands)
                     for nid, cands in costs.items()}
        ranks: dict[str, float] = {}
        for nid in reversed(graph.topological_order()):
            child_term = max(
                (self._mean_comm(graph, nid) + ranks[c]
                 for c in graph.successors(nid)), default=0.0)
            ranks[nid] = mean_cost[nid] + child_term
        return ranks

    # -- the algorithm -------------------------------------------------------------
    def schedule(self, graph: ApplicationFlowGraph
                 ) -> ResourceAllocationTable:
        graph.validate()
        costs = {nid: self._candidates(graph.node(nid))
                 for nid in graph.nodes}
        ranks = self.upward_ranks(graph, costs)
        order = sorted(graph.nodes, key=lambda nid: (-ranks[nid], nid))
        table = ResourceAllocationTable(application=graph.name)
        host_sched: dict[str, _HostSchedule] = {}
        finish: dict[str, float] = {}
        placed_site: dict[str, str] = {}
        for nid in order:
            node = graph.node(nid)
            # (eft, est, site, host, duration)
            best: tuple[float, float, str, str, float] | None = None
            for site, host, duration in costs[nid]:
                ready = 0.0
                for parent in graph.predecessors(nid):
                    comm = 0.0
                    if placed_site[parent] != site:
                        comm = self.topology.transfer_time(
                            placed_site[parent], site,
                            graph.node(parent).output_bytes())
                    ready = max(ready, finish[parent] + comm)
                sched = host_sched.setdefault(host, _HostSchedule())
                est = sched.earliest_slot(ready, duration)
                eft = est + duration
                if best is None or (eft, host) < (best[0], best[3]):
                    best = (eft, est, site, host, duration)
            assert best is not None
            eft, est, site, host, duration = best
            host_sched[host].occupy(est, eft)
            finish[nid] = eft
            placed_site[nid] = site
            table.assign(AllocationEntry(
                node_id=nid, task_name=node.task_name, site=site,
                hosts=(host,), predicted_time_s=duration))
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter(
                "heft_schedules_total",
                help="HEFT schedules computed").inc()
            obs.metrics.counter(
                "heft_tasks_placed_total",
                help="tasks placed by HEFT").inc(float(len(table)))
        return table


@register_scheduler("heft")
def _heft_factory(ctx: SchedulerContext) -> HeftScheduler:
    return HeftScheduler(ctx.repositories, ctx.topology, obs=ctx.obs)
