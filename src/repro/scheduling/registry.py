"""The pluggable scheduler registry.

Every scheduler in the repository — the paper's site scheduler, HEFT,
the naive baselines, and the branch-and-bound optimal reference — runs
under one contract: an :class:`ApplicationFlowGraph` plus a federation
view (per-site repositories + topology) in, a
:class:`~repro.scheduling.allocation.ResourceAllocationTable` out.  The
registry maps a stable name to a factory building a ready-to-run
scheduler from a :class:`SchedulerContext`, so the bake-off harness
(:mod:`repro.bakeoff`), the experiment drivers, and downstream users can
enumerate and instantiate schedulers without knowing their constructor
shapes.

Implementations self-register at import time with the
:func:`register_scheduler` decorator; :func:`_ensure_builtins` imports
the in-tree modules lazily so this module stays import-cycle-free.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.afg.graph import ApplicationFlowGraph
from repro.net.topology import Topology
from repro.obs import OBS_OFF, Observability
from repro.repository.site_repository import SiteRepository
from repro.scheduling.allocation import ResourceAllocationTable
from repro.util.errors import SchedulingError
from repro.util.rng import RngRegistry


@runtime_checkable
class TenantGate(Protocol):
    """The DRF pre-filter contract (implemented by ``repro.traffic.drf``).

    When a :class:`SchedulerContext` carries a gate, dispatch layers ask
    it before handing a tenant's job to the inner scheduler: ``admits``
    answers whether granting *procs*/*memory_mb* keeps the tenant inside
    its quota and its weighted dominant-resource fair share, and
    ``precedence`` orders tenants for progressive filling (lowest
    weighted dominant share first).  Schedulers themselves stay
    tenant-blind — fairness is enforced around them, so every registered
    scheduler composes with multi-tenancy unchanged.
    """

    def admits(self, tenant: str, procs: int, memory_mb: float) -> bool:
        """May *tenant* be granted this demand right now?"""
        ...  # pragma: no cover

    def precedence(self, tenant: str) -> tuple[float, str]:
        """Sort key (weighted dominant share, name) for progressive filling."""
        ...  # pragma: no cover


@runtime_checkable
class Scheduler(Protocol):
    """The one contract every registered scheduler satisfies."""

    name: str

    def schedule(self, graph: ApplicationFlowGraph
                 ) -> ResourceAllocationTable:
        """Assign every task of *graph* to a site and host(s)."""
        ...  # pragma: no cover


@dataclass
class SchedulerContext:
    """Everything a factory may need to build a scheduler.

    One context describes one federation; factories read only what they
    use (the naive baselines ignore the topology, the site scheduler
    ignores the rng).  ``rng`` is a named-stream registry so randomized
    schedulers draw from their own stream (DET001: never module-level
    numpy randomness) and adding a scheduler never perturbs another's
    draws.
    """

    repositories: dict[str, SiteRepository]
    topology: Topology
    local_site: str
    k_remote_sites: int = 2
    rng: RngRegistry = field(default_factory=lambda: RngRegistry(0))
    obs: Observability = field(default_factory=lambda: OBS_OFF)
    #: delta-aware host selection: selectors keep persistent candidate
    #: score views cursored on each repository's change journal instead
    #: of re-walking every (task, host) pair per round.  ``False`` forces
    #: the full re-walk — the differential-testing oracle.
    incremental: bool = True
    #: multi-tenant DRF pre-filter (``repro.traffic.drf.TenantShareFilter``):
    #: when set, dispatch layers consult it before scheduling a tenant's
    #: job.  ``None`` means single-tenant operation — the default, and
    #: byte-identical to the pre-tenancy behaviour.
    tenancy: TenantGate | None = None
    #: degraded-mode site predicate (``repro.federation``): sites it
    #: rejects — quarantined by the membership protocol — are excluded
    #: from neighbourhood selection.  ``None`` means full membership.
    site_filter: Callable[[str], bool] | None = None


SchedulerFactory = Callable[[SchedulerContext], Scheduler]

_REGISTRY: dict[str, SchedulerFactory] = {}

#: modules whose import self-registers the in-tree schedulers
_BUILTIN_MODULES = (
    "repro.scheduling.site_scheduler",
    "repro.scheduling.heft",
    "repro.scheduling.baselines",
    "repro.scheduling.optimal",
)


def register_scheduler(name: str) -> Callable[[SchedulerFactory],
                                              SchedulerFactory]:
    """Class/function decorator registering a scheduler factory.

    >>> @register_scheduler("my-sched")         # doctest: +SKIP
    ... def _make(ctx: SchedulerContext) -> Scheduler:
    ...     return MyScheduler(ctx.repositories)
    """
    if not name or "/" in name or " " in name:
        raise SchedulingError(
            f"scheduler name {name!r} must be a non-empty slug")

    def decorator(factory: SchedulerFactory) -> SchedulerFactory:
        if name in _REGISTRY:
            raise SchedulingError(
                f"scheduler {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return decorator


def _ensure_builtins() -> None:
    """Import every in-tree scheduler module (idempotent)."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def available_schedulers() -> list[str]:
    """Sorted names of every registered scheduler."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def create_scheduler(name: str, ctx: SchedulerContext) -> Scheduler:
    """Build one registered scheduler for *ctx*."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None
    return factory(ctx)


def create_schedulers(names: Iterable[str],
                      ctx: SchedulerContext) -> dict[str, Scheduler]:
    """Build several registered schedulers against one shared context."""
    return {name: create_scheduler(name, ctx) for name in names}
