"""Seeded random-stream management.

Experiments must be reproducible and components must not perturb each
other's randomness.  :class:`RngRegistry` derives an independent
``numpy.random.Generator`` per named stream from a single root seed using
``SeedSequence.spawn``-style derivation keyed by the stream name, so
adding a new consumer never changes the draws seen by existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Derive independent, named random generators from one root seed.

    >>> r = RngRegistry(42)
    >>> a = r.stream("loads").random()
    >>> b = RngRegistry(42).stream("loads").random()
    >>> a == b
    True
    >>> r.stream("loads") is r.stream("loads")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # Key the child seed on the stream name so that registration
            # order is irrelevant to determinism.
            tag = zlib.crc32(name.encode("utf-8"))
            ss = np.random.SeedSequence([self.seed, tag])
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose root seed is derived from *name*.

        Used to give each simulation replication its own namespace.
        """
        tag = zlib.crc32(name.encode("utf-8"))
        return RngRegistry((self.seed * 1_000_003 + tag) % (2**63))
