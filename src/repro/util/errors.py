"""Exception hierarchy for the VDCE reproduction.

Every error raised by the library derives from :class:`VDCEError` so that
callers can catch library failures without catching programming errors.
The hierarchy mirrors the paper's module split: editor/graph errors,
repository errors, scheduling errors, and runtime errors.
"""

from __future__ import annotations


class VDCEError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(VDCEError):
    """An environment, site, host, or module was configured inconsistently."""


class GraphError(VDCEError):
    """Base class for Application Flow Graph construction errors."""


class CycleError(GraphError):
    """The application flow graph is not acyclic (paper: AFG must be a DAG)."""


class PortError(GraphError):
    """A link references a missing or incompatible logical port."""


class UnknownTaskError(GraphError):
    """A node references a task name absent from every task library."""


class EditorModeError(GraphError):
    """An editor operation was attempted in the wrong mode (task/link/run)."""


class RepositoryError(VDCEError):
    """Base class for site-repository database failures."""


class AuthenticationError(RepositoryError):
    """User authentication against the user-accounts database failed."""


class NotRegisteredError(RepositoryError):
    """A host, task, or account was not found in the repository."""


class SchedulingError(VDCEError):
    """The Application Scheduler could not produce a resource allocation."""


class NoFeasibleHostError(SchedulingError):
    """No host satisfies a task's constraints (executable location, memory,
    machine-type preference)."""


class QoSViolationError(SchedulingError):
    """A schedule could not satisfy the application's QoS requirements."""


class RuntimeSystemError(VDCEError):
    """Base class for VDCE Runtime System failures."""


class ChannelError(RuntimeSystemError):
    """Communication channel setup or transfer failed (Data Manager)."""


class HostDownError(RuntimeSystemError):
    """An operation targeted a host marked ``down`` in the repository."""


class DeliveryTimeoutError(RuntimeSystemError):
    """A message exchange exhausted its retry budget without an answer."""


class ExecutionError(RuntimeSystemError):
    """A task execution failed on its assigned resource."""


class ConsoleError(RuntimeSystemError):
    """An invalid console-service transition (suspend/resume) was requested."""


class SimulationError(VDCEError):
    """The discrete-event simulation substrate was driven incorrectly."""


class DataConversionError(RuntimeSystemError):
    """Data conversion between heterogeneous machine formats failed."""
