"""Deterministic identifier generation.

The simulation substrate must be fully reproducible, so identifiers are
sequential per-prefix counters rather than UUIDs.  Each :class:`IdFactory`
is an independent namespace; the global :func:`fresh_id` helper uses a
module-level factory that tests may reset via :func:`reset_global_ids`.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict


class IdFactory:
    """Thread-safe generator of ``prefix-N`` identifiers.

    >>> f = IdFactory()
    >>> f.fresh("app")
    'app-1'
    >>> f.fresh("app")
    'app-2'
    >>> f.fresh("host")
    'host-1'
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count[int]] = defaultdict(
            lambda: itertools.count(1)
        )
        self._lock = threading.Lock()

    def fresh(self, prefix: str) -> str:
        """Return the next identifier for *prefix*."""
        with self._lock:
            return f"{prefix}-{next(self._counters[prefix])}"

    def reset(self) -> None:
        """Restart every counter at 1."""
        with self._lock:
            self._counters.clear()


_GLOBAL = IdFactory()


def fresh_id(prefix: str) -> str:
    """Return a fresh identifier from the process-global factory."""
    return _GLOBAL.fresh(prefix)


def reset_global_ids() -> None:
    """Reset the process-global factory (intended for tests)."""
    _GLOBAL.reset()
