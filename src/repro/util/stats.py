"""Small statistics helpers shared across the library.

These back the paper's monitoring and forecasting machinery: the Group
Manager's "significant change" test uses a confidence-interval width over
a window of recent measurements (paper section 2.3.1, citing [20]), and
schedulers summarise replicated experiment results.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if len(xs) == 0:
        raise ValueError("mean() of empty sequence")
    return float(sum(xs)) / len(xs)


def variance(xs: Sequence[float]) -> float:
    """Unbiased sample variance; 0.0 when fewer than two samples."""
    n = len(xs)
    if n < 2:
        return 0.0
    m = mean(xs)
    return sum((x - m) ** 2 for x in xs) / (n - 1)


def stddev(xs: Sequence[float]) -> float:
    """Unbiased sample standard deviation."""
    return math.sqrt(variance(xs))


# Two-sided critical values of Student's t for common confidence levels,
# indexed by degrees of freedom 1..30; beyond 30 the normal value is used.
# Hard-coded so the core library does not depend on scipy.
_T_TABLE = {
    0.90: [6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
           1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
           1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
           1.701, 1.699, 1.697],
    0.95: [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
           2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
           2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
           2.048, 2.045, 2.042],
    0.99: [63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
           3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
           2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
           2.763, 2.756, 2.750],
}
_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for *df* degrees of freedom."""
    if confidence not in _T_TABLE:
        raise ValueError(f"unsupported confidence level {confidence!r}; "
                         f"choose from {sorted(_T_TABLE)}")
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    table = _T_TABLE[confidence]
    if df <= len(table):
        return table[df - 1]
    return _Z_VALUES[confidence]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``center +/- half_width``."""

    center: float
    half_width: float
    confidence: float

    @property
    def low(self) -> float:
        return self.center - self.half_width

    @property
    def high(self) -> float:
        return self.center + self.half_width

    def contains(self, x: float) -> bool:
        """True when *x* falls within the interval (inclusive)."""
        return self.low <= x <= self.high


def confidence_interval(
    xs: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of *xs*.

    With a single sample the half-width is zero (no spread information),
    matching the Group Manager's behaviour of always forwarding the first
    measurement.
    """
    n = len(xs)
    if n == 0:
        raise ValueError("confidence_interval() of empty sequence")
    m = mean(xs)
    if n == 1:
        return ConfidenceInterval(m, 0.0, confidence)
    hw = t_critical(n - 1, confidence) * stddev(xs) / math.sqrt(n)
    return ConfidenceInterval(m, hw, confidence)


def geometric_mean(xs: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speedup summaries)."""
    if len(xs) == 0:
        raise ValueError("geometric_mean() of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric_mean() requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def percentile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``0 <= q <= 100``."""
    if len(xs) == 0:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ys = sorted(xs)
    if len(ys) == 1:
        return float(ys[0])
    pos = (len(ys) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ys[lo])
    frac = pos - lo
    return float(ys[lo] * (1 - frac) + ys[hi] * frac)
