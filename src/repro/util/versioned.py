"""The ``@versioned`` marker for classes under the INV001 contract.

A *versioned* class carries a monotone stamp that the prediction memo
keys on: every method that mutates instance data must bump the stamp (or
call a stamp helper) so cached ``Predict()`` results go stale.  The
decorator changes no behaviour — it records the stamp attribute on the
class and marks it for ``tools.reprolint``'s INV001 checker, which
verifies the contract statically on every class that carries the marker
(plus the core repositories it knows by name).
"""

from __future__ import annotations

from typing import Callable, TypeVar

_T = TypeVar("_T", bound=type)

__all__ = ["versioned"]


def versioned(version_attr: str = "_version") -> Callable[[_T], _T]:
    """Class decorator marking *version_attr* as the INV001 stamp."""

    def mark(cls: _T) -> _T:
        cls.__versioned_attr__ = version_attr  # type: ignore[attr-defined]
        return cls

    return mark
