"""The ``repro obs`` report: utilization, queue depths, latency percentiles.

This is the text-mode stand-in for the paper's Application Analyzer
views: given an :class:`~repro.obs.Observability` handle after a run, it
digests the span tree and the metrics registry into the three summaries
an operator actually asks for —

* **utilization** — per-actor busy fraction from the task-execution
  spans (how hard each host worked over the observed window);
* **queue depths** — last-sampled and distributional mailbox depths,
  fed by :func:`sample_queue_depths`;
* **schedule latency percentiles** — p50/p90/p99 over the
  schedule-round span durations, via :func:`repro.util.stats.percentile`
  (raw durations, not histogram buckets, so the percentiles are exact).

Everything iterates sorted, so the rendered report is byte-stable for a
fixed seed.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import DEFAULT_DEPTH_BUCKETS
from repro.obs.spans import SpanTracker
from repro.util.stats import mean, percentile

#: latency percentiles the report quotes
REPORT_PERCENTILES = (50.0, 90.0, 99.0)


def utilization(spans: SpanTracker,
                clock_end: float | None = None) -> dict[str, float]:
    """Per-actor busy fraction from task-execution spans.

    Busy time is the sum of task-execution durations per actor; the
    window is [earliest start, *clock_end* or latest end] across all
    task spans.  Overlapping tasks on one actor can push utilization
    above 1.0 — that is a finding (oversubscription), not an error.
    """
    tasks = spans.by_category("task-execution")
    if not tasks:
        return {}
    start = min(s.start_s for s in tasks)
    end = clock_end if clock_end is not None else max(
        s.end_s if s.end_s is not None else s.start_s for s in tasks)
    window = end - start
    busy: dict[str, float] = {}
    for span in tasks:
        busy[span.actor] = busy.get(span.actor, 0.0) + span.duration_s(end)
    if window <= 0:
        return {actor: 0.0 for actor in sorted(busy)}
    return {actor: busy[actor] / window for actor in sorted(busy)}


def schedule_latencies(spans: SpanTracker) -> list[float]:
    """Raw schedule-round durations, in span-id (i.e. causal) order."""
    return [s.duration_s() for s in spans.finished("schedule-round")]


def latency_percentiles(
        latencies: list[float],
        qs: tuple[float, ...] = REPORT_PERCENTILES) -> dict[float, float]:
    """Exact percentiles over raw latency samples."""
    if not latencies:
        return {}
    return {q: percentile(latencies, q) for q in qs}


def sample_queue_depths(obs: Any, vdce: Any) -> dict[str, int]:
    """Snapshot every network mailbox depth into the registry.

    Call this periodically (the ``repro obs`` CLI does, between
    ``run_until`` steps) to build the queue-depth picture.  Writes the
    ``queue_depth`` gauge (latest) and the ``queue_depth_dist``
    histogram (distribution over samples) per address.  *vdce* is
    duck-typed (anything with ``.world.network``) to keep ``repro.obs``
    import-independent of ``repro.core``.
    """
    network = vdce.world.network
    depths: dict[str, int] = {}
    for addr in sorted(network.addresses):
        depths[addr] = len(network.mailbox(addr).items)
    if obs.enabled:
        gauge = obs.metrics.gauge(
            "queue_depth", help="last-sampled mailbox depth per address")
        hist = obs.metrics.histogram(
            "queue_depth_dist", buckets=DEFAULT_DEPTH_BUCKETS,
            help="mailbox depth distribution over samples")
        for addr, depth in depths.items():
            gauge.set(depth, addr=addr)
            hist.observe(depth, addr=addr)
    return depths


def _fmt_pct(x: float) -> str:
    return f"{100.0 * x:6.1f}%"


def render_report(obs: Any, clock_end: float | None = None) -> str:
    """The full ``repro obs`` text report (byte-stable for a seed)."""
    lines: list[str] = ["== observability report =="]

    util = utilization(obs.spans, clock_end=clock_end)
    lines.append("")
    lines.append("-- utilization (task-execution busy fraction) --")
    if util:
        for actor in sorted(util):
            lines.append(f"  {actor:<28} {_fmt_pct(util[actor])}")
    else:
        lines.append("  (no task-execution spans)")

    lines.append("")
    lines.append("-- schedule latency (schedule-round spans) --")
    lats = schedule_latencies(obs.spans)
    if lats:
        pcts = latency_percentiles(lats)
        lines.append(f"  rounds={len(lats)}  mean={mean(lats):.6f}s")
        for q in REPORT_PERCENTILES:
            lines.append(f"  p{q:g} = {pcts[q]:.6f}s")
    else:
        lines.append("  (no schedule-round spans)")

    lines.append("")
    lines.append("-- queue depths (sampled) --")
    gauge = obs.metrics.get("queue_depth")
    hist = obs.metrics.get("queue_depth_dist")
    if gauge is not None and gauge.samples():
        for key, value in gauge.samples():
            addr = dict(key).get("addr", "?")
            series = hist.series(addr=addr) if hist is not None else None
            if series is not None:
                lines.append(
                    f"  {addr:<28} last={int(value):>3d}  "
                    f"max={int(series.max):>3d}  mean={series.mean:.2f}")
            else:
                lines.append(f"  {addr:<28} last={int(value):>3d}")
    else:
        lines.append("  (no queue samples; run with sampling enabled)")

    lines.append("")
    lines.append("-- robustness (retries / timeouts / failovers) --")
    any_robustness = False
    for name in ("retries_total", "delivery_timeouts_total",
                 "failovers_total"):
        metric = obs.metrics.get(name)
        if metric is None:
            continue
        total = sum(value for _, value in metric.samples())
        lines.append(f"  {name:<28} {int(total):>6d}")
        any_robustness = True
    if not any_robustness:
        lines.append("  (no retries, timeouts or failovers recorded)")

    lines.append("")
    lines.append("-- span inventory --")
    counts: dict[str, int] = {}
    for span in obs.spans.spans:
        counts[span.category] = counts.get(span.category, 0) + 1
    if counts:
        for cat in sorted(counts):
            lines.append(f"  {cat:<20} {counts[cat]:>6d}")
    else:
        lines.append("  (no spans recorded)")

    lines.append("")
    lines.append("-- metric inventory --")
    metrics = obs.metrics.collect()
    if metrics:
        for metric in metrics:
            n_series = len(metric.samples())
            lines.append(
                f"  {metric.name:<32} {metric.kind:<10} series={n_series}")
    else:
        lines.append("  (no metrics recorded)")

    return "\n".join(lines) + "\n"
