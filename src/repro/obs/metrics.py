"""Deterministic sim-time metrics: counters, gauges, histograms.

The paper's Application Analyzer promises "application performance
views" over a running VDCE; this registry is the aggregation layer those
views (and the ``repro obs`` report) read from.  Three instrument kinds,
modelled on the Prometheus data model but driven entirely by the
*simulated* clock:

* :class:`Counter` — monotonically increasing totals (messages sent,
  tasks executed);
* :class:`Gauge` — last-written values (a host's current CPU load);
* :class:`Histogram` — distributions over **fixed, registration-time
  bucket boundaries** (delivery delays, task elapsed times).

Determinism contract (DET001): every series is keyed on the *sorted*
tuple of its label pairs, and every iteration the registry exposes is
sorted by metric name then label key — so exports are byte-identical
across runs and independent of ``PYTHONHASHSEED``.  Nothing in this
module reads the wall clock or any RNG.

Recording is cheap (a dict lookup and an add) but not free; hot paths
must guard calls with ``if obs.enabled:`` — the same idiom as tracer
calls, enforced by reprolint PERF001 on the hot-path modules.
"""

from __future__ import annotations

import re
from typing import Union

#: one series key: label pairs sorted by label name
LabelKey = tuple[tuple[str, str], ...]

#: Default duration buckets (seconds): spans microsecond message hops to
#: multi-minute applications.  Fixed here so two runs (or two hosts)
#: always aggregate into identical boundaries.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 50.0, 100.0, 500.0)

#: Default size/count buckets for queue depths and similar small integers.
DEFAULT_DEPTH_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_key(labels: dict[str, str]) -> LabelKey:
    """Canonical series key: label pairs sorted by label name.

    Sorting here (not at export time) is what makes aggregation
    hash-seed independent: two call sites passing the same labels in
    different keyword order land in the same series.
    """
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing total, partitioned by labels."""

    __slots__ = ("name", "help", "_values")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add *amount* (default 1) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(amount={amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current total of one labelled series (0.0 when never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        return sum(self._values.values())

    def samples(self) -> list[tuple[LabelKey, float]]:
        """Every series, sorted by label key (deterministic)."""
        return sorted(self._values.items())


class Gauge:
    """A last-write-wins value, partitioned by labels."""

    __slots__ = ("name", "help", "_values")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the labelled series with *value*."""
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        """Adjust the labelled series by *amount* (may be negative)."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0.0 when never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        """Every series, sorted by label key (deterministic)."""
        return sorted(self._values.items())


class HistogramSeries:
    """Aggregated observations of one labelled histogram series."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        #: one count per boundary plus the +Inf overflow bucket
        self.bucket_counts = [0] * (n_buckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """A distribution over fixed bucket boundaries, partitioned by labels.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics) and
    frozen at registration time, so aggregated output never depends on
    the order or timing of observations.
    """

    __slots__ = ("name", "help", "buckets", "_series")

    kind = "histogram"

    def __init__(self, name: str, buckets: tuple[float, ...] | None = None,
                 help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_TIME_BUCKETS)
        if not bounds:
            raise ValueError(f"histogram {name} needs >= 1 bucket boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"histogram {name} boundaries must be strictly increasing: "
                f"{bounds}")
        self.buckets = bounds
        self._series: dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = HistogramSeries(len(self.buckets))
            self._series[key] = series
        idx = len(self.buckets)  # +Inf overflow by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series.bucket_counts[idx] += 1
        series.count += 1
        series.sum += value
        if value < series.min:
            series.min = value
        if value > series.max:
            series.max = value

    def series(self, **labels: str) -> HistogramSeries | None:
        """One labelled series' aggregate, or None when never observed."""
        return self._series.get(_label_key(labels))

    def samples(self) -> list[tuple[LabelKey, HistogramSeries]]:
        """Every series, sorted by label key (deterministic)."""
        return sorted(self._series.items(), key=lambda kv: kv[0])


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """The process-wide (well, federation-wide) metric namespace.

    ``counter``/``gauge``/``histogram`` are idempotent by name — the
    second registration of ``net_messages_total`` returns the first
    instrument — so every component can declare its instruments locally
    without central coordination.  Re-registering a name as a different
    kind (or a histogram with different boundaries) is a programming
    error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        """Fetch-or-create the named counter."""
        got = self._metrics.get(name)
        if got is None:
            got = Counter(name, help=help)
            self._metrics[name] = got
        elif not isinstance(got, Counter):
            raise ValueError(
                f"metric {name!r} already registered as {got.kind}")
        return got

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Fetch-or-create the named gauge."""
        got = self._metrics.get(name)
        if got is None:
            got = Gauge(name, help=help)
            self._metrics[name] = got
        elif not isinstance(got, Gauge):
            raise ValueError(
                f"metric {name!r} already registered as {got.kind}")
        return got

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  help: str = "") -> Histogram:
        """Fetch-or-create the named histogram (fixed boundaries)."""
        got = self._metrics.get(name)
        if got is None:
            got = Histogram(name, buckets=buckets, help=help)
            self._metrics[name] = got
        elif not isinstance(got, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {got.kind}")
        elif buckets is not None and tuple(buckets) != got.buckets:
            raise ValueError(
                f"histogram {name!r} re-registered with different "
                f"boundaries: {tuple(buckets)} vs {got.buckets}")
        return got

    def get(self, name: str) -> Metric | None:
        """The named metric, or None."""
        return self._metrics.get(name)

    def collect(self) -> list[Metric]:
        """Every registered metric, sorted by name (deterministic)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        """Drop every metric (a fresh namespace for a new run)."""
        self._metrics.clear()
