"""Causal spans: a run reconstructed as a tree, layered on the Tracer.

The flat :class:`~repro.simcore.trace.Tracer` answers "what happened
when"; spans answer "what caused what".  Every span has a monotonically
assigned id and an optional parent id, giving the canonical hierarchy

    application  >  schedule-round
                 >  task-execution  >  message-delivery

so one submission can be replayed as a tree (the Gantt rows of the
Application Performance view are exactly the task-execution layer).

The tracker *layers on* the existing tracer rather than replacing it:
when a tracer is attached and enabled, every begin/end also lands in the
flat trace as ``span:<category>`` records, so existing consumers (the
visualization services, the post-mortem archive) see span activity
without learning a new API.

Determinism: span ids come from a per-tracker counter (never ``id()``),
cross-component parent lookups go through explicit ``bind`` keys, and
:meth:`SpanTracker.finished`/:meth:`SpanTracker.tree` iterate in id
order — byte-identical exports for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.simcore.trace import Tracer

#: the canonical span hierarchy, outermost first; "failover" spans sit
#: outside the application tree (they time a control-plane promotion,
#: suspicion -> promoted, see repro.recovery)
SPAN_CATEGORIES = ("application", "schedule-round", "task-execution",
                   "message-delivery", "failover", "membership")

_CATEGORY_SET = frozenset(SPAN_CATEGORIES)


@dataclass
class Span:
    """One timed, causally linked interval of simulated time."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    actor: str
    start_s: float
    end_s: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    def duration_s(self, clock_end: float | None = None) -> float:
        """Span duration; open spans run to *clock_end* (or zero)."""
        end = self.end_s if self.end_s is not None else clock_end
        if end is None:
            return 0.0
        return end - self.start_s

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict (stable field set, no object identities)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "actor": self.actor,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "attrs": dict(self.attrs),
        }


class SpanTracker:
    """Create, finish and cross-reference spans for one observed run."""

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer
        self.spans: list[Span] = []
        self._by_id: dict[int, Span] = {}
        self._bindings: dict[tuple[Any, ...], int] = {}
        self._next_id = 1

    # -- lifecycle ---------------------------------------------------------
    def begin(self, name: str, category: str, actor: str, start_s: float,
              parent_id: int | None = None, **attrs: Any) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        if category not in _CATEGORY_SET:
            raise ValueError(f"unknown span category {category!r}; "
                             f"expected one of {SPAN_CATEGORIES}")
        if parent_id is not None and parent_id not in self._by_id:
            raise KeyError(f"parent span {parent_id} does not exist")
        span = Span(span_id=self._next_id, parent_id=parent_id, name=name,
                    category=category, actor=actor, start_s=start_s,
                    attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(start_s, f"span:{category}", actor,
                          phase="begin", span=span.span_id,
                          parent=parent_id, name=name)
        return span.span_id

    def end(self, span_id: int, end_s: float, **attrs: Any) -> Span:
        """Close an open span, merging *attrs* into it."""
        span = self._by_id[span_id]
        if span.end_s is not None:
            raise ValueError(f"span {span_id} ({span.name!r}) already ended")
        if end_s < span.start_s:
            raise ValueError(
                f"span {span_id} would end before it started "
                f"({end_s} < {span.start_s})")
        span.end_s = end_s
        span.attrs.update(attrs)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.record(end_s, f"span:{span.category}", span.actor,
                          phase="end", span=span.span_id,
                          parent=span.parent_id, name=span.name)
        return span

    def complete(self, name: str, category: str, actor: str, start_s: float,
                 end_s: float, parent_id: int | None = None,
                 **attrs: Any) -> int:
        """Record an already-finished span in one call.

        The message-delivery layer uses this: the simulation knows a
        message's arrival time at send time, so the whole span exists
        the moment the send happens.
        """
        span_id = self.begin(name, category, actor, start_s,
                             parent_id=parent_id, **attrs)
        self.end(span_id, end_s)
        return span_id

    # -- cross-component parent plumbing -----------------------------------
    def bind(self, key: tuple[Any, ...], span_id: int) -> None:
        """Register *span_id* under a shared key (e.g. ``("app", exec_id)``).

        Components that cannot see each other's span ids agree on keys
        instead: the facade binds the application span under the
        execution id, the Application Controller binds each task span
        under ``("task", exec_id, node_id)``, and downstream layers
        :meth:`lookup` their parent.  Re-binding a key overwrites it
        (a rescheduled task's new span becomes the parent of its
        deliveries).
        """
        self._bindings[key] = span_id

    def lookup(self, key: tuple[Any, ...]) -> int | None:
        """The span id bound under *key*, or None."""
        return self._bindings.get(key)

    def get(self, span_id: int) -> Span:
        """Fetch a span by id."""
        return self._by_id[span_id]

    # -- queries ------------------------------------------------------------
    def finished(self, category: str | None = None) -> list[Span]:
        """Finished spans in id order, optionally filtered by category."""
        return [s for s in self.spans if s.end_s is not None
                and (category is None or s.category == category)]

    def open_spans(self) -> list[Span]:
        """Spans begun but never ended (e.g. a timed-out application)."""
        return [s for s in self.spans if s.end_s is None]

    def by_category(self, category: str) -> list[Span]:
        """Every span of one category, in id order."""
        return [s for s in self.spans if s.category == category]

    def children(self, span_id: int | None) -> list[Span]:
        """Direct children of a span (or the roots, for ``None``)."""
        return [s for s in self.spans if s.parent_id == span_id]

    def tree(self) -> dict[int | None, list[int]]:
        """parent id (None for roots) -> child span ids, in id order."""
        out: dict[int | None, list[int]] = {}
        for span in self.spans:
            out.setdefault(span.parent_id, []).append(span.span_id)
        return out

    def __len__(self) -> int:
        return len(self.spans)

    def clear(self) -> None:
        """Drop every span and binding (a fresh run)."""
        self.spans.clear()
        self._by_id.clear()
        self._bindings.clear()
        self._next_id = 1
