"""Exporters: Chrome trace_event JSON, Prometheus text, JSONL.

Three formats, three audiences:

* :func:`chrome_trace_json` — a Chrome ``trace_event`` timeline that
  loads directly in ``chrome://tracing`` / Perfetto.  Spans become
  complete ("X") events; pid/tid rows are sites and actors.
* :func:`to_prometheus_text` — the registry in the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples), the lingua
  franca for scraping and diffing metric dumps.
* :func:`spans_to_jsonl` / :func:`trace_to_jsonl` — one JSON object per
  line, for ad-hoc ``jq``-style analysis and for round-tripping a run
  back into a fresh :class:`~repro.simcore.trace.Tracer`
  (:func:`tracer_from_jsonl`) so the viz views can be fed offline.

Every exporter sorts its output and serialises with
``sort_keys=True`` + fixed separators, so a fixed-seed run exports
byte-identically — the chaos suite asserts exactly that.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import Span
from repro.simcore.trace import Tracer

_JSON_SEPARATORS = (",", ":")


def _dumps(obj: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-stable."""
    return json.dumps(obj, sort_keys=True, separators=_JSON_SEPARATORS)


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def to_chrome_trace(spans: Iterable[Span],
                    clock_end: float | None = None) -> dict[str, Any]:
    """Spans as a Chrome ``trace_event`` object (``traceEvents`` list).

    Mapping: each actor gets a tid (rows in the timeline), assigned in
    sorted-actor-name order so the layout is deterministic; all events
    share pid 1 (one simulated federation).  Finished spans become
    complete ("X") events with microsecond ``ts``/``dur``; open spans
    are extended to *clock_end* (or rendered zero-length) and tagged
    ``"open": true`` in args.  Span/parent ids ride along in ``args``
    so the causal tree survives the format.
    """
    span_list = list(spans)
    actors = sorted({s.actor for s in span_list})
    tids = {actor: i + 1 for i, actor in enumerate(actors)}

    events: list[dict[str, Any]] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "vdce"}},
    ]
    for actor in actors:
        events.append({"ph": "M", "pid": 1, "tid": tids[actor],
                       "name": "thread_name", "args": {"name": actor}})

    for span in span_list:
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        if span.end_s is None:
            args["open"] = True
        dur_s = span.duration_s(clock_end)
        if dur_s < 0:
            dur_s = 0.0
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": tids[span.actor],
            "name": span.name,
            "cat": span.category,
            "ts": round(span.start_s * 1e6, 3),
            "dur": round(dur_s * 1e6, 3),
            "args": args,
        })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span],
                      clock_end: float | None = None) -> str:
    """:func:`to_chrome_trace` serialised canonically (byte-stable)."""
    return _dumps(to_chrome_trace(spans, clock_end=clock_end))


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _format_value(value: float) -> str:
    """Render counts as integers, everything else via repr (lossless)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)

def _label_str(pairs: Iterable[tuple[str, str]]) -> str:
    parts = [f'{k}="{v}"' for k, v in pairs]
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Histograms expand to cumulative ``_bucket{le=...}`` samples plus
    ``_sum`` and ``_count``, exactly as a Prometheus client would
    expose them; counters/gauges are plain samples.  Metrics sort by
    name and series by label key, so the dump is byte-stable.
    """
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, series in metric.samples():
                cumulative = 0
                for bound, n in zip(metric.buckets, series.bucket_counts):
                    cumulative += n
                    labels = _label_str(list(key) + [("le", repr(bound))])
                    lines.append(
                        f"{metric.name}_bucket{labels} {cumulative}")
                cumulative += series.bucket_counts[-1]
                labels = _label_str(list(key) + [("le", "+Inf")])
                lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                base = _label_str(key)
                lines.append(
                    f"{metric.name}_sum{base} {_format_value(series.sum)}")
                lines.append(f"{metric.name}_count{base} {series.count}")
        else:
            for key, value in metric.samples():
                lines.append(
                    f"{metric.name}{_label_str(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One span per line (id order), canonical JSON."""
    return "".join(_dumps(span.to_dict()) + "\n" for span in spans)


def trace_to_jsonl(tracer: Tracer) -> str:
    """One flat TraceRecord per line, in record order."""
    out: list[str] = []
    for rec in tracer.records:
        out.append(_dumps({
            "time": rec.time,
            "category": rec.category,
            "actor": rec.actor,
            "detail": dict(rec.detail),
        }) + "\n")
    return "".join(out)


def tracer_from_jsonl(text: str) -> Tracer:
    """Rebuild a Tracer from :func:`trace_to_jsonl` output.

    The round-trip exists so exported traces can feed the viz views
    (WorkloadView etc.) offline, without re-running the simulation.
    """
    tracer = Tracer(enabled=True)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        tracer.record(obj["time"], obj["category"], obj["actor"],
                      **obj["detail"])
    return tracer
