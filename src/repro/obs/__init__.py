"""``repro.obs`` — sim-time observability: metrics, causal spans, exporters.

One :class:`Observability` handle threads through the whole federation
(facade → daemons → network) and carries the two stores:

* ``obs.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/histograms keyed on sorted label tuples;
* ``obs.spans`` — a :class:`~repro.obs.spans.SpanTracker` holding the
  application → schedule-round → task-execution → message-delivery
  causal tree.

The handle defaults to **disabled**, and every instrumented call site
guards with ``if obs.enabled:`` (the same idiom as tracer calls,
enforced by reprolint PERF001 on hot-path modules) — so the PR 2 fast
paths pay one attribute load when observability is off.  Components
that are built before an Observability exists fall back to the shared
:data:`OBS_OFF` singleton, which is safe to share precisely because
nothing ever records through a disabled handle.

Exports (:mod:`repro.obs.export`): Chrome ``trace_event`` JSON,
Prometheus text, JSONL — all byte-identical across runs of a fixed
seed.  :mod:`repro.obs.report` renders the ``repro obs`` CLI summary.
"""

from __future__ import annotations

from repro.obs.export import (
    chrome_trace_json,
    spans_to_jsonl,
    to_chrome_trace,
    to_prometheus_text,
    trace_to_jsonl,
    tracer_from_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import render_report, sample_queue_depths, utilization
from repro.obs.spans import SPAN_CATEGORIES, Span, SpanTracker
from repro.simcore.trace import Tracer


class Observability:
    """The single handle instrumented components record through.

    ``enabled`` is the one flag every guard checks; when False the
    handle is inert and may be shared across federations
    (:data:`OBS_OFF`).  ``current_parent`` is a scratch slot the data
    manager sets *synchronously* around a ``network.send`` so the
    resulting message-delivery span parents under the producing task —
    the simulation is single-threaded and the set/reset brackets contain
    no yields, so the hand-off is deterministic.
    """

    __slots__ = ("enabled", "metrics", "spans", "current_parent")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.spans = SpanTracker()
        self.current_parent: int | None = None

    def attach_tracer(self, tracer: Tracer) -> None:
        """Layer span begin/end records onto an existing flat tracer."""
        self.spans.tracer = tracer

    def reset(self) -> None:
        """Drop all recorded state (fresh run, same instruments wiring)."""
        self.metrics.clear()
        self.spans.clear()
        self.current_parent = None

    def __repr__(self) -> str:
        # address-free: OBS_OFF appears as a signature default in the
        # generated API reference, which must be byte-stable across runs
        return f"Observability(enabled={self.enabled})"


#: Shared inert handle for components constructed without observability.
#: Never record through it — every call site guards on ``enabled``.
OBS_OFF = Observability(enabled=False)

__all__ = [
    "Observability",
    "OBS_OFF",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "Span",
    "SpanTracker",
    "SPAN_CATEGORIES",
    "to_chrome_trace",
    "chrome_trace_json",
    "to_prometheus_text",
    "spans_to_jsonl",
    "trace_to_jsonl",
    "tracer_from_jsonl",
    "render_report",
    "sample_queue_depths",
    "utilization",
]
