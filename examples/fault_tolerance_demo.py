"""Fault tolerance: a host crashes mid-execution and VDCE recovers.

Demonstrates the paper's Resource Controller fault path end to end:
Monitor daemons stop answering echo packets -> the Group Manager marks
the host "down" and informs the Site Manager -> the repository excludes
the host -> the facade reroutes the lost tasks, and the application still
completes (section 2.3.1).

Also demonstrates overload-triggered dynamic rescheduling: a load spike
above the QoS threshold makes the Application Controller terminate the
running task and request a new placement.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.faults import FaultPlan, HostCrash
from repro.resources.loads import SpikeLoad
from repro.scheduling.rescheduling import ReschedulePolicy
from repro.workloads import linear_solver_graph, nynet_testbed


def crash_demo(n: int = 150) -> None:
    print("=== host-crash recovery ===")
    vdce = nynet_testbed(seed=21, hosts_per_site=3, with_loads=False,
                         reschedule_policy=ReschedulePolicy(
                             load_threshold=3.0))
    vdce.start()
    graph = linear_solver_graph(vdce.registry, n=n)
    process, run = vdce.submit(graph, "syracuse", k_remote_sites=1)
    while run.table is None:
        vdce.env.run(until=vdce.now + 1.0)
    victim = run.table.get("lu").host
    print(f"LU scheduled on {victim}; crashing it now...")
    injector = vdce.apply_fault_plan(FaultPlan(events=(
        HostCrash(host=victim, at=vdce.now + 0.05),
    )))
    while not process.triggered and vdce.now < 3600:
        vdce.env.run(until=vdce.now + 5.0)
    print(f"status      : {run.status}")
    print(f"reschedules : {run.reschedules}")
    print(f"LU ended on : {run.table.get('lu').host} "
          f"(victim was {victim})")
    print(f"fault log   : {injector.counts()}")
    detections = [r for r in vdce.tracer.query(category="gm:host-down")]
    print(f"failure detected by group manager at t={detections[0].time:.1f}s"
          if detections else "failure not detected?!")


def overload_demo(n: int = 150) -> None:
    print("\n=== overload-triggered rescheduling ===")
    vdce = nynet_testbed(seed=22, hosts_per_site=3, with_loads=False,
                         reschedule_policy=ReschedulePolicy(
                             load_threshold=3.0))
    vdce.start()
    graph = linear_solver_graph(vdce.registry, n=n)
    process, run = vdce.submit(graph, "syracuse", k_remote_sites=1)
    while run.table is None:
        vdce.env.run(until=vdce.now + 1.0)
    busy = vdce.world.host(run.table.get("lu").host)
    print(f"LU scheduled on {busy.address}; spiking its load to 50...")
    SpikeLoad(vdce.env, busy, spikes=[(vdce.now + 0.05, 600.0, 50.0)])
    while not process.triggered and vdce.now < 3600:
        vdce.env.run(until=vdce.now + 5.0)
    terminations = vdce.tracer.count("task-terminated")
    print(f"status            : {run.status}")
    print(f"terminated tasks  : {terminations}")
    print(f"reschedules       : {run.reschedules}")
    print(f"residual ||Ax-b|| : {run.results()['verify']['norm']:.2e}")


if __name__ == "__main__":
    crash_demo()
    overload_demo()
