"""Observability walkthrough: metrics, causal spans, and exporters.

Runs a layered random DAG under the queue-aware (earliest-finish-time)
scheduler — which spreads tasks across hosts and sites, so inter-task
data actually crosses the network — with the ``repro.obs`` subsystem
enabled, then:

* prints the utilization / schedule-latency / queue-depth report;
* reconstructs the causal span tree (application -> schedule-round /
  task-execution -> message-delivery) and prints it;
* exports a Chrome ``trace_event`` JSON (loadable in Perfetto or
  chrome://tracing) plus Prometheus text and span JSONL dumps;
* demonstrates the determinism contract: a second identical-seed run
  produces byte-identical exports.

Run:  python examples/observability_demo.py
"""

import json
import tempfile
from pathlib import Path

from repro.obs import Observability
from repro.obs.export import (
    chrome_trace_json,
    spans_to_jsonl,
    to_prometheus_text,
)
from repro.obs.report import render_report, sample_queue_depths
from repro.workloads import quiet_testbed, random_layered_graph

SEED = 11


def run_once() -> tuple[Observability, str, str]:
    """One instrumented run; returns (obs, chrome_json, prometheus_text)."""
    obs = Observability()
    vdce = quiet_testbed(seed=SEED, obs=obs)
    vdce.start()
    graph = random_layered_graph(vdce.registry, layers=5, width=4, seed=3)
    process, run = vdce.submit(graph, "syracuse", queue_aware=True)
    deadline = vdce.now + 600.0
    while not process.triggered and vdce.now < deadline:
        vdce.run(until=min(vdce.now + 5.0, deadline))
        sample_queue_depths(obs, vdce)
    assert run.status == "completed", run.status
    chrome = chrome_trace_json(obs.spans.spans, clock_end=vdce.now)
    prom = to_prometheus_text(obs.metrics)
    return obs, chrome, prom


def print_tree(obs: Observability) -> None:
    edges = obs.spans.tree()

    def walk(span, depth):
        dur = span.duration_s()
        print(f"  {'  ' * depth}{span.category:<18} {span.name:<22} "
              f"actor={span.actor:<16} {dur:8.3f}s")
        for child_id in edges.get(span.span_id, []):
            walk(obs.spans.get(child_id), depth + 1)

    for root_id in edges.get(None, []):
        walk(obs.spans.get(root_id), 0)


def main() -> None:
    obs, chrome, prom = run_once()

    print(render_report(obs, clock_end=None), end="")

    print()
    print("-- causal span tree --")
    print_tree(obs)

    out = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    (out / "trace.json").write_text(chrome)
    (out / "metrics.prom").write_text(prom)
    (out / "spans.jsonl").write_text(spans_to_jsonl(obs.spans.spans))
    doc = json.loads(chrome)
    print()
    print(f"Chrome trace   : {out / 'trace.json'} "
          f"({len(doc['traceEvents'])} events; open in Perfetto)")
    print(f"Prometheus text: {out / 'metrics.prom'}")
    print(f"Span JSONL     : {out / 'spans.jsonl'}")

    # determinism contract: identical seed => byte-identical exports
    _, chrome2, prom2 = run_once()
    assert chrome2 == chrome, "Chrome trace not byte-stable across runs"
    assert prom2 == prom, "Prometheus dump not byte-stable across runs"
    print("\nDeterminism check: second seed-{} run reproduced both exports "
          "byte-for-byte.".format(SEED))


if __name__ == "__main__":
    main()
