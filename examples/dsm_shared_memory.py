"""The DSM extension: shared-memory programming over the VDCE WAN.

The paper's future work: "a distributed shared memory model that will
allow VDCE users to describe their applications using shared-memory
paradigm."  This example runs an iterative shared-state computation
(Jacobi-style averaging over a partitioned vector) on the DSM model and
reports the coherence traffic the paradigm costs on a WAN: remote read
misses, invalidations, and the hit rate that caching buys.

Run:  python examples/dsm_shared_memory.py
"""

import numpy as np

from repro.net import ATM_OC3, Topology
from repro.runtime.data.dsm import SharedMemory
from repro.simcore import Environment


def main() -> None:
    env = Environment()
    topo = Topology()
    sites = ["syracuse", "rome", "buffalo"]
    for s in sites:
        topo.add_site(s)
    topo.connect("syracuse", "rome", ATM_OC3)
    topo.connect("rome", "buffalo", ATM_OC3)
    mem = SharedMemory(env, topo, home_site="syracuse",
                       value_size_bytes=8 * 1024)

    n_chunks = len(sites)
    iterations = 8
    rng = np.random.default_rng(7)
    initial = [rng.standard_normal(1024) for _ in range(n_chunks)]

    # initialise every chunk before any worker starts (a barrier a real
    # DSM program would implement with a flag variable)
    def setup(env):
        for i, site in enumerate(sites):
            yield from mem.write(site, f"chunk-{i}", initial[i])

    env.run(until=env.process(setup(env)))

    def worker(env, site: str, idx: int):
        """Each site owns one chunk; every iteration it averages its
        chunk with its neighbours' (read remote, write own)."""
        for _ in range(iterations):
            left = yield from mem.read(site, f"chunk-{(idx - 1) % n_chunks}")
            right = yield from mem.read(site, f"chunk-{(idx + 1) % n_chunks}")
            mine = yield from mem.read(site, f"chunk-{idx}")
            updated = (left + right + 2 * mine) / 4.0
            yield from mem.write(site, f"chunk-{idx}", updated)

    procs = [env.process(worker(env, site, i))
             for i, site in enumerate(sites)]
    for p in procs:
        env.run(until=p)

    print(f"Jacobi relaxation over DSM: {n_chunks} sites x "
          f"{iterations} iterations, 8 KB chunks")
    print(f"  simulated time      : {env.now:.3f} s")
    print(f"  reads               : {mem.stats.reads} "
          f"(hits {mem.stats.read_hits}, misses {mem.stats.read_misses})")
    print(f"  cache hit rate      : {mem.hit_rate():.0%}")
    print(f"  writes              : {mem.stats.writes}")
    print(f"  invalidations       : {mem.stats.invalidations_sent}")
    total = np.concatenate([mem.peek(f"chunk-{i}") for i in range(n_chunks)])
    print(f"  converged variance  : {total.var():.4f} "
          f"(started at ~1.0 — relaxation smooths)")

    # The point of the experiment: caching absorbs re-reads within an
    # iteration, but every write invalidates the neighbours' copies, so
    # coherence traffic (misses + invalidations) recurs every round and
    # each miss costs a WAN round trip — the cost profile that made VDCE
    # ship the dataflow model first and leave DSM as future work.
    assert mem.stats.invalidations_sent > 0
    assert mem.stats.read_misses >= n_chunks  # cold misses at minimum
    assert total.var() < 1.0


if __name__ == "__main__":
    main()
