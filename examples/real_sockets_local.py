"""Real execution: threads + loopback TCP sockets, no simulation.

The paper's Data Manager is "a socket-based, point-to-point communication
system"; on thread-based systems it runs "send thread, receive thread,
and compute thread" per task.  This example executes the Linear Equation
Solver with exactly that organisation on the local machine: every task is
its own 'machine' with a listening endpoint, channels are set up with the
Figure 7 handshake (setup frame -> acknowledgment), and matrices really
cross TCP — framed in a selectable message-passing dialect (the paper's
P4 / PVM / MPI / NCS support).

Run:  python examples/real_sockets_local.py
"""

import time

from repro.runtime.local import run_local
from repro.tasklib import standard_registry
from repro.workloads import c3i_scenario_graph, linear_solver_graph


def main() -> None:
    registry = standard_registry()

    print("Linear Equation Solver over real TCP channels, per dialect:")
    for dialect in ("vdce", "p4", "pvm", "mpi", "ncs"):
        graph = linear_solver_graph(registry, n=80)
        t0 = time.perf_counter()
        result = run_local(graph, dialect=dialect, timeout_s=60.0)
        elapsed = time.perf_counter() - t0
        assert result.ok, result.errors
        residual = result.outputs["verify"]["norm"]
        print(f"  dialect {dialect:>4}: ||Ax-b|| = {residual:.2e}  "
              f"({elapsed * 1000:6.1f} ms wall-clock, "
              f"{len(result.task_order)} tasks)")

    print("\nC3I pipeline over real sockets (MPI dialect):")
    graph = c3i_scenario_graph(registry, targets=30, steps=15)
    result = run_local(graph, dialect="mpi", timeout_s=60.0)
    assert result.ok, result.errors
    plan = result.outputs["plan"]["plan"]
    print(f"  engagement plan for {plan.shape[0]} threats; "
          f"first assignment: track {int(plan[0, 0])} -> "
          f"battery {int(plan[0, 1])}")
    print(f"  task completion order: {' -> '.join(result.task_order)}")


if __name__ == "__main__":
    main()
