"""The programmatic experiment API.

Everything the benchmark suite measures is callable as a library:
``repro.experiments`` exposes drivers returning structured results, so a
downstream user can sweep their own parameters (different testbeds,
different workloads) without touching pytest.

Run:  python examples/experiment_api.py
"""

from repro.experiments import (
    failure_detection_sweep,
    monitoring_comparison,
    scheduler_comparison,
)
from repro.workloads.applications import fork_join_graph


def main() -> None:
    # 1. The monitoring filter trade-off (paper Figure 6).
    monitoring = monitoring_comparison(duration_s=60.0)
    print(monitoring.render())
    ci = next(r for r in monitoring.rows if r["policy"] == "ci")
    print(f"-> the paper's CI filter cut update traffic "
          f"{ci['traffic_reduction']:.1f}x\n")

    # 2. Failure detection latency vs echo period (also Figure 6).
    detection = failure_detection_sweep(periods=(2.0, 6.0), seeds=(1, 2))
    print(detection.render())
    print()

    # 3. A custom scheduler comparison on the caller's own workload.
    my_families = {
        "my-wide-app": lambda reg: fork_join_graph(reg, width=6,
                                                   size=4096),
    }
    comparison = scheduler_comparison(seeds=(1, 2), families=my_families)
    print(comparison.render(order=["family", "vdce", "vdce-queue-aware",
                                   "heft", "min-load", "random"]))
    row = comparison.rows[0]
    print(f"-> on this wide graph the queue-aware walk is "
          f"{row['vdce'] / row['vdce-queue-aware']:.2f}x faster than the "
          f"published walk, matching HEFT "
          f"({row['heft']:.2f}s vs {row['vdce-queue-aware']:.2f}s)")


if __name__ == "__main__":
    main()
