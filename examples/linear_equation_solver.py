"""The paper's Figure 3 case study: the Linear Equation Solver.

Builds the exact application flow graph of Figure 3 with the Application
Editor's modal workflow — LU decomposition feeding two matrix inversions,
a matrix multiplication combining the inverses into A^-1, and a
matrix-vector multiply producing x — then sets the figure's property
panel (parallel LU on two nodes) and compares sequential vs parallel
execution with the Comparative Visualization service.

Run:  python examples/linear_equation_solver.py
"""

from repro import TaskProperties
from repro.viz import ApplicationPerformanceView, ComparativeView
from repro.workloads import nynet_testbed


def build_with_editor(vdce, n: int, parallel: bool):
    """Drive the editor exactly as the paper's user would."""
    editor = vdce.open_editor("vdce", "vdce", "linear-equation-solver")
    # -- task mode: drag icons from the matrix-operations menu ---------
    editor.add_task("matrix-generate", "gen-A", position=(50, 50))
    editor.add_task("vector-generate", "gen-b", position=(350, 50))
    editor.add_task("lu-decomposition", "lu", position=(50, 150))
    editor.add_task("matrix-inverse", "invert-L", position=(0, 250))
    editor.add_task("matrix-inverse", "invert-U", position=(120, 250))
    editor.add_task("matrix-multiply", "combine", position=(60, 350))
    editor.add_task("matrix-vector-multiply", "solve", position=(200, 450))
    editor.add_task("residual-norm", "verify", position=(200, 550))
    # -- the double-click popup panels ----------------------------------
    editor.set_properties("gen-A", TaskProperties(
        input_size=n, params={"n": n, "seed": 7, "kind": "diag-dominant"}))
    editor.set_properties("gen-b", TaskProperties(
        input_size=n, params={"n": n, "seed": 8}))
    lu_props = TaskProperties(
        computation_mode="parallel" if parallel else "sequential",
        processors=2 if parallel else 1,
        machine_type="sparc" if parallel else None,  # the figure's panel
        input_size=float(n))
    editor.set_properties("lu", lu_props)
    for nid in ("invert-L", "invert-U", "combine", "solve", "verify"):
        editor.set_properties(nid, TaskProperties(input_size=float(n)))
    # -- link mode ---------------------------------------------------------
    editor.set_mode("link")
    editor.connect("gen-A", "matrix", "lu", "matrix")
    editor.connect("lu", "lower", "invert-L", "matrix")
    editor.connect("lu", "upper", "invert-U", "matrix")
    editor.connect("invert-U", "inverse", "combine", "a")
    editor.connect("invert-L", "inverse", "combine", "b")
    editor.connect("combine", "product", "solve", "matrix")
    editor.connect("gen-b", "vector", "solve", "vector")
    editor.connect("gen-A", "matrix", "verify", "matrix")
    editor.connect("solve", "product", "verify", "solution")
    editor.connect("gen-b", "vector", "verify", "rhs")
    # -- run mode -------------------------------------------------------------
    editor.set_mode("run")
    return editor.submit()


def main() -> None:
    n = 150
    comparison = ComparativeView()
    for label, parallel in (("sequential-LU", False), ("parallel-LU", True)):
        vdce = nynet_testbed(seed=7, hosts_per_site=4, with_loads=False)
        vdce.start()
        graph = build_with_editor(vdce, n, parallel)
        run = vdce.run_application(graph, local_site="syracuse",
                                   k_remote_sites=1, max_sim_time_s=3600)
        residual = run.results()["verify"]["norm"]
        lu_entry = run.table.get("lu")
        print(f"[{label}] status={run.status}  makespan={run.makespan:.2f}s  "
              f"LU on {lu_entry.hosts} ({lu_entry.processors} node(s))  "
              f"||Ax-b|| = {residual:.2e}")
        comparison.add(label, run)
        if parallel:
            print()
            print(ApplicationPerformanceView(run).render())
    print()
    print(comparison.render())
    print(f"\nBest configuration: {comparison.best()}")


if __name__ == "__main__":
    main()
