"""A C3I surveillance pipeline over a loaded wide-area VDCE.

The paper's motivating domain (Rome Laboratory command-and-control): two
radar sensors feed track filters, the tracks are fused, threats ranked,
and an engagement plan produced.  The testbed hosts carry realistic
background time-sharing load, so the Application Scheduler's
load-forecasting actually matters; the workload visualization shows the
repository's view of the environment.

Run:  python examples/c3i_surveillance.py
"""

import numpy as np

from repro.viz import ApplicationPerformanceView, WorkloadView
from repro.workloads import c3i_scenario_graph, nynet_testbed


def main() -> None:
    vdce = nynet_testbed(seed=3, hosts_per_site=4, with_loads=True)
    vdce.start()
    # let monitors populate the repositories with real measurements
    vdce.warm_up(30.0)

    print(WorkloadView(vdce.tracer).render())
    print()

    graph = c3i_scenario_graph(vdce.registry, targets=60, steps=25)
    run = vdce.run_application(graph, local_site="rome", k_remote_sites=1,
                               max_sim_time_s=3600)
    print(f"status   : {run.status}")
    print(f"makespan : {run.makespan:.2f}s "
          f"across sites {sorted(run.table.sites())}")
    print()
    print(ApplicationPerformanceView(run).render())

    plan = run.results()["plan"]["plan"]
    print("\nEngagement plan (track id -> battery, threat score):")
    for track_id, battery, score in plan:
        print(f"  track {int(track_id):3d} -> battery {int(battery)}  "
              f"(score {score:8.2f})")
    assert plan.shape[0] >= 1
    scores = plan[:, 2]
    assert (np.diff(scores) <= 1e-9).all(), "plan must be ranked"


if __name__ == "__main__":
    main()
