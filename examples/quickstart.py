"""Quickstart: build a two-site VDCE, compose an application in the
Application Editor, run it, and read the results.

Run:  python examples/quickstart.py
"""

from repro import VDCE, ATM_OC3, HostSpec
from repro.viz import ApplicationPerformanceView


def main() -> None:
    # 1. Describe the virtual environment: two sites on an ATM WAN link
    #    (the paper's NYNET testbed shape), three workstations each.
    vdce = VDCE(seed=42)
    vdce.add_site("syracuse")
    vdce.add_site("rome")
    vdce.connect_sites("syracuse", "rome", ATM_OC3)
    for i in range(3):
        vdce.add_host("syracuse", HostSpec(name=f"sun{i}", arch="sparc",
                                           os="solaris", cpu_factor=1.0,
                                           memory_mb=128))
        vdce.add_host("rome", HostSpec(name=f"pc{i}", arch="x86",
                                       os="linux", cpu_factor=1.4,
                                       memory_mb=64))

    # 2. Bring the runtime up: repositories, monitors, group managers,
    #    site managers, data managers — plus calibration trial runs.
    vdce.start()

    # 3. Log in and build an application with the (programmatic)
    #    Application Editor: signal -> FFT -> power spectrum -> peaks.
    editor = vdce.open_editor("vdce", "vdce", "spectral-quickstart")
    print("Task library menu:")
    for library, tasks in editor.menu().items():
        print(f"  {library}: {', '.join(tasks[:4])}, ...")

    editor.add_task("signal-generate", "sig")
    editor.add_task("fft-1d", "fft")
    editor.add_task("power-spectrum", "power")
    editor.add_task("peak-detect", "peaks")
    from repro import TaskProperties
    editor.set_properties("sig", TaskProperties(
        input_size=2048,
        params={"n": 2048, "tones": [(60.0, 1.0), (250.0, 0.7)],
                "sample_rate": 1000.0}))
    editor.set_properties("peaks", TaskProperties(
        input_size=2048, params={"count": 2, "sample_rate": 1000.0}))

    editor.set_mode("link")
    editor.connect("sig", "signal", "fft", "signal")
    editor.connect("fft", "spectrum", "power", "spectrum")
    editor.connect("power", "power", "peaks", "power")

    editor.set_mode("run")
    graph = editor.submit()

    # 4. Run it: schedule over both sites, execute, collect results.
    run = vdce.run_application(graph, local_site="syracuse",
                               k_remote_sites=1)
    print(f"\nstatus      : {run.status}")
    print(f"makespan    : {run.makespan:.3f} simulated seconds")
    print(f"scheduling  : {run.scheduling_time * 1000:.1f} ms")
    print(f"placement   : "
          f"{ {n: e.host for n, e in run.table.entries.items()} }")
    peaks = run.results()["peaks"]["peaks"]
    print(f"found tones : {sorted(round(p) for p in peaks)} Hz "
          f"(generated 60 Hz and 250 Hz)")

    # 5. The application-performance visualization service.
    print()
    print(ApplicationPerformanceView(run).render())


if __name__ == "__main__":
    main()
