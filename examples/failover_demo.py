"""Self-healing control plane: a site *server* crashes and a standby heals it.

The paper's Site Manager is a single point of failure per site — it owns
the repository, the allocation-table distribution, the start signal and
completion recording.  This demo arms `repro.recovery` (docs/recovery.md)
on the submitting site, kills the server machine mid-execution, and shows
the lowest-address live standby promote, replay the shipped write-ahead
log, re-push allocations, and drive the application to completion —
exactly once (task-execution counts equal graph size).

Run:  python examples/failover_demo.py
"""

from repro.faults import FaultPlan, ServerCrash
from repro.workloads import linear_solver_graph, quiet_testbed


def failover_demo(n: int = 200) -> None:
    print("=== site-server failover ===")
    vdce = quiet_testbed(seed=7)
    vdce.start()
    vdce.enable_failover("syracuse", ["h1", "h2"])
    site = vdce.world.site("syracuse")
    print(f"server role on : syracuse/{site.server_role_host or 'server'}"
          f" (standbys: h1, h2)")
    injector = vdce.apply_fault_plan(FaultPlan(events=(
        ServerCrash(site="syracuse", at=12.0),
    )))
    graph = linear_solver_graph(vdce.registry, n=n)
    process, run = vdce.submit(graph, "syracuse", k_remote_sites=1)
    while not process.triggered and vdce.now < 3600:
        vdce.env.run(until=vdce.now + 5.0)
    executed = sum(ac.stats.tasks_executed
                   for ac in vdce.app_controllers.values())
    assert vdce.recovery is not None
    print(f"status         : {run.status}")
    print(f"failovers      : {vdce.recovery.failovers}")
    print(f"role now on    : syracuse/{site.server_role_host}")
    print(f"tasks executed : {executed} for {len(graph)} nodes "
          f"(exactly once: {executed == len(graph)})")
    print(f"residual       : {run.results()['verify']['norm']:.2e}")
    print(f"fault log      : {injector.counts()}")
    promoted = list(vdce.tracer.query(category="sm:start-resent"))
    if promoted:
        print(f"start signal re-sent by the promoted server at "
              f"t={promoted[0].time:.1f}s")


if __name__ == "__main__":
    failover_demo()
