"""Comparative scheduling: the VDCE Application Scheduler vs baselines.

Runs the same application suite under (a) the paper's prediction-driven
site scheduler, (b) a prediction-blind variant, (c) random placement, and
(d) reported-load-only placement, on a loaded heterogeneous testbed —
then prints the comparative visualization.  The VDCE scheduler should win
because it alone combines task-specific computing-power weights with
forecast load (paper section 2.2.1).

Run:  python examples/comparative_scheduling.py
"""

from repro.prediction import PerformancePredictor
from repro.scheduling import (
    HostSelector,
    MinLoadScheduler,
    RandomScheduler,
    SiteScheduler,
    evaluate_schedule,
)
from repro.viz import ComparativeView
from repro.workloads import linear_solver_graph, nynet_testbed


def realized_makespan(vdce, graph, table) -> float:
    """Ground-truth makespan of a schedule (durations from the execution
    model at current true loads)."""

    def duration(node_id: str) -> float:
        entry = table.get(node_id)
        node = graph.node(node_id)
        host = vdce.world.host(entry.host)
        return vdce.model.duration(node.definition,
                                   node.properties.input_size, host,
                                   processors=entry.processors)

    return evaluate_schedule(graph, table, vdce.topology,
                             duration_fn=duration).makespan


def main() -> None:
    vdce = nynet_testbed(seed=17, hosts_per_site=4, with_loads=True)
    vdce.start()
    vdce.warm_up(40.0)  # monitors populate the repositories
    graph = linear_solver_graph(vdce.registry, n=200)

    results: dict[str, float] = {}

    # (a) the paper's scheduler: full prediction, 1 remote site
    selectors = {s: HostSelector(r) for s, r in vdce.repositories.items()}
    table, _ = SiteScheduler("syracuse", vdce.topology,
                             k_remote_sites=1).schedule_with_selectors(
        graph, selectors)
    results["vdce-scheduler"] = realized_makespan(vdce, graph, table)

    # (b) prediction-blind VDCE (no weights, no load, no memory terms)
    blind = {
        s: HostSelector(r, predictor=PerformancePredictor(
            r.task_performance, use_weight=False, use_load=False,
            use_memory=False))
        for s, r in vdce.repositories.items()
    }
    table_b, _ = SiteScheduler("syracuse", vdce.topology,
                               k_remote_sites=1).schedule_with_selectors(
        graph, blind)
    results["prediction-blind"] = realized_makespan(vdce, graph, table_b)

    # (c) random and (d) reported-load-only placements
    results["random"] = realized_makespan(
        vdce, graph, RandomScheduler(vdce.repositories).schedule(graph))
    results["min-reported-load"] = realized_makespan(
        vdce, graph, MinLoadScheduler(vdce.repositories).schedule(graph))

    width = max(len(k) for k in results)
    best = min(results.values())
    print(f"Realized makespan for {graph.name!r} "
          f"(n=200, loaded heterogeneous testbed):\n")
    for name, makespan in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<{width}}  {makespan:8.2f}s   "
              f"({makespan / best:4.2f}x best)")
    assert results["vdce-scheduler"] <= min(
        results["prediction-blind"], results["random"]) * 1.05, \
        "the prediction-driven scheduler should win"
    print("\nThe prediction-driven scheduler wins, as the paper claims: "
          "it is the only one seeing task-specific weights AND forecast load.")


if __name__ == "__main__":
    main()
