"""Tests for the `tools/perf_report.py --check` regression logic.

The perf CI job gates merges on this comparison, so the comparison
itself needs tests: synthetic baseline vs. current JSON, pass and fail
paths, missing benchmarks, and tolerance arithmetic — all without
running the actual benchmarks.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.perf_report import check_regressions  # noqa: E402


def write_baseline(tmp_path: Path, benchmarks: dict) -> Path:
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 1, "benchmarks": benchmarks}))
    return path


def entry(ops_per_s: float) -> dict:
    return {"ops": 1000, "wall_s": 1000 / ops_per_s,
            "ops_per_s": ops_per_s, "repeats": 3}


def test_no_regression_passes(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0)})
    fresh = {"kernel": entry(995.0)}
    assert check_regressions(fresh, baseline, tolerance=0.30) == []


def test_improvement_never_fails(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0)})
    fresh = {"kernel": entry(5000.0)}
    assert check_regressions(fresh, baseline, tolerance=0.30) == []


def test_drop_within_tolerance_passes(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0)})
    fresh = {"kernel": entry(701.0)}  # floor at 30% is 700.0
    assert check_regressions(fresh, baseline, tolerance=0.30) == []


def test_drop_beyond_tolerance_fails(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0),
                                         "sched": entry(500.0)})
    fresh = {"kernel": entry(699.0), "sched": entry(500.0)}
    failures = check_regressions(fresh, baseline, tolerance=0.30)
    assert len(failures) == 1
    assert failures[0].startswith("kernel:")
    assert "699" in failures[0]


def test_missing_benchmark_fails(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0),
                                         "gone": entry(50.0)})
    fresh = {"kernel": entry(1000.0)}
    failures = check_regressions(fresh, baseline, tolerance=0.30)
    assert failures == ["gone: present in baseline but not run"]


def test_extra_fresh_benchmark_ignored(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0)})
    fresh = {"kernel": entry(1000.0), "brand_new": entry(1.0)}
    assert check_regressions(fresh, baseline, tolerance=0.30) == []


def test_tolerance_is_fractional_not_percent(tmp_path: Path) -> None:
    baseline = write_baseline(tmp_path, {"kernel": entry(1000.0)})
    fresh = {"kernel": entry(899.0)}
    assert check_regressions(fresh, baseline, tolerance=0.10) != []
    assert check_regressions(fresh, baseline, tolerance=0.11) == []


def test_committed_baseline_is_well_formed() -> None:
    """BENCH_perf.json (the CI gate's baseline) must parse and carry
    ops_per_s for every benchmark the checker would compare."""
    doc = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
    assert doc.get("benchmarks"), "baseline has no benchmarks"
    for name, bench in doc["benchmarks"].items():
        assert bench["ops_per_s"] > 0, name
