"""Unit tests for causal spans and the span tracker (repro.obs.spans)."""

from __future__ import annotations

import pytest

from repro.obs.spans import SPAN_CATEGORIES, SpanTracker
from repro.simcore.trace import Tracer


class TestSpanLifecycle:
    def test_begin_end_records_duration_and_attrs(self):
        st = SpanTracker()
        sid = st.begin("lu", "task-execution", "s/h1", 10.0, task="lu")
        span = st.get(sid)
        assert not span.finished
        st.end(sid, 12.5, elapsed=2.5)
        assert span.finished
        assert span.duration_s() == pytest.approx(2.5)
        assert span.attrs == {"task": "lu", "elapsed": 2.5}

    def test_ids_are_monotone_from_one(self):
        st = SpanTracker()
        ids = [st.complete(f"n{i}", "task-execution", "a", 0.0, 1.0)
               for i in range(3)]
        assert ids == [1, 2, 3]

    def test_double_end_rejected(self):
        st = SpanTracker()
        sid = st.begin("x", "application", "a", 0.0)
        st.end(sid, 1.0)
        with pytest.raises(ValueError):
            st.end(sid, 2.0)

    def test_end_before_start_rejected(self):
        st = SpanTracker()
        sid = st.begin("x", "application", "a", 5.0)
        with pytest.raises(ValueError):
            st.end(sid, 4.0)

    def test_open_span_duration_extends_to_clock_end(self):
        st = SpanTracker()
        sid = st.begin("x", "application", "a", 2.0)
        assert st.get(sid).duration_s(clock_end=9.0) == pytest.approx(7.0)
        assert st.get(sid).duration_s() == 0.0

    def test_unknown_category_rejected(self):
        st = SpanTracker()
        with pytest.raises(ValueError):
            st.begin("x", "nonsense", "a", 0.0)
        assert "task-execution" in SPAN_CATEGORIES


class TestCausalTree:
    def _small_tree(self):
        st = SpanTracker()
        app = st.begin("app", "application", "site", 0.0)
        rnd = st.complete("sched", "schedule-round", "sm", 0.0, 0.1,
                          parent_id=app)
        t1 = st.begin("t1", "task-execution", "h1", 0.2, parent_id=app)
        msg = st.complete("m", "message-delivery", "h1", 0.3, 0.4,
                          parent_id=t1)
        st.end(t1, 0.5)
        st.end(app, 0.6)
        return st, app, rnd, t1, msg

    def test_tree_reconstructs_parentage(self):
        st, app, rnd, t1, msg = self._small_tree()
        edges = st.tree()
        assert edges[None] == [app]
        assert edges[app] == [rnd, t1]
        assert edges[t1] == [msg]

    def test_children_and_by_category(self):
        st, app, rnd, t1, msg = self._small_tree()
        assert [s.span_id for s in st.children(app)] == [rnd, t1]
        assert [s.span_id for s in st.children(None)] == [app]
        assert [s.span_id for s in st.by_category("message-delivery")] \
            == [msg]

    def test_finished_and_open(self):
        st = SpanTracker()
        a = st.begin("a", "application", "x", 0.0)
        st.complete("b", "schedule-round", "x", 0.0, 1.0)
        assert [s.span_id for s in st.open_spans()] == [a]
        assert len(st.finished("schedule-round")) == 1

    def test_unknown_parent_rejected(self):
        st = SpanTracker()
        with pytest.raises(KeyError):
            st.begin("x", "application", "a", 0.0, parent_id=77)


class TestBindings:
    def test_bind_lookup_roundtrip(self):
        st = SpanTracker()
        sid = st.begin("app", "application", "s", 0.0)
        st.bind(("app", "exec-1"), sid)
        assert st.lookup(("app", "exec-1")) == sid
        assert st.lookup(("app", "exec-2")) is None

    def test_clear_resets_everything(self):
        st = SpanTracker()
        sid = st.begin("app", "application", "s", 0.0)
        st.bind(("app", "exec-1"), sid)
        st.clear()
        assert len(st) == 0
        assert st.lookup(("app", "exec-1")) is None
        assert st.begin("x", "application", "s", 0.0) == 1  # ids restart


class TestTracerLayering:
    def test_begin_end_emit_trace_records_when_enabled(self):
        tracer = Tracer(enabled=True)
        st = SpanTracker(tracer=tracer)
        sid = st.begin("lu", "task-execution", "h1", 1.0)
        st.end(sid, 2.0)
        cats = tracer.categories()
        assert cats.get("span:task-execution") == 2  # begin + end

    def test_disabled_tracer_stays_silent(self):
        tracer = Tracer(enabled=False)
        st = SpanTracker(tracer=tracer)
        sid = st.begin("lu", "task-execution", "h1", 1.0)
        st.end(sid, 2.0)
        assert tracer.count() == 0
        assert len(st) == 1  # spans still recorded
