"""Tests for the Application Editor's modal workflow and sessions."""

import pytest

from repro.afg import (
    LINK_MODE,
    RUN_MODE,
    TASK_MODE,
    ApplicationEditor,
    EditorSession,
    TaskProperties,
)
from repro.repository import UserAccountsDB
from repro.tasklib import standard_registry
from repro.util.errors import (
    AuthenticationError,
    EditorModeError,
    GraphError,
    PortError,
)


@pytest.fixture(scope="module")
def registry():
    return standard_registry()


@pytest.fixture
def editor(registry):
    return ApplicationEditor(registry, application_name="test-app")


class TestModes:
    def test_starts_in_task_mode(self, editor):
        assert editor.mode == TASK_MODE

    def test_set_unknown_mode(self, editor):
        with pytest.raises(EditorModeError):
            editor.set_mode("paint")

    def test_connect_requires_link_mode(self, editor):
        editor.add_task("signal-generate", "s")
        editor.add_task("fft-1d", "f")
        with pytest.raises(EditorModeError):
            editor.connect("s", "signal", "f", "signal")

    def test_add_task_requires_task_mode(self, editor):
        editor.set_mode(LINK_MODE)
        with pytest.raises(EditorModeError):
            editor.add_task("fft-1d")

    def test_submit_requires_run_mode(self, editor):
        editor.add_task("signal-generate", "s")
        with pytest.raises(EditorModeError):
            editor.submit()


class TestWorkflow:
    def build_pipeline(self, editor):
        editor.add_task("signal-generate", "s")
        editor.add_task("fft-1d", "f")
        editor.add_task("power-spectrum", "p")
        editor.set_mode(LINK_MODE)
        editor.connect("s", "signal", "f", "signal")
        editor.connect("f", "spectrum", "p", "spectrum")
        editor.set_mode(RUN_MODE)
        return editor.submit()

    def test_full_workflow(self, editor):
        graph = self.build_pipeline(editor)
        assert len(graph) == 3
        assert graph.name == "test-app"

    def test_submit_validates(self, editor):
        editor.add_task("fft-1d", "f")  # unconnected input
        editor.set_mode(RUN_MODE)
        with pytest.raises(PortError):
            editor.submit()

    def test_auto_node_ids_unique(self, editor):
        a = editor.add_task("fft-1d")
        b = editor.add_task("fft-1d")
        assert a.node_id != b.node_id

    def test_move_icon(self, editor):
        editor.add_task("fft-1d", "f", position=(10.0, 20.0))
        editor.move_icon("f", (50.0, 60.0))
        assert editor.graph.node("f").position == (50.0, 60.0)

    def test_remove_task(self, editor):
        editor.add_task("fft-1d", "f")
        editor.remove_task("f")
        assert len(editor.graph) == 0

    def test_menu_lists_libraries(self, editor):
        menu = editor.menu()
        assert "matrix-operations" in menu

    def test_disconnect(self, editor):
        editor.add_task("signal-generate", "s")
        editor.add_task("fft-1d", "f")
        editor.set_mode(LINK_MODE)
        link = editor.connect("s", "signal", "f", "signal")
        editor.disconnect(link)
        assert editor.graph.links == []


class TestPropertyPanel:
    def test_set_parallel_properties(self, editor):
        editor.add_task("lu-decomposition", "lu")
        props = TaskProperties(computation_mode="parallel", processors=2,
                               machine_type="sparc")
        editor.set_properties("lu", props)
        assert editor.get_properties("lu").processors == 2

    def test_parallel_mode_rejected_for_sequential_task(self, editor):
        editor.add_task("signal-generate", "s")
        with pytest.raises(GraphError):
            editor.set_properties("s", TaskProperties(
                computation_mode="parallel", processors=2))

    def test_works_in_any_mode(self, editor):
        editor.add_task("lu-decomposition", "lu")
        editor.set_mode(LINK_MODE)
        editor.set_properties("lu", TaskProperties(input_size=42.0))
        assert editor.get_properties("lu").input_size == 42.0


class TestPersistence:
    def test_save_load_roundtrip(self, editor, tmp_path, registry):
        editor.add_task("signal-generate", "s")
        editor.add_task("fft-1d", "f")
        editor.set_mode(LINK_MODE)
        editor.connect("s", "signal", "f", "signal")
        path = tmp_path / "app.json"
        editor.save(path)

        editor2 = ApplicationEditor(registry)
        graph = editor2.load(path)
        assert set(graph.nodes) == {"s", "f"}
        assert len(graph.links) == 1

    def test_half_finished_graph_can_be_saved(self, editor, tmp_path):
        editor.add_task("fft-1d", "f")  # input not connected
        editor.save(tmp_path / "draft.json")  # must not raise


class TestEditorSession:
    def test_login_then_open(self, registry):
        accounts = UserAccountsDB()
        accounts.add_user("haluk", "pw")
        session = EditorSession(accounts, registry)
        session.login("haluk", "pw")
        editor = session.open_editor("my-app")
        assert editor.graph.name == "my-app"

    def test_open_without_login_rejected(self, registry):
        session = EditorSession(UserAccountsDB(), registry)
        with pytest.raises(EditorModeError):
            session.open_editor()

    def test_bad_login(self, registry):
        accounts = UserAccountsDB()
        accounts.add_user("u", "pw")
        session = EditorSession(accounts, registry)
        with pytest.raises(AuthenticationError):
            session.login("u", "wrong")
        with pytest.raises(EditorModeError):
            session.open_editor()


class TestTaskProperties:
    def test_defaults_valid(self):
        p = TaskProperties()
        assert p.computation_mode == "sequential"

    def test_invalid_mode(self):
        with pytest.raises(Exception):
            TaskProperties(computation_mode="quantum")

    def test_sequential_with_many_processors_rejected(self):
        with pytest.raises(Exception):
            TaskProperties(computation_mode="sequential", processors=4)

    def test_unknown_machine_type(self):
        with pytest.raises(Exception):
            TaskProperties(machine_type="cray")

    def test_unknown_service(self):
        with pytest.raises(Exception):
            TaskProperties(requested_services=("teleport",))

    def test_roundtrip(self):
        p = TaskProperties(computation_mode="parallel", processors=3,
                           params={"n": 5}, requested_services=("io",))
        p2 = TaskProperties.from_dict(p.to_dict())
        assert p2 == p
