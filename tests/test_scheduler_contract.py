"""The one scheduler contract, property-tested across the registry.

Every scheduler listed by :func:`available_schedulers` — site, HEFT,
the naive baselines, the branch-and-bound reference — must produce a
complete allocation that honours the repository's ground rules on any
federation: the task-constraints DB (executables only where installed),
per-task machine-type preferences, and host up/down status.  One
parametrized test, all schedulers, several seeded randomized scenarios.
"""

from __future__ import annotations

import pytest

from repro.scheduling import (
    ResourceAllocationTable,
    Scheduler,
    SchedulerContext,
    available_schedulers,
    create_scheduler,
    create_schedulers,
    register_scheduler,
)
from repro.util.errors import SchedulingError
from repro.util.rng import RngRegistry
from repro.workloads import random_layered_graph

from .conftest import build_federation

SEEDS = (11, 23, 47)

#: The schedulers ISSUE 6 requires at minimum; the registry may grow.
REQUIRED_SCHEDULERS = {"site", "heft", "random", "round-robin",
                       "min-load", "prediction-blind", "optimal"}


def make_scenario(registry, seed):
    """One seeded federation + AFG with all three contract hazards.

    Hazards: one host marked *down*, one task type constrained to a
    subset of hosts, one node carrying a machine-type preference.  The
    AFG stays small (7 tasks) so even the exhaustive reference runs in
    milliseconds.
    """
    n_sites = 2 + seed % 2
    sites = ("syracuse", "rome", "buffalo")[:n_sites]
    graph = random_layered_graph(registry, layers=2, width=2,
                                 size=512 * (1 + seed % 3), seed=seed)
    # constraint hazard: the sink's executable exists only at the
    # submitting site (both of its hosts stay up)
    allowed = {f"{sites[0]}/h0", f"{sites[0]}/h1"}
    fed = build_federation(site_names=sites, hosts_per_site=2, seed=seed,
                           registry=registry,
                           constrain={"power-spectrum": allowed})
    # up/down hazard: one remote host is down at schedule time
    down = f"{sites[1]}/h0"
    fed.repositories[sites[1]].resource_performance.mark_down(down,
                                                              time=0.0)
    # machine-type hazard: the fft node insists on an alpha host
    # (templates place an up alpha at {sites[0]}/h1)
    graph.node("fft").properties.machine_type = "alpha"
    return fed, graph, sites, down, allowed


def make_context(fed, sites, seed):
    return SchedulerContext(
        repositories=fed.repositories, topology=fed.topology,
        local_site=sites[0], k_remote_sites=len(sites) - 1,
        rng=RngRegistry(seed))


class TestSchedulerContract:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", available_schedulers())
    def test_allocation_honours_federation_ground_rules(self, registry,
                                                        name, seed):
        fed, graph, sites, down, allowed = make_scenario(registry, seed)
        scheduler = create_scheduler(name, make_context(fed, sites, seed))
        assert isinstance(scheduler, Scheduler)
        assert scheduler.name  # stable, non-empty identity
        table = scheduler.schedule(graph)
        assert isinstance(table, ResourceAllocationTable)
        # complete coverage: every task assigned exactly once
        assert len(table) == len(graph)
        for nid, node in graph.nodes.items():
            entry = table.get(nid)
            assert entry.site in sites
            assert entry.hosts, f"{name}: no hosts for {nid}"
            assert entry.processors == len(entry.hosts)
            repo = fed.repositories[entry.site]
            for host in entry.hosts:
                assert host.startswith(entry.site + "/"), \
                    f"{name}: host {host} outside site {entry.site}"
                record = repo.resource_performance.get(host)
                # up/down: never schedule onto a down host
                assert record.status == "up", \
                    f"{name}: placed {nid} on down host {host}"
                # constraints DB: executable must be installed there
                assert repo.task_constraints.is_runnable_on(
                    node.task_name, host), \
                    f"{name}: {nid} ({node.task_name}) not runnable " \
                    f"on {host}"
                # machine-type preference: architecture must match
                if node.properties.machine_type is not None:
                    assert record.arch == node.properties.machine_type, \
                        f"{name}: {nid} wants " \
                        f"{node.properties.machine_type}, got {record.arch}"
        # the hazards actually bit: the down host took nothing, and the
        # constrained sink landed inside its allowed set
        assert down not in table.hosts()
        assert set(table.get("sink").hosts) <= allowed


class TestRegistry:
    def test_required_schedulers_registered(self):
        names = available_schedulers()
        assert names == sorted(names)
        assert REQUIRED_SCHEDULERS <= set(names)
        assert len(names) >= 6  # the ISSUE 6 floor

    def test_unknown_scheduler_rejected(self, registry):
        fed = build_federation(registry=registry)
        ctx = make_context(fed, ("syracuse", "rome"), seed=0)
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            create_scheduler("annealing", ctx)

    def test_duplicate_registration_rejected(self):
        available_schedulers()  # force builtin registration
        with pytest.raises(SchedulingError, match="already registered"):
            register_scheduler("heft")(lambda ctx: None)

    def test_bad_slug_rejected(self):
        for bad in ("", "has space", "has/slash"):
            with pytest.raises(SchedulingError, match="slug"):
                register_scheduler(bad)

    def test_create_schedulers_builds_all(self, registry):
        fed = build_federation(registry=registry)
        ctx = make_context(fed, ("syracuse", "rome"), seed=0)
        built = create_schedulers(("heft", "random", "site"), ctx)
        assert set(built) == {"heft", "random", "site"}
        for scheduler in built.values():
            assert isinstance(scheduler, Scheduler)
