"""Regression tests for the bugs reprolint's first run surfaced.

Two genuine determinism bugs came out of `python -m tools.reprolint src/`:

* ``wide_area_testbed`` derived each host's background-load mean from the
  salted builtin ``hash()`` — the load profile silently changed with
  ``PYTHONHASHSEED``, i.e. between any two interpreter invocations
  (DET001, ``workloads/environments.py``);
* ``SiteManager.distribute_allocation`` iterated the *set* returned by
  ``ResourceAllocationTable.hosts()``, so RAT portions were built and
  multicast in hash-seed-dependent order (DET001,
  ``runtime/control/site_manager.py``).

Both are asserted here by running the affected code under two different
``PYTHONHASHSEED`` values in subprocesses and demanding identical
results — exactly the property the original code lacked.
"""

from __future__ import annotations

import subprocess
import sys
import zlib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_under_hash_seed(code: str, hash_seed: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        cwd=REPO_ROOT,
        env={"PYTHONHASHSEED": hash_seed,
             "PYTHONPATH": str(REPO_ROOT / "src"),
             "PATH": "/usr/bin:/bin:/usr/local/bin"})
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


LOAD_MEANS_CODE = """
from repro.workloads.environments import wide_area_testbed
vdce = wide_area_testbed(seed=7, n_sites=3, hosts_per_site=3,
                         with_loads=True)
for model in vdce.load_models:
    print(f"{model.host.address} {model.mean:.6f}")
"""


def test_background_load_means_independent_of_hash_seed() -> None:
    first = run_under_hash_seed(LOAD_MEANS_CODE, "1")
    second = run_under_hash_seed(LOAD_MEANS_CODE, "2")
    assert first == second
    assert first.strip(), "expected at least one load model"


def test_background_load_means_follow_crc32_buckets() -> None:
    out = run_under_hash_seed(LOAD_MEANS_CODE, "0")
    for line in out.strip().splitlines():
        address, mean = line.split()
        bucket = zlib.crc32(address.encode("utf-8")) % 5
        assert abs(float(mean) - (0.2 + 0.6 * bucket / 5.0)) < 1e-9


DISTRIBUTE_ORDER_CODE = """
from repro.workloads.environments import quiet_testbed
from repro.workloads.applications import linear_solver_graph

vdce = quiet_testbed(seed=11)
vdce.start()
graph = linear_solver_graph(vdce.registry, n=40)
process, run = vdce.submit(graph, sorted(vdce.world.sites)[0],
                           k_remote_sites=1)
vdce.env.run(until=500.0)
trace = vdce.tracer.records if vdce.tracer is not None else []
for rec in trace:
    print(rec)
print("completions", sorted(run.completions))
print("makespan", f"{run.makespan:.9f}")
"""


def test_allocation_distribution_order_independent_of_hash_seed() -> None:
    """The full message trace must be byte-identical across hash seeds.

    Before the fix, `distribute_allocation` iterated `table.hosts()` (a
    set), so portion multicast order — and with it the entire downstream
    message interleaving — depended on PYTHONHASHSEED.
    """
    first = run_under_hash_seed(DISTRIBUTE_ORDER_CODE, "1")
    second = run_under_hash_seed(DISTRIBUTE_ORDER_CODE, "2")
    assert "completions" in first
    assert first == second


class _ReversedIterSet(set):
    """A set that iterates in descending order — the adversarial case a
    hash-seed change could produce."""

    def __iter__(self):
        return iter(sorted(super().__iter__(), reverse=True))


def test_distribution_order_sorted_regardless_of_set_order(monkeypatch):
    """`distribute_allocation` must emit portions in sorted host order
    even when `table.hosts()` iterates adversarially.

    This is the in-process regression probe: with the original unsorted
    loop, the portion dicts inherit whatever order the set yields.
    """
    from repro.net.network import Network
    from repro.scheduling.allocation import ResourceAllocationTable
    from repro.workloads.applications import fork_join_graph
    from repro.workloads.environments import quiet_testbed

    vdce = quiet_testbed(seed=3, trace=False)
    vdce.start()
    graph = fork_join_graph(vdce.registry, width=8)
    sites = sorted(vdce.world.sites)
    for i, nid in enumerate(graph.nodes):
        graph.node(nid).properties.preferred_site = sites[i % len(sites)]
    sm = vdce.site_managers["syracuse"]
    proc = vdce.env.process(sm.schedule_application(graph, k_remote_sites=1))
    vdce.run(until=30)
    assert proc.triggered and proc.ok
    table, _report = proc.value
    assert len(table.hosts()) > 1

    class PerverseTable(ResourceAllocationTable):
        def hosts(self):
            return _ReversedIterSet(super().hosts())

    table.__class__ = PerverseTable

    orders: list[list[str]] = []
    monkeypatch.setattr(
        sm, "_push_to_groups",
        lambda portions, *args, **kwargs: orders.append(list(portions)))
    monkeypatch.setattr(
        Network, "send",
        lambda self, src, dst, kind, payload=None, **kwargs: orders.append(
            list(payload["portions"]) if payload and "portions" in payload
            else []))

    sm.distribute_allocation(table, "exec-regression", graph)
    assert orders, "distribution produced no portions"
    for order in orders:
        assert order == sorted(order), (
            f"portion order {order} leaked set iteration order")
